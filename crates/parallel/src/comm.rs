//! A fault-tolerant thread-backed SPMD communicator: the MPI substitute.
//!
//! The paper parallelizes the objective function with MPI processes on an
//! IBM SP (one rank per node, constant process count, `MPI_AllReduce` on
//! the error vectors). We reproduce the same SPMD structure with one OS
//! thread per simulated node and shared-memory collectives.
//!
//! Unlike the original (and unlike real MPI on the IBM SP, where one dead
//! rank hung or killed the whole job), this communicator is built to
//! *contain* failures:
//!
//! * every collective returns `Result<_, CommError>` instead of
//!   asserting or deadlocking;
//! * the rendezvous is **poison-aware**: when a rank panics, its peers
//!   are woken immediately with [`CommError::RankPanicked`] instead of
//!   parking forever on a barrier;
//! * the rendezvous is **deadline-capable**: an optional per-collective
//!   timeout ([`CommConfig::timeout`]) turns a silent deadlock into
//!   [`CommError::Timeout`] on every waiting rank;
//! * [`run_cluster`] catches panics per rank (`catch_unwind`) and returns
//!   per-rank `Result`s, so a crash in one rank's objective evaluation is
//!   an observable value, not a process abort.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Failures a collective can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank panicked; the rendezvous was poisoned so every
    /// surviving rank fails fast instead of deadlocking.
    RankPanicked {
        /// The rank that panicked.
        rank: usize,
    },
    /// The collective's deadline expired before all ranks arrived — a
    /// deadlock (or a peer that stopped participating) detected at
    /// runtime.
    Timeout {
        /// The first rank whose wait expired (it poisons the rendezvous,
        /// so all ranks report the same origin).
        rank: usize,
        /// How long that rank waited before giving up.
        waited: Duration,
    },
    /// Ranks passed vectors of different lengths to a reduction.
    LengthMismatch {
        /// A rank whose vector length differs from this rank's.
        rank: usize,
        /// This rank's vector length.
        expected: usize,
        /// The mismatching rank's vector length.
        got: usize,
    },
    /// `broadcast` was asked for a root outside `0..size`.
    InvalidRoot {
        /// The requested root.
        root: usize,
        /// The cluster size.
        size: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankPanicked { rank } => {
                write!(f, "rank {rank} panicked; collective poisoned")
            }
            CommError::Timeout { rank, waited } => write!(
                f,
                "collective timed out after {waited:?} (first expired on rank {rank})"
            ),
            CommError::LengthMismatch {
                rank,
                expected,
                got,
            } => write!(
                f,
                "reduction length mismatch: rank {rank} deposited {got} elements, expected {expected}"
            ),
            CommError::InvalidRoot { root, size } => {
                write!(f, "broadcast root {root} out of range for {size} ranks")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Cluster-wide communicator configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommConfig {
    /// Per-collective deadline. `None` waits forever (the classic MPI
    /// behavior); `Some(d)` turns a deadlock into [`CommError::Timeout`]
    /// after `d`.
    pub timeout: Option<Duration>,
}

impl CommConfig {
    /// Config with the given per-collective deadline.
    pub fn with_timeout(timeout: Duration) -> CommConfig {
        CommConfig {
            timeout: Some(timeout),
        }
    }
}

/// A rank failing in a way that kills the whole collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Poison {
    Panicked { rank: usize },
    TimedOut { rank: usize, waited: Duration },
}

impl Poison {
    fn as_error(self) -> CommError {
        match self {
            Poison::Panicked { rank } => CommError::RankPanicked { rank },
            Poison::TimedOut { rank, waited } => CommError::Timeout { rank, waited },
        }
    }
}

/// Rendezvous guarded state.
#[derive(Debug)]
struct RvState {
    /// Ranks arrived at the current generation.
    arrived: usize,
    /// Completed-rendezvous counter; a waiter is released when it
    /// advances (classic generation-counted barrier, reusable and immune
    /// to spurious wakeups).
    generation: u64,
    /// Set once on the first fatal event; permanently fails every
    /// subsequent wait so no rank can park on a dead cluster.
    poison: Option<Poison>,
}

/// A reusable, poison-aware, deadline-capable barrier.
#[derive(Debug)]
struct Rendezvous {
    state: Mutex<RvState>,
    cv: Condvar,
    size: usize,
}

impl Rendezvous {
    fn new(size: usize) -> Rendezvous {
        Rendezvous {
            state: Mutex::new(RvState {
                arrived: 0,
                generation: 0,
                poison: None,
            }),
            cv: Condvar::new(),
            size,
        }
    }

    /// Lock the state, surviving std's lock poisoning (a panicking rank
    /// never holds this lock across user code, so the state is always
    /// consistent).
    fn lock(&self) -> MutexGuard<'_, RvState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Rendezvous of all ranks, honoring the deadline.
    fn wait(&self, rank: usize, timeout: Option<Duration>) -> Result<(), CommError> {
        let mut state = self.lock();
        if let Some(poison) = state.poison {
            return Err(poison.as_error());
        }
        let generation = state.generation;
        state.arrived += 1;
        if state.arrived == self.size {
            state.arrived = 0;
            state.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let started = Instant::now();
        loop {
            state = match timeout {
                None => self.cv.wait(state).unwrap_or_else(|e| e.into_inner()),
                Some(limit) => {
                    let waited = started.elapsed();
                    let Some(remaining) = limit.checked_sub(waited) else {
                        // Deadline expired: poison so every peer stuck in
                        // this or any later collective fails fast too.
                        state.poison = Some(Poison::TimedOut { rank, waited });
                        self.cv.notify_all();
                        return Err(CommError::Timeout { rank, waited });
                    };
                    let (guard, _) = self
                        .cv
                        .wait_timeout(state, remaining)
                        .unwrap_or_else(|e| e.into_inner());
                    guard
                }
            };
            if let Some(poison) = state.poison {
                return Err(poison.as_error());
            }
            if state.generation != generation {
                return Ok(());
            }
        }
    }

    /// Kill the cluster: wake every parked rank with an error.
    fn poison(&self, poison: Poison) {
        let mut state = self.lock();
        if state.poison.is_none() {
            state.poison = Some(poison);
        }
        self.cv.notify_all();
    }
}

/// Shared collective state for one cluster.
struct Shared {
    /// Per-rank deposit slots for vector collectives.
    slots: Mutex<Vec<Vec<f64>>>,
    /// Reusable poison-aware rendezvous.
    rendezvous: Rendezvous,
    size: usize,
    config: CommConfig,
}

impl Shared {
    fn slots(&self) -> MutexGuard<'_, Vec<Vec<f64>>> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Handle held by one rank of a running cluster.
pub struct Communicator<'a> {
    shared: &'a Shared,
    rank: usize,
}

impl Communicator<'_> {
    /// This rank's id (`0..size`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// The per-collective deadline this cluster runs under.
    pub fn timeout(&self) -> Option<Duration> {
        self.shared.config.timeout
    }

    fn wait(&self) -> Result<(), CommError> {
        self.shared
            .rendezvous
            .wait(self.rank, self.shared.config.timeout)
    }

    /// Rendezvous of all ranks (`MPI_Barrier`).
    pub fn barrier(&self) -> Result<(), CommError> {
        self.wait()
    }

    /// `MPI_Allreduce(…, MPI_SUM)`: element-wise sum of every rank's
    /// vector, returned to all ranks. Vectors must share a length.
    pub fn all_reduce_sum(&self, local: &[f64]) -> Result<Vec<f64>, CommError> {
        self.reduce(local, |acc, slot| {
            for (a, v) in acc.iter_mut().zip(slot) {
                *a += v;
            }
        })
    }

    /// `MPI_Allreduce(…, MPI_MAX)`.
    pub fn all_reduce_max(&self, local: &[f64]) -> Result<Vec<f64>, CommError> {
        let mut first = true;
        self.reduce(local, move |acc, slot| {
            if first {
                acc.fill(f64::NEG_INFINITY);
                first = false;
            }
            for (a, v) in acc.iter_mut().zip(slot) {
                *a = a.max(*v);
            }
        })
    }

    /// Shared skeleton of the element-wise reductions: deposit, check
    /// lengths, fold every slot, rendezvous out.
    fn reduce(
        &self,
        local: &[f64],
        mut fold: impl FnMut(&mut [f64], &[f64]),
    ) -> Result<Vec<f64>, CommError> {
        self.deposit(local);
        self.wait()?;
        let result = {
            let slots = self.shared.slots();
            // Every rank sees the same slot lengths, so if any two ranks
            // disagree, *all* ranks observe a mismatch and return this
            // error together — control flow stays collective-consistent
            // and nobody parks on the release rendezvous alone.
            if let Some((rank, slot)) = slots
                .iter()
                .enumerate()
                .find(|(_, s)| s.len() != local.len())
            {
                return Err(CommError::LengthMismatch {
                    rank,
                    expected: local.len(),
                    got: slot.len(),
                });
            }
            let mut acc = vec![0.0; local.len()];
            for slot in slots.iter() {
                fold(&mut acc, slot);
            }
            acc
        };
        // Second rendezvous so nobody deposits into the next collective
        // while a slow rank is still reading this one.
        self.wait()?;
        Ok(result)
    }

    /// `MPI_Bcast`: every rank receives root's vector.
    pub fn broadcast(&self, root: usize, data: &[f64]) -> Result<Vec<f64>, CommError> {
        if root >= self.shared.size {
            // Checked before any rendezvous: all ranks pass the same
            // root, so all fail together without consuming a generation.
            return Err(CommError::InvalidRoot {
                root,
                size: self.shared.size,
            });
        }
        if self.rank == root {
            self.deposit(data);
        }
        self.wait()?;
        let result = self.shared.slots()[root].clone();
        self.wait()?;
        Ok(result)
    }

    /// `MPI_Allgather`: concatenation of every rank's vector, in rank
    /// order, delivered to all ranks.
    pub fn all_gather(&self, local: &[f64]) -> Result<Vec<Vec<f64>>, CommError> {
        self.deposit(local);
        self.wait()?;
        let result = self.shared.slots().clone();
        self.wait()?;
        Ok(result)
    }

    fn deposit(&self, data: &[f64]) {
        self.shared.slots()[self.rank] = data.to_vec();
    }
}

/// A rank body that panicked instead of returning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPanic {
    /// The rank that panicked.
    pub rank: usize,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for RankPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message)
    }
}

impl std::error::Error for RankPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run an SPMD region: `size` ranks execute `body` concurrently, each
/// with its own [`Communicator`]. Returns the per-rank outcomes in rank
/// order (the analog of `mpirun -np <size>`).
///
/// Each rank body runs under `catch_unwind`: a panicking rank produces
/// `Err(`[`RankPanic`]`)` in its slot and **poisons the rendezvous**, so
/// every peer parked in (or later entering) a collective is woken with
/// [`CommError::RankPanicked`] instead of deadlocking.
pub fn run_cluster_with<T, F>(size: usize, config: CommConfig, body: F) -> Vec<Result<T, RankPanic>>
where
    T: Send,
    F: Fn(&Communicator<'_>) -> T + Sync,
{
    assert!(size > 0, "cluster needs at least one rank");
    let shared = Shared {
        slots: Mutex::new(vec![Vec::new(); size]),
        rendezvous: Rendezvous::new(size),
        size,
        config,
    };
    let mut results: Vec<Option<Result<T, RankPanic>>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (rank, slot) in results.iter_mut().enumerate() {
            let shared = &shared;
            let body = &body;
            scope.spawn(move || {
                let comm = Communicator { shared, rank };
                *slot = Some(
                    match panic::catch_unwind(AssertUnwindSafe(|| body(&comm))) {
                        Ok(value) => Ok(value),
                        Err(payload) => {
                            shared.rendezvous.poison(Poison::Panicked { rank });
                            Err(RankPanic {
                                rank,
                                message: panic_message(payload),
                            })
                        }
                    },
                );
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scoped rank thread joined"))
        .collect()
}

/// [`run_cluster_with`] under the default config (no deadline — classic
/// MPI semantics, but still panic-safe).
pub fn run_cluster<T, F>(size: usize, body: F) -> Vec<Result<T, RankPanic>>
where
    T: Send,
    F: Fn(&Communicator<'_>) -> T + Sync,
{
    run_cluster_with(size, CommConfig::default(), body)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unwrap every rank's outcome (for tests where nothing may panic).
    fn all_ok<T>(results: Vec<Result<T, RankPanic>>) -> Vec<T> {
        results
            .into_iter()
            .map(|r| r.expect("no rank panicked"))
            .collect()
    }

    #[test]
    fn ranks_and_size() {
        let out = all_ok(run_cluster(4, |comm| (comm.rank(), comm.size())));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn all_reduce_sum_matches_sequential() {
        for size in [1, 2, 3, 8] {
            let out = all_ok(run_cluster(size, |comm| {
                let local = vec![comm.rank() as f64, 1.0];
                comm.all_reduce_sum(&local).unwrap()
            }));
            let expected_first: f64 = (0..size).map(|r| r as f64).sum();
            for v in &out {
                assert_eq!(v[0], expected_first);
                assert_eq!(v[1], size as f64);
            }
        }
    }

    #[test]
    fn repeated_collectives_do_not_interleave() {
        // Back-to-back reduces with different values must not mix.
        let out = all_ok(run_cluster(4, |comm| {
            let a = comm.all_reduce_sum(&[1.0]).unwrap();
            let b = comm.all_reduce_sum(&[10.0]).unwrap();
            let c = comm.all_reduce_sum(&[100.0]).unwrap();
            (a[0], b[0], c[0])
        }));
        for v in out {
            assert_eq!(v, (4.0, 40.0, 400.0));
        }
    }

    #[test]
    fn all_reduce_max() {
        let out = all_ok(run_cluster(3, |comm| {
            comm.all_reduce_max(&[comm.rank() as f64, -1.0]).unwrap()
        }));
        for v in out {
            assert_eq!(v, vec![2.0, -1.0]);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let out = all_ok(run_cluster(3, |comm| {
            let data = if comm.rank() == 1 {
                vec![7.0, 8.0]
            } else {
                vec![]
            };
            comm.broadcast(1, &data).unwrap()
        }));
        for v in out {
            assert_eq!(v, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn all_gather_order() {
        let out = all_ok(run_cluster(3, |comm| {
            comm.all_gather(&[comm.rank() as f64]).unwrap()
        }));
        for v in out {
            assert_eq!(v, vec![vec![0.0], vec![1.0], vec![2.0]]);
        }
    }

    #[test]
    fn single_rank_cluster() {
        let out = all_ok(run_cluster(1, |comm| comm.all_reduce_sum(&[5.0]).unwrap()));
        assert_eq!(out, vec![vec![5.0]]);
    }

    #[test]
    fn real_parallel_execution() {
        // Ranks genuinely run concurrently: a barrier would deadlock
        // otherwise.
        let out = all_ok(run_cluster(4, |comm| {
            comm.barrier().unwrap();
            comm.rank()
        }));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn panicking_rank_fails_peers_fast_instead_of_deadlocking() {
        let started = Instant::now();
        let results = run_cluster(4, |comm| {
            if comm.rank() == 2 {
                panic!("injected: rank 2 dies before the barrier");
            }
            comm.all_reduce_sum(&[1.0])
        });
        // Without poisoning this would hang forever; bounded wall-clock
        // is the regression property.
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "peers did not fail fast"
        );
        let panicked = results[2].as_ref().expect_err("rank 2 panicked");
        assert_eq!(panicked.rank, 2);
        assert!(panicked.message.contains("injected"));
        for rank in [0, 1, 3] {
            let collective = results[rank].as_ref().expect("rank body completed");
            assert_eq!(collective, &Err(CommError::RankPanicked { rank: 2 }));
        }
    }

    #[test]
    fn panic_after_collectives_poisons_later_collectives() {
        let results = run_cluster(3, |comm| {
            let first = comm.all_reduce_sum(&[1.0]);
            if comm.rank() == 0 {
                panic!("injected: rank 0 dies between collectives");
            }
            let second = comm.all_reduce_sum(&[1.0]);
            (first, second)
        });
        assert!(results[0].is_err());
        for rank in [1, 2] {
            let (first, second) = results[rank].as_ref().expect("body completed");
            assert_eq!(first, &Ok(vec![3.0]));
            assert_eq!(second, &Err(CommError::RankPanicked { rank: 0 }));
        }
    }

    #[test]
    fn deserting_rank_times_out_peers() {
        let deadline = Duration::from_millis(100);
        let started = Instant::now();
        let results = run_cluster_with(3, CommConfig::with_timeout(deadline), |comm| {
            if comm.rank() == 0 {
                return Ok(()); // deserts: never joins the barrier
            }
            comm.barrier()
        });
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "timeout did not fire"
        );
        for rank in [1, 2] {
            match results[rank].as_ref().expect("no panic") {
                Err(CommError::Timeout { waited, .. }) => assert!(*waited >= deadline),
                other => panic!("rank {rank}: expected Timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn length_mismatch_reported_on_all_ranks_without_deadlock() {
        let results = all_ok(run_cluster(3, |comm| {
            let local = vec![0.0; if comm.rank() == 1 { 5 } else { 3 }];
            let mismatch = comm.all_reduce_sum(&local);
            // The cluster survives: control flow stayed consistent, so a
            // well-formed follow-up collective still works.
            let ok = comm.all_reduce_sum(&[1.0]);
            (mismatch, ok)
        }));
        for (rank, (mismatch, ok)) in results.iter().enumerate() {
            assert!(
                matches!(mismatch, Err(CommError::LengthMismatch { .. })),
                "rank {rank}: {mismatch:?}"
            );
            assert_eq!(ok, &Ok(vec![3.0]));
        }
    }

    #[test]
    fn invalid_broadcast_root() {
        let results = all_ok(run_cluster(2, |comm| comm.broadcast(7, &[1.0])));
        for r in results {
            assert_eq!(r, Err(CommError::InvalidRoot { root: 7, size: 2 }));
        }
    }

    #[test]
    fn timeout_not_triggered_by_healthy_cluster() {
        let out = run_cluster_with(
            4,
            CommConfig::with_timeout(Duration::from_secs(30)),
            |comm| comm.all_reduce_sum(&[comm.rank() as f64]).unwrap(),
        );
        for r in out {
            assert_eq!(r.unwrap(), vec![6.0]);
        }
    }
}
