//! Bonds and bond orders.

use std::fmt;

/// Covalent bond order.
///
/// The paper's rule set includes "increase the bond order between two
/// atoms" and "decrease the bond order between two atoms"; those rules step
/// through this enum (decreasing below `Single` deletes the bond, which is
/// the "disconnect" rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BondOrder {
    /// Single (σ) bond.
    Single,
    /// Double bond.
    Double,
    /// Triple bond.
    Triple,
    /// Aromatic bond as written in SMILES ring systems (benzothiazole
    /// accelerator rings). Treated as order ~1.5 for valence accounting.
    Aromatic,
}

impl BondOrder {
    /// Integer order used for valence bookkeeping. Aromatic counts as 1
    /// within an alternating ring plus the ring-perception correction; for
    /// the valence model used here (matching CDK's simple model) we charge
    /// aromatic bonds 1 and add 1 for being in an aromatic system once,
    /// handled by the graph. For plain accounting we use the nominal value.
    pub fn valence_units(self) -> u8 {
        match self {
            BondOrder::Single => 1,
            BondOrder::Double => 2,
            BondOrder::Triple => 3,
            BondOrder::Aromatic => 1,
        }
    }

    /// One step up (Single→Double→Triple). Aromatic and Triple do not
    /// increase further.
    pub fn increased(self) -> Option<BondOrder> {
        match self {
            BondOrder::Single => Some(BondOrder::Double),
            BondOrder::Double => Some(BondOrder::Triple),
            BondOrder::Triple | BondOrder::Aromatic => None,
        }
    }

    /// One step down; `None` from `Single` means the bond disappears.
    pub fn decreased(self) -> Option<BondOrder> {
        match self {
            BondOrder::Single | BondOrder::Aromatic => None,
            BondOrder::Double => Some(BondOrder::Single),
            BondOrder::Triple => Some(BondOrder::Double),
        }
    }

    /// SMILES bond symbol ("" for single, which is implicit).
    pub fn smiles_symbol(self) -> &'static str {
        match self {
            BondOrder::Single => "",
            BondOrder::Double => "=",
            BondOrder::Triple => "#",
            BondOrder::Aromatic => ":",
        }
    }
}

impl fmt::Display for BondOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BondOrder::Single => "-",
            BondOrder::Double => "=",
            BondOrder::Triple => "#",
            BondOrder::Aromatic => ":",
        };
        f.write_str(s)
    }
}

/// An undirected bond between two atom indices of a molecule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bond {
    /// Smaller endpoint index (normalized so `a <= b`).
    pub a: usize,
    /// Larger endpoint index.
    pub b: usize,
    /// Bond order.
    pub order: BondOrder,
}

impl Bond {
    /// Create a bond, normalizing endpoint order.
    pub fn new(a: usize, b: usize, order: BondOrder) -> Bond {
        if a <= b {
            Bond { a, b, order }
        } else {
            Bond { a: b, b: a, order }
        }
    }

    /// The endpoint that is not `idx`, or `None` when `idx` is not an
    /// endpoint.
    pub fn other(&self, idx: usize) -> Option<usize> {
        if idx == self.a {
            Some(self.b)
        } else if idx == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Whether the bond touches atom `idx`.
    pub fn touches(&self, idx: usize) -> bool {
        self.a == idx || self.b == idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bond_normalizes_endpoints() {
        let b = Bond::new(5, 2, BondOrder::Single);
        assert_eq!((b.a, b.b), (2, 5));
    }

    #[test]
    fn other_endpoint() {
        let b = Bond::new(1, 3, BondOrder::Double);
        assert_eq!(b.other(1), Some(3));
        assert_eq!(b.other(3), Some(1));
        assert_eq!(b.other(2), None);
    }

    #[test]
    fn order_stepping() {
        assert_eq!(BondOrder::Single.increased(), Some(BondOrder::Double));
        assert_eq!(BondOrder::Triple.increased(), None);
        assert_eq!(BondOrder::Double.decreased(), Some(BondOrder::Single));
        assert_eq!(BondOrder::Single.decreased(), None);
    }

    #[test]
    fn valence_units() {
        assert_eq!(BondOrder::Single.valence_units(), 1);
        assert_eq!(BondOrder::Double.valence_units(), 2);
        assert_eq!(BondOrder::Triple.valence_units(), 3);
    }
}
