//! SMILES input/output.
//!
//! A pragmatic subset of the SMILES line notation sufficient for the
//! paper's domain (rubber + benzothiazole accelerator chemistry):
//!
//! * organic-subset atoms (`B C N O F P S Cl Br I`) and aromatic
//!   lowercase forms (`b c n o p s se`);
//! * bracket atoms with explicit hydrogen counts, charges and implied
//!   radicals (`[CH3]` is a methyl radical via valence deficit);
//! * bond symbols `- = # :`, branches `( … )`, ring closures `1`-`9` and
//!   `%nn`, and dot-separated fragments.
//!
//! Stereochemistry (`/ \ @`) is accepted on input and ignored — kinetic
//! models in the paper do not distinguish stereoisomers.

mod parser;
mod writer;

pub use parser::parse_smiles;
pub use writer::{write_smiles, write_smiles_canonical};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    #[test]
    fn round_trip_simple_molecules() {
        for s in [
            "C",
            "CC",
            "C=C",
            "C#N",
            "CCO",
            "CC(C)C",
            "C1CCCCC1",
            "c1ccccc1",
            "CSSC",
            "[SH]S[SH]",
            "CC(=O)O",
            "[CH3]",
            "[S]",
            "C/C=C/C",
        ] {
            let m = parse_smiles(s).unwrap_or_else(|e| panic!("parse {s}: {e}"));
            let out = write_smiles_canonical(&m);
            let m2 = parse_smiles(&out).unwrap_or_else(|e| panic!("reparse {out}: {e}"));
            assert_eq!(
                write_smiles_canonical(&m2),
                out,
                "canonical form of {s} not stable"
            );
            assert_eq!(
                m.atom_count(),
                m2.atom_count(),
                "atom count changed for {s}"
            );
            assert_eq!(
                m.bond_count(),
                m2.bond_count(),
                "bond count changed for {s}"
            );
            assert_eq!(
                m.total_hydrogens(),
                m2.total_hydrogens(),
                "H count changed for {s} -> {out}"
            );
        }
    }

    #[test]
    fn isomorphic_inputs_share_canonical_form() {
        let pairs = [
            ("CCO", "OCC"),
            ("CC(C)C", "C(C)(C)C"),
            ("C1CCCCC1", "C2CCCCC2"),
            ("CSSC", "C(SSC)"),
            ("N#CC", "CC#N"),
        ];
        for (a, b) in pairs {
            let ma = parse_smiles(a).unwrap();
            let mb = parse_smiles(b).unwrap();
            assert_eq!(
                write_smiles_canonical(&ma),
                write_smiles_canonical(&mb),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn distinct_molecules_have_distinct_canonical_forms() {
        let pairs = [
            ("CCO", "CC=O"),
            ("CCC", "CC"),
            ("CSC", "CCS"),
            ("C=CC", "CCC"),
        ];
        for (a, b) in pairs {
            let ma = parse_smiles(a).unwrap();
            let mb = parse_smiles(b).unwrap();
            assert_ne!(
                write_smiles_canonical(&ma),
                write_smiles_canonical(&mb),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn benzothiazole_parses() {
        // 2-mercaptobenzothiazole, the accelerator core in the paper's
        // vulcanization case study.
        let m = parse_smiles("SC1=NC2=CC=CC=C2S1").unwrap();
        let s_count = m.atoms().filter(|(_, a)| a.element == Element::S).count();
        assert_eq!(s_count, 2);
        assert_eq!(m.atom_count(), 10);
    }

    #[test]
    fn dot_fragments() {
        let m = parse_smiles("C.C").unwrap();
        assert_eq!(m.components().len(), 2);
    }

    #[test]
    fn radical_from_valence_deficit() {
        let m = parse_smiles("[CH3]").unwrap();
        assert_eq!(m.atom(0).unwrap().radicals, 1);
        let m = parse_smiles("[CH2]").unwrap();
        assert_eq!(m.atom(0).unwrap().radicals, 2);
    }
}
