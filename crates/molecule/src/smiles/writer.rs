//! SMILES output, including the canonical form used for molecule equality.

use std::collections::HashMap;

use crate::bond::BondOrder;
use crate::canon::canonical_ranks;
use crate::graph::Molecule;

/// Write SMILES visiting atoms in their current index order.
pub fn write_smiles(mol: &Molecule) -> String {
    let ranks: Vec<u32> = (0..mol.atom_count() as u32).collect();
    write_with_ranks(mol, &ranks)
}

/// Write canonical SMILES: identical strings iff the molecules are
/// isomorphic (same elements, bonds, hydrogen counts, charges, radicals).
pub fn write_smiles_canonical(mol: &Molecule) -> String {
    let ranks = canonical_ranks(mol);
    write_with_ranks(mol, &ranks)
}

fn write_with_ranks(mol: &Molecule, ranks: &[u32]) -> String {
    let n = mol.atom_count();
    if n == 0 {
        return String::new();
    }
    let mut out = String::new();
    let mut visited = vec![false; n];
    // Ring-closure bookkeeping: per atom, list of (digit, order) to emit.
    let mut ring_digits: HashMap<usize, Vec<(u8, BondOrder)>> = HashMap::new();
    let mut next_digit = 1u8;

    // Process each connected component, smallest-rank atom first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| ranks[i]);

    let mut first_component = true;
    for &start in &order {
        if visited[start] {
            continue;
        }
        if !first_component {
            out.push('.');
        }
        first_component = false;

        // Pre-pass: find back edges (ring bonds) in DFS-by-rank order and
        // assign digits.
        let mut in_tree = vec![false; n];
        let mut stack = vec![(start, usize::MAX)];
        let mut tree_parent = vec![usize::MAX; n];
        let mut ring_bonds: Vec<(usize, usize, BondOrder)> = Vec::new();
        while let Some((at, parent)) = stack.pop() {
            if in_tree[at] {
                continue;
            }
            in_tree[at] = true;
            tree_parent[at] = parent;
            let mut nbrs: Vec<usize> = mol.neighbors(at).filter(|&x| x != parent).collect();
            nbrs.sort_by_key(|&x| std::cmp::Reverse(ranks[x]));
            for nb in nbrs {
                if in_tree[nb] {
                    if tree_parent[at] != nb {
                        let bond = mol.bond_between(at, nb).expect("neighbor bond");
                        // Record only once per ring bond.
                        if !ring_bonds
                            .iter()
                            .any(|&(a, b, _)| (a, b) == (nb, at) || (a, b) == (at, nb))
                        {
                            ring_bonds.push((at, nb, bond.order));
                        }
                    }
                } else {
                    stack.push((nb, at));
                }
            }
        }
        for (a, b, ord) in ring_bonds {
            let digit = next_digit;
            next_digit = next_digit.wrapping_add(1);
            ring_digits.entry(a).or_default().push((digit, ord));
            ring_digits.entry(b).or_default().push((digit, ord));
        }

        emit_atom(
            mol,
            ranks,
            start,
            usize::MAX,
            &mut visited,
            &ring_digits,
            &mut out,
        );
    }
    out
}

fn emit_atom(
    mol: &Molecule,
    ranks: &[u32],
    at: usize,
    parent: usize,
    visited: &mut [bool],
    ring_digits: &HashMap<usize, Vec<(u8, BondOrder)>>,
    out: &mut String,
) {
    visited[at] = true;
    out.push_str(&atom_token(mol, at));
    if let Some(digits) = ring_digits.get(&at) {
        for &(digit, ord) in digits {
            if needs_bond_symbol(mol, at, ord) {
                out.push_str(ord.smiles_symbol());
            }
            if digit < 10 {
                out.push(char::from(b'0' + digit));
            } else {
                out.push('%');
                out.push(char::from(b'0' + digit / 10));
                out.push(char::from(b'0' + digit % 10));
            }
        }
    }
    let mut children: Vec<usize> = mol
        .neighbors(at)
        .filter(|&x| x != parent && !visited[x])
        .collect();
    children.sort_by_key(|&x| ranks[x]);
    let last = children.len().saturating_sub(1);
    for (i, child) in children.into_iter().enumerate() {
        // A child may have been visited through a ring while emitting an
        // earlier sibling branch.
        if visited[child] {
            continue;
        }
        let bond = mol.bond_between(at, child).expect("child bond");
        let branch = i != last;
        if branch {
            out.push('(');
        }
        if needs_bond_symbol(mol, at, bond.order) || needs_bond_symbol(mol, child, bond.order) {
            out.push_str(bond.order.smiles_symbol());
        }
        emit_atom(mol, ranks, child, at, visited, ring_digits, out);
        if branch {
            out.push(')');
        }
    }
}

/// Whether the bond symbol must be written explicitly (single bonds and
/// aromatic-between-aromatic bonds are implicit).
fn needs_bond_symbol(mol: &Molecule, at: usize, order: BondOrder) -> bool {
    match order {
        BondOrder::Single => false,
        BondOrder::Double | BondOrder::Triple => true,
        BondOrder::Aromatic => !mol.atom(at).map(|a| a.aromatic).unwrap_or(false),
    }
}

/// Render one atom, choosing the bare organic-subset form when the implicit
/// hydrogen count is recoverable, otherwise a bracket atom.
fn atom_token(mol: &Molecule, at: usize) -> String {
    let atom = mol.atom(at).expect("valid atom");
    let symbol = if atom.aromatic {
        atom.element.symbol().to_ascii_lowercase()
    } else {
        atom.element.symbol().to_string()
    };
    let plain_ok = atom.charge == 0
        && atom.radicals == 0
        && atom.element.in_organic_subset()
        && inferred_hydrogens(mol, at) == Some(atom.hydrogens);
    if plain_ok {
        return symbol;
    }
    let mut tok = String::from("[");
    tok.push_str(&symbol);
    match atom.hydrogens {
        0 => {}
        1 => tok.push('H'),
        h => {
            tok.push('H');
            tok.push(char::from(b'0' + h));
        }
    }
    match atom.charge.cmp(&0) {
        std::cmp::Ordering::Greater => {
            for _ in 0..atom.charge {
                tok.push('+');
            }
        }
        std::cmp::Ordering::Less => {
            for _ in 0..(-atom.charge) {
                tok.push('-');
            }
        }
        std::cmp::Ordering::Equal => {}
    }
    tok.push(']');
    tok
}

/// The hydrogen count a parser would infer for this atom if written bare.
fn inferred_hydrogens(mol: &Molecule, at: usize) -> Option<u8> {
    let atom = mol.atom(at).ok()?;
    let sum = mol.bond_order_sum(at);
    let effective = if atom.aromatic { sum + 1 } else { sum };
    atom.element
        .default_valences()
        .iter()
        .copied()
        .find(|&v| v >= effective)
        .map(|v| v - effective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smiles::parse_smiles;

    #[test]
    fn plain_atoms_written_bare() {
        let m = parse_smiles("CCO").unwrap();
        let s = write_smiles(&m);
        assert!(!s.contains('['), "{s}");
    }

    #[test]
    fn radical_written_in_brackets() {
        let mut m = parse_smiles("CC").unwrap();
        m.remove_hydrogen(0).unwrap();
        let s = write_smiles_canonical(&m);
        assert!(s.contains("[CH2]"), "{s}");
        let m2 = parse_smiles(&s).unwrap();
        assert_eq!(m2.radical_sites().len(), 1);
    }

    #[test]
    fn charge_round_trips() {
        let m = parse_smiles("[NH4+]").unwrap();
        let s = write_smiles(&m);
        assert_eq!(s, "[NH4+]");
    }

    #[test]
    fn ring_digit_emitted() {
        let m = parse_smiles("C1CCCCC1").unwrap();
        let s = write_smiles_canonical(&m);
        assert!(s.contains('1'), "{s}");
        let m2 = parse_smiles(&s).unwrap();
        assert_eq!(m2.bond_count(), 6);
    }

    #[test]
    fn double_bond_symbol_preserved() {
        let m = parse_smiles("C=CC").unwrap();
        let s = write_smiles_canonical(&m);
        assert!(s.contains('='), "{s}");
    }

    #[test]
    fn fragments_dot_separated() {
        let m = parse_smiles("C.O").unwrap();
        let s = write_smiles_canonical(&m);
        assert!(s.contains('.'), "{s}");
        let m2 = parse_smiles(&s).unwrap();
        assert_eq!(m2.components().len(), 2);
    }

    #[test]
    fn bicyclic_round_trip() {
        let m = parse_smiles("C1CC2CCC1CC2").unwrap();
        let s = write_smiles_canonical(&m);
        let m2 = parse_smiles(&s).unwrap();
        assert_eq!(m.atom_count(), m2.atom_count());
        assert_eq!(m.bond_count(), m2.bond_count());
        assert_eq!(write_smiles_canonical(&m2), s);
    }
}
