//! SMILES parser (recursive descent over a byte cursor).

use std::collections::HashMap;

use crate::atom::Atom;
use crate::bond::BondOrder;
use crate::element::Element;
use crate::error::{MoleculeError, Result};
use crate::graph::Molecule;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn error(&self, message: impl Into<String>) -> MoleculeError {
        MoleculeError::SmilesSyntax {
            offset: self.pos,
            message: message.into(),
        }
    }
}

/// Pending ring-closure bookkeeping: which atom opened the digit and what
/// bond symbol (if any) was attached at the opening site.
struct RingOpen {
    atom: usize,
    order: Option<BondOrder>,
}

/// Parse a SMILES string into a [`Molecule`]. Implicit hydrogens are
/// inferred for organic-subset atoms; bracket atoms keep their explicit
/// hydrogen counts and gain radicals equal to their valence deficit.
pub fn parse_smiles(input: &str) -> Result<Molecule> {
    let mut cur = Cursor {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let mut mol = Molecule::new();
    // Stack of "previous atom" indices for branch handling; None at the
    // start of the string or right after a dot.
    let mut prev: Option<usize> = None;
    let mut branch_stack: Vec<Option<usize>> = Vec::new();
    let mut pending_bond: Option<BondOrder> = None;
    let mut rings: HashMap<u8, RingOpen> = HashMap::new();

    while let Some(b) = cur.peek() {
        match b {
            b'(' => {
                cur.bump();
                branch_stack.push(prev);
            }
            b')' => {
                cur.bump();
                prev = branch_stack
                    .pop()
                    .ok_or_else(|| cur.error("unbalanced ')'"))?;
            }
            b'.' => {
                cur.bump();
                prev = None;
                pending_bond = None;
            }
            b'-' => {
                cur.bump();
                pending_bond = Some(BondOrder::Single);
            }
            b'=' => {
                cur.bump();
                pending_bond = Some(BondOrder::Double);
            }
            b'#' => {
                cur.bump();
                pending_bond = Some(BondOrder::Triple);
            }
            b':' => {
                cur.bump();
                pending_bond = Some(BondOrder::Aromatic);
            }
            b'/' | b'\\' => {
                // Stereo bond markers: treated as single bonds.
                cur.bump();
                pending_bond = Some(BondOrder::Single);
            }
            b'0'..=b'9' => {
                cur.bump();
                let digit = b - b'0';
                handle_ring(&mut mol, &mut rings, prev, &mut pending_bond, digit, &cur)?;
            }
            b'%' => {
                cur.bump();
                let d1 = cur
                    .bump()
                    .filter(u8::is_ascii_digit)
                    .ok_or_else(|| cur.error("expected two digits after %"))?;
                let d2 = cur
                    .bump()
                    .filter(u8::is_ascii_digit)
                    .ok_or_else(|| cur.error("expected two digits after %"))?;
                let digit = (d1 - b'0') * 10 + (d2 - b'0');
                handle_ring(&mut mol, &mut rings, prev, &mut pending_bond, digit, &cur)?;
            }
            b'[' => {
                cur.bump();
                let (atom, aromatic) = parse_bracket_atom(&mut cur)?;
                let idx = mol.add_atom(atom);
                attach(&mut mol, &mut prev, idx, &mut pending_bond, aromatic)?;
            }
            _ => {
                let (atom, aromatic) = parse_organic_atom(&mut cur)?;
                let idx = mol.add_atom(atom);
                attach(&mut mol, &mut prev, idx, &mut pending_bond, aromatic)?;
            }
        }
    }

    if !branch_stack.is_empty() {
        return Err(cur.error("unbalanced '('"));
    }
    if let Some((&digit, _)) = rings.iter().next() {
        return Err(MoleculeError::UnclosedRing(digit));
    }

    finalize_hydrogens(&mut mol)?;
    Ok(mol)
}

fn handle_ring(
    mol: &mut Molecule,
    rings: &mut HashMap<u8, RingOpen>,
    prev: Option<usize>,
    pending_bond: &mut Option<BondOrder>,
    digit: u8,
    cur: &Cursor<'_>,
) -> Result<()> {
    let here = prev.ok_or_else(|| cur.error("ring closure before any atom"))?;
    match rings.remove(&digit) {
        None => {
            rings.insert(
                digit,
                RingOpen {
                    atom: here,
                    order: pending_bond.take(),
                },
            );
        }
        Some(open) => {
            let order = match (open.order, pending_bond.take()) {
                (Some(a), Some(b)) if a != b => return Err(MoleculeError::RingBondMismatch(digit)),
                (Some(a), _) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    // Bond defaults to aromatic if both ends are aromatic;
                    // decided in connect step below by looking at atoms.
                    let both_aromatic = mol.atom(open.atom)?.aromatic && mol.atom(here)?.aromatic;
                    if both_aromatic {
                        BondOrder::Aromatic
                    } else {
                        BondOrder::Single
                    }
                }
            };
            connect_lenient(mol, open.atom, here, order)?;
        }
    }
    Ok(())
}

/// Connect two parsed atoms structurally; hydrogen/radical inference
/// runs once at the end of parsing instead.
fn connect_lenient(mol: &mut Molecule, a: usize, b: usize, order: BondOrder) -> Result<()> {
    mol.add_bond(a, b, order)
}

fn attach(
    mol: &mut Molecule,
    prev: &mut Option<usize>,
    idx: usize,
    pending_bond: &mut Option<BondOrder>,
    aromatic: bool,
) -> Result<()> {
    if let Some(p) = *prev {
        let order = pending_bond.take().unwrap_or_else(|| {
            if aromatic && mol.atom(p).map(|a| a.aromatic).unwrap_or(false) {
                BondOrder::Aromatic
            } else {
                BondOrder::Single
            }
        });
        connect_lenient(mol, p, idx, order)?;
    }
    *prev = Some(idx);
    Ok(())
}

fn parse_organic_atom(cur: &mut Cursor<'_>) -> Result<(Atom, bool)> {
    let b = cur.bump().ok_or_else(|| cur.error("unexpected end"))?;
    let (element, aromatic) = match b {
        b'B' => {
            if cur.eat(b'r') {
                (Element::Br, false)
            } else {
                (Element::B, false)
            }
        }
        b'C' => {
            if cur.eat(b'l') {
                (Element::Cl, false)
            } else {
                (Element::C, false)
            }
        }
        b'N' => (Element::N, false),
        b'O' => (Element::O, false),
        b'F' => (Element::F, false),
        b'P' => (Element::P, false),
        b'S' => (Element::S, false),
        b'I' => (Element::I, false),
        b'b' => (Element::B, true),
        b'c' => (Element::C, true),
        b'n' => (Element::N, true),
        b'o' => (Element::O, true),
        b'p' => (Element::P, true),
        b's' => {
            if cur.eat(b'e') {
                (Element::Se, true)
            } else {
                (Element::S, true)
            }
        }
        other => return Err(cur.error(format!("unexpected character '{}'", char::from(other)))),
    };
    let mut atom = Atom::new(element);
    if aromatic {
        atom.aromatic = true;
    }
    Ok((atom, aromatic))
}

fn parse_bracket_atom(cur: &mut Cursor<'_>) -> Result<(Atom, bool)> {
    // Optional isotope number (ignored).
    while cur.peek().is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
    }
    let first = cur
        .bump()
        .ok_or_else(|| cur.error("unterminated bracket atom"))?;
    let mut aromatic = false;
    let mut symbol = String::new();
    if first.is_ascii_lowercase() {
        aromatic = true;
        symbol.push(char::from(first.to_ascii_uppercase()));
    } else {
        symbol.push(char::from(first));
        if cur.peek().is_some_and(|b| b.is_ascii_lowercase()) && cur.peek() != Some(b'h')
        // [CH3]: 'H' is uppercase; lowercase h never follows element here
        {
            // Two-letter symbol (Cl, Br, Si, Se, Zn).
            let second = cur.bump().unwrap();
            symbol.push(char::from(second));
            if Element::from_symbol(&symbol).is_none() {
                // Not a two-letter element: put the char back conceptually
                // by erroring (we do not support other two-letter symbols).
                return Err(cur.error(format!("unknown element '{symbol}'")));
            }
        }
    }
    let element = Element::from_symbol(&symbol)
        .ok_or_else(|| cur.error(format!("unknown element '{symbol}'")))?;
    if aromatic && !element.can_be_aromatic() {
        return Err(cur.error(format!("element {symbol} cannot be aromatic")));
    }

    // Chirality markers @ / @@ — accepted, ignored.
    while cur.eat(b'@') {}

    // Explicit hydrogen count.
    let mut hydrogens = 0u8;
    if cur.eat(b'H') {
        hydrogens = 1;
        if let Some(d) = cur.peek().filter(u8::is_ascii_digit) {
            cur.bump();
            hydrogens = d - b'0';
        }
    }

    // Charge.
    let mut charge: i8 = 0;
    while let Some(sign) = cur.peek().filter(|&b| b == b'+' || b == b'-') {
        cur.bump();
        let delta = if sign == b'+' { 1 } else { -1 };
        if let Some(d) = cur.peek().filter(u8::is_ascii_digit) {
            cur.bump();
            charge += delta * (d - b'0') as i8;
        } else {
            charge += delta;
        }
    }

    if !cur.eat(b']') {
        return Err(cur.error("expected ']'"));
    }

    let mut atom = Atom::with_hydrogens(element, hydrogens);
    atom.charge = charge;
    atom.aromatic = aromatic;
    Ok((atom, aromatic))
}

/// Final pass: infer implicit hydrogens for organic-subset atoms and
/// radicals for bracket atoms (valence deficit convention).
fn finalize_hydrogens(mol: &mut Molecule) -> Result<()> {
    for idx in 0..mol.atom_count() {
        let sum = mol.bond_order_sum(idx);
        let atom = *mol.atom(idx)?;
        // Aromatic atoms: charge one extra valence unit for the pi system.
        let effective = if atom.aromatic { sum + 1 } else { sum };
        if atom.fixed_hydrogens {
            // Bracket atom: radical count = deficit w.r.t. the smallest
            // standard valence >= bonds + H (no deficit -> closed shell).
            let committed = effective + atom.hydrogens;
            let radicals = atom
                .element
                .default_valences()
                .iter()
                .copied()
                .find(|&v| v >= committed)
                .map(|v| v - committed)
                .unwrap_or(0);
            mol.atom_mut(idx)?.radicals = radicals;
        } else {
            let h = atom
                .element
                .default_valences()
                .iter()
                .copied()
                .find(|&v| v >= effective)
                .map(|v| v - effective)
                .unwrap_or(0);
            mol.atom_mut(idx)?.hydrogens = h;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methane_has_four_hydrogens() {
        let m = parse_smiles("C").unwrap();
        assert_eq!(m.atom(0).unwrap().hydrogens, 4);
    }

    #[test]
    fn double_bond_reduces_hydrogens() {
        let m = parse_smiles("C=C").unwrap();
        assert_eq!(m.atom(0).unwrap().hydrogens, 2);
        assert_eq!(m.bond_between(0, 1).unwrap().order, BondOrder::Double);
    }

    #[test]
    fn branch_structure() {
        let m = parse_smiles("CC(C)C").unwrap(); // isobutane
        assert_eq!(m.atom_count(), 4);
        assert_eq!(m.degree(1), 3);
        assert_eq!(m.atom(1).unwrap().hydrogens, 1);
    }

    #[test]
    fn ring_closure_cyclohexane() {
        let m = parse_smiles("C1CCCCC1").unwrap();
        assert_eq!(m.atom_count(), 6);
        assert_eq!(m.bond_count(), 6);
        for (i, a) in m.atoms() {
            assert_eq!(a.hydrogens, 2, "atom {i}");
        }
    }

    #[test]
    fn aromatic_benzene() {
        let m = parse_smiles("c1ccccc1").unwrap();
        assert_eq!(m.bond_count(), 6);
        for (_, a) in m.atoms() {
            assert!(a.aromatic);
            assert_eq!(a.hydrogens, 1);
        }
        assert!(m.bonds().all(|b| b.order == BondOrder::Aromatic));
    }

    #[test]
    fn bracket_charge() {
        let m = parse_smiles("[NH4+]").unwrap();
        let a = m.atom(0).unwrap();
        assert_eq!(a.hydrogens, 4);
        assert_eq!(a.charge, 1);
    }

    #[test]
    fn percent_ring_closure() {
        let a = parse_smiles("C%12CCCCC%12").unwrap();
        let b = parse_smiles("C1CCCCC1").unwrap();
        assert_eq!(a.bond_count(), b.bond_count());
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(
            parse_smiles("C(C"),
            Err(MoleculeError::SmilesSyntax { .. })
        ));
        assert!(matches!(
            parse_smiles("C1CC"),
            Err(MoleculeError::UnclosedRing(1))
        ));
        assert!(matches!(
            parse_smiles("C)"),
            Err(MoleculeError::SmilesSyntax { .. })
        ));
        assert!(matches!(
            parse_smiles("[Xx]"),
            Err(MoleculeError::SmilesSyntax { .. })
        ));
        assert!(matches!(
            parse_smiles("C=1CCCCC#1"),
            Err(MoleculeError::RingBondMismatch(1))
        ));
    }

    #[test]
    fn ring_bond_order_on_either_end() {
        let a = parse_smiles("C=1CCCCC=1").unwrap();
        assert!(a.bonds().any(|b| b.order == BondOrder::Double));
        let b = parse_smiles("C=1CCCCC1").unwrap();
        assert!(b.bonds().any(|x| x.order == BondOrder::Double));
    }

    #[test]
    fn polysulfide_bridge() {
        // dimethyl tetrasulfide CH3-S-S-S-S-CH3
        let m = parse_smiles("CSSSSC").unwrap();
        assert_eq!(m.atom_count(), 6);
        let s_chain: Vec<usize> = m
            .atoms()
            .filter(|(_, a)| a.element == Element::S)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(s_chain.len(), 4);
        for &s in &s_chain {
            assert_eq!(m.atom(s).unwrap().hydrogens, 0);
        }
    }
}
