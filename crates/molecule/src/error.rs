//! Error types for the molecule substrate.

use std::fmt;

/// Errors raised by molecular-graph edits and SMILES I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoleculeError {
    /// An atom index was out of range.
    InvalidAtom(usize),
    /// A bond between the named endpoints does not exist.
    NoSuchBond(usize, usize),
    /// A bond between the named endpoints already exists.
    BondExists(usize, usize),
    /// A self-bond was requested.
    SelfBond(usize),
    /// A valence constraint was violated by an edit.
    ValenceViolation {
        /// Offending atom index.
        atom: usize,
        /// Human-readable explanation.
        detail: String,
    },
    /// The atom has no (implicit) hydrogen to remove.
    NoHydrogen(usize),
    /// The bond order could not be stepped in the requested direction.
    BondOrderLimit(usize, usize),
    /// SMILES syntax error at a byte offset.
    SmilesSyntax {
        /// Byte offset into the input string.
        offset: usize,
        /// What was expected or found.
        message: String,
    },
    /// SMILES references a ring-closure digit that never closes.
    UnclosedRing(u8),
    /// Two ring-closure bonds disagree about the bond order.
    RingBondMismatch(u8),
}

impl fmt::Display for MoleculeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoleculeError::InvalidAtom(i) => write!(f, "atom index {i} out of range"),
            MoleculeError::NoSuchBond(a, b) => write!(f, "no bond between atoms {a} and {b}"),
            MoleculeError::BondExists(a, b) => {
                write!(f, "bond between atoms {a} and {b} already exists")
            }
            MoleculeError::SelfBond(a) => write!(f, "cannot bond atom {a} to itself"),
            MoleculeError::ValenceViolation { atom, detail } => {
                write!(f, "valence violation at atom {atom}: {detail}")
            }
            MoleculeError::NoHydrogen(a) => write!(f, "atom {a} has no hydrogen to remove"),
            MoleculeError::BondOrderLimit(a, b) => {
                write!(
                    f,
                    "bond order between atoms {a} and {b} cannot change further"
                )
            }
            MoleculeError::SmilesSyntax { offset, message } => {
                write!(f, "SMILES syntax error at offset {offset}: {message}")
            }
            MoleculeError::UnclosedRing(d) => write!(f, "ring closure {d} never closed"),
            MoleculeError::RingBondMismatch(d) => {
                write!(f, "ring closure {d} has conflicting bond orders")
            }
        }
    }
}

impl std::error::Error for MoleculeError {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, MoleculeError>;
