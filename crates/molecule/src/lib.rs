//! # rms-molecule — symbolic chemistry substrate
//!
//! The paper's chemical compiler stores and manipulates molecules "using
//! the SMILES Java classes" of the CDK. This crate is the Rust equivalent:
//!
//! * [`Molecule`]: an undirected labelled graph of [`Atom`]s and [`Bond`]s
//!   implementing the paper's six reaction-rule primitives (connect,
//!   disconnect, bond order ±1, remove/add hydrogen);
//! * [`smiles`]: a SMILES subset parser and writer;
//! * [`canon`]: Morgan-style canonical labeling, giving O(1) molecule
//!   equality through canonical SMILES strings;
//! * [`pattern`]: reaction-site predicates and VF2-style subgraph matching
//!   used by the RDL rule engine;
//! * [`Formula`]: molecular formulas for conservation checking.

#![warn(missing_docs)]

pub mod atom;
pub mod bond;
pub mod canon;
pub mod element;
pub mod error;
pub mod formula;
pub mod graph;
pub mod intern;
pub mod pattern;
pub mod smiles;

pub use atom::Atom;
pub use bond::{Bond, BondOrder};
pub use element::Element;
pub use error::{MoleculeError, Result};
pub use formula::Formula;
pub use graph::Molecule;
pub use intern::{identify, KeyTable, MolIdentity, Sym};
pub use pattern::{AtomPredicate, BondPredicate, QueryGraph};
pub use smiles::{parse_smiles, write_smiles, write_smiles_canonical};

/// Canonical key for a molecule: equal keys iff isomorphic molecules.
/// This is the dedup key used while generating reaction networks.
pub fn canonical_key(mol: &Molecule) -> String {
    write_smiles_canonical(mol)
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random tree-shaped molecules over {C, N, O, S}.
    fn arb_molecule() -> impl Strategy<Value = Molecule> {
        let elems = prop::sample::select(vec![Element::C, Element::N, Element::O, Element::S]);
        prop::collection::vec((elems, 0usize..8), 1..12).prop_map(|nodes| {
            let mut m = Molecule::new();
            for (i, (e, parent_seed)) in nodes.iter().enumerate() {
                let idx = m.add_atom(Atom::new(*e));
                m.infer_all_hydrogens().unwrap();
                if i > 0 {
                    let parent = parent_seed % i;
                    // connect may fail on valence-saturated parents; skip.
                    let _ = m.connect(parent, idx, BondOrder::Single);
                    m.infer_all_hydrogens().unwrap();
                }
            }
            m
        })
    }

    proptest! {
        /// parse(write_canonical(m)) has the same canonical form: the
        /// canonical string is a fixpoint.
        #[test]
        fn canonical_smiles_round_trip(m in arb_molecule()) {
            let s = write_smiles_canonical(&m);
            if s.is_empty() { return Ok(()); }
            let m2 = parse_smiles(&s).unwrap();
            prop_assert_eq!(write_smiles_canonical(&m2), s);
        }

        /// The canonical key is independent of the traversal order used to
        /// serialize the molecule.
        #[test]
        fn canonical_key_traversal_invariant(m in arb_molecule()) {
            let s1 = write_smiles_canonical(&m);
            let plain = write_smiles(&m);
            if plain.is_empty() { return Ok(()); }
            let m3 = parse_smiles(&plain).unwrap();
            prop_assert_eq!(write_smiles_canonical(&m3), s1);
        }

        /// Formula is preserved by SMILES round trip.
        #[test]
        fn formula_preserved(m in arb_molecule()) {
            let s = write_smiles_canonical(&m);
            if s.is_empty() { return Ok(()); }
            let m2 = parse_smiles(&s).unwrap();
            prop_assert_eq!(Formula::of(&m), Formula::of(&m2));
        }

        /// disconnect followed by connect restores the bond count and
        /// total formula.
        #[test]
        fn scission_recombination(m in arb_molecule()) {
            let mut m = m;
            let Some(bond) = m.bonds().next().copied() else { return Ok(()); };
            let before_bonds = m.bond_count();
            let before_formula = Formula::of(&m);
            m.disconnect(bond.a, bond.b).unwrap();
            m.connect(bond.a, bond.b, bond.order).unwrap();
            prop_assert_eq!(m.bond_count(), before_bonds);
            prop_assert_eq!(Formula::of(&m), before_formula);
        }
    }
}
