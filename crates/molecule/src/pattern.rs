//! Reaction-site patterns and subgraph matching.
//!
//! RDL rules select *sites* — atoms or bonds satisfying structural
//! predicates — before applying one of the six graph edits. This module
//! provides both the predicate vocabulary (element, hydrogen count,
//! radical, degree, chain depth, allylic position) and a VF2-style
//! subgraph-isomorphism matcher for full structural queries.

use crate::bond::BondOrder;
use crate::element::Element;
use crate::graph::Molecule;

/// A predicate on a single atom within its molecule.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomPredicate {
    /// The atom is of this element.
    Is(Element),
    /// The atom has at least this many implicit hydrogens.
    MinHydrogens(u8),
    /// The atom carries at least one unpaired electron.
    Radical,
    /// The atom is closed-shell.
    NotRadical,
    /// Explicit-bond degree is at least this.
    MinDegree(usize),
    /// Explicit-bond degree is exactly this.
    Degree(usize),
    /// Same-element chain depth (see [`Molecule::chain_depth`]) is at least
    /// this. The paper's motivating example: "only break sulfur-to-sulfur
    /// bonds when the bonds are between sulfur atoms at least three atoms
    /// from the end of a chain of sulfurs".
    MinChainDepth(Element, usize),
    /// sp3 carbon adjacent to a C=C double bond.
    Allylic,
    /// The atom is bonded to an atom of the given element.
    BondedTo(Element),
    /// The atom is NOT bonded to an atom of the given element.
    NotBondedTo(Element),
    /// Conjunction.
    All(Vec<AtomPredicate>),
    /// Disjunction.
    Any(Vec<AtomPredicate>),
}

impl AtomPredicate {
    /// Evaluate the predicate for atom `idx` of `mol`.
    pub fn matches(&self, mol: &Molecule, idx: usize) -> bool {
        let Ok(atom) = mol.atom(idx) else {
            return false;
        };
        match self {
            AtomPredicate::Is(e) => atom.element == *e,
            AtomPredicate::MinHydrogens(h) => atom.hydrogens >= *h,
            AtomPredicate::Radical => atom.is_radical(),
            AtomPredicate::NotRadical => !atom.is_radical(),
            AtomPredicate::MinDegree(d) => mol.degree(idx) >= *d,
            AtomPredicate::Degree(d) => mol.degree(idx) == *d,
            AtomPredicate::MinChainDepth(e, d) => mol.chain_depth(idx, *e) >= *d,
            AtomPredicate::Allylic => mol.is_allylic_carbon(idx),
            AtomPredicate::BondedTo(e) => mol
                .neighbors(idx)
                .any(|n| mol.atom(n).map(|a| a.element == *e).unwrap_or(false)),
            AtomPredicate::NotBondedTo(e) => !mol
                .neighbors(idx)
                .any(|n| mol.atom(n).map(|a| a.element == *e).unwrap_or(false)),
            AtomPredicate::All(ps) => ps.iter().all(|p| p.matches(mol, idx)),
            AtomPredicate::Any(ps) => ps.iter().any(|p| p.matches(mol, idx)),
        }
    }

    /// All atom indices of `mol` satisfying the predicate.
    pub fn select(&self, mol: &Molecule) -> Vec<usize> {
        (0..mol.atom_count())
            .filter(|&i| self.matches(mol, i))
            .collect()
    }
}

/// A predicate on a bond: both endpoint predicates plus an optional order
/// constraint. Endpoint predicates are tried in both orientations.
#[derive(Debug, Clone, PartialEq)]
pub struct BondPredicate {
    /// Predicate for one endpoint.
    pub left: AtomPredicate,
    /// Predicate for the other endpoint.
    pub right: AtomPredicate,
    /// Required bond order, or `None` for any.
    pub order: Option<BondOrder>,
}

impl BondPredicate {
    /// Convenience constructor for "element–element single bond".
    pub fn between(a: Element, b: Element) -> BondPredicate {
        BondPredicate {
            left: AtomPredicate::Is(a),
            right: AtomPredicate::Is(b),
            order: None,
        }
    }

    /// All matching bonds as `(a, b)` pairs oriented so the `left`
    /// predicate matches `a`. Each underlying bond appears at most once.
    pub fn select(&self, mol: &Molecule) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for bond in mol.bonds() {
            if let Some(required) = self.order {
                if bond.order != required {
                    continue;
                }
            }
            if self.left.matches(mol, bond.a) && self.right.matches(mol, bond.b) {
                out.push((bond.a, bond.b));
            } else if self.left.matches(mol, bond.b) && self.right.matches(mol, bond.a) {
                out.push((bond.b, bond.a));
            }
        }
        out
    }
}

/// A structural query graph for subgraph-isomorphism matching: atoms carry
/// predicates, edges carry optional order constraints.
#[derive(Debug, Clone, Default)]
pub struct QueryGraph {
    nodes: Vec<AtomPredicate>,
    edges: Vec<(usize, usize, Option<BondOrder>)>,
}

impl QueryGraph {
    /// Empty query.
    pub fn new() -> QueryGraph {
        QueryGraph::default()
    }

    /// Add a query node, returning its index.
    pub fn node(&mut self, pred: AtomPredicate) -> usize {
        self.nodes.push(pred);
        self.nodes.len() - 1
    }

    /// Add a query edge.
    pub fn edge(&mut self, a: usize, b: usize, order: Option<BondOrder>) {
        self.edges.push((a, b, order));
    }

    /// Number of query nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the query is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Find all embeddings of the query into `mol`. Returns one mapping
    /// (query node -> molecule atom) per match; mappings are injective.
    pub fn find_all(&self, mol: &Molecule) -> Vec<Vec<usize>> {
        let mut results = Vec::new();
        let mut assignment = vec![usize::MAX; self.nodes.len()];
        let mut used = vec![false; mol.atom_count()];
        self.extend_match(mol, 0, &mut assignment, &mut used, &mut results, usize::MAX);
        results
    }

    /// Find embeddings, stopping after `limit` matches.
    pub fn find_up_to(&self, mol: &Molecule, limit: usize) -> Vec<Vec<usize>> {
        let mut results = Vec::new();
        let mut assignment = vec![usize::MAX; self.nodes.len()];
        let mut used = vec![false; mol.atom_count()];
        self.extend_match(mol, 0, &mut assignment, &mut used, &mut results, limit);
        results
    }

    /// Whether at least one embedding exists.
    pub fn matches(&self, mol: &Molecule) -> bool {
        !self.find_up_to(mol, 1).is_empty()
    }

    fn extend_match(
        &self,
        mol: &Molecule,
        node: usize,
        assignment: &mut Vec<usize>,
        used: &mut Vec<bool>,
        results: &mut Vec<Vec<usize>>,
        limit: usize,
    ) {
        if results.len() >= limit {
            return;
        }
        if node == self.nodes.len() {
            results.push(assignment.clone());
            return;
        }
        // Candidate atoms: if some already-assigned query node is adjacent
        // to `node`, restrict to neighbors of its image (VF2 pruning).
        let anchor = self.edges.iter().find_map(|&(a, b, _)| {
            if a == node && assignment[b] != usize::MAX {
                Some(assignment[b])
            } else if b == node && assignment[a] != usize::MAX {
                Some(assignment[a])
            } else {
                None
            }
        });
        let candidates: Vec<usize> = match anchor {
            Some(at) => mol.neighbors(at).collect(),
            None => (0..mol.atom_count()).collect(),
        };
        for cand in candidates {
            if used[cand] || !self.nodes[node].matches(mol, cand) {
                continue;
            }
            // Check all edges between `node` and already-assigned nodes.
            let ok = self.edges.iter().all(|&(a, b, order)| {
                let (other, this) = if a == node {
                    (b, a)
                } else if b == node {
                    (a, b)
                } else {
                    return true;
                };
                debug_assert_eq!(this, node);
                let img = assignment[other];
                if img == usize::MAX {
                    return true;
                }
                match mol.bond_between(cand, img) {
                    Some(bond) => order.is_none_or(|o| bond.order == o),
                    None => false,
                }
            });
            if !ok {
                continue;
            }
            assignment[node] = cand;
            used[cand] = true;
            self.extend_match(mol, node + 1, assignment, used, results, limit);
            used[cand] = false;
            assignment[node] = usize::MAX;
            if results.len() >= limit {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smiles::parse_smiles;

    #[test]
    fn element_predicate_selects() {
        let m = parse_smiles("CSSC").unwrap();
        let sulfurs = AtomPredicate::Is(Element::S).select(&m);
        assert_eq!(sulfurs, vec![1, 2]);
    }

    #[test]
    fn bond_predicate_finds_ss_bond() {
        let m = parse_smiles("CSSC").unwrap();
        let ss = BondPredicate::between(Element::S, Element::S).select(&m);
        assert_eq!(ss.len(), 1);
        let cs = BondPredicate::between(Element::C, Element::S).select(&m);
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn chain_depth_predicate_mirrors_paper_example() {
        // S8 chain capped with CH3: only interior S–S bonds at least three
        // atoms from a chain end match.
        let m = parse_smiles("CSSSSSSSSC").unwrap();
        let pred = BondPredicate {
            left: AtomPredicate::All(vec![
                AtomPredicate::Is(Element::S),
                AtomPredicate::MinChainDepth(Element::S, 3),
            ]),
            right: AtomPredicate::All(vec![
                AtomPredicate::Is(Element::S),
                AtomPredicate::MinChainDepth(Element::S, 3),
            ]),
            order: Some(BondOrder::Single),
        };
        let hits = pred.select(&m);
        // S atoms are indices 1..=8; chain depth >= 3 holds for 3,4,5,6;
        // qualifying S-S bonds: (3,4), (4,5), (5,6).
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn radical_predicate() {
        let mut m = parse_smiles("CSSC").unwrap();
        m.disconnect(1, 2).unwrap();
        let radicals = AtomPredicate::Radical.select(&m);
        assert_eq!(radicals, vec![1, 2]);
    }

    #[test]
    fn query_graph_finds_thiol() {
        // Query: S(with H) - C
        let mut q = QueryGraph::new();
        let s = q.node(AtomPredicate::All(vec![
            AtomPredicate::Is(Element::S),
            AtomPredicate::MinHydrogens(1),
        ]));
        let c = q.node(AtomPredicate::Is(Element::C));
        q.edge(s, c, Some(BondOrder::Single));
        let m = parse_smiles("SCC").unwrap();
        let hits = q.find_all(&m);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][0], 0);
        assert_eq!(hits[0][1], 1);
    }

    #[test]
    fn query_graph_respects_bond_order() {
        let mut q = QueryGraph::new();
        let a = q.node(AtomPredicate::Is(Element::C));
        let b = q.node(AtomPredicate::Is(Element::C));
        q.edge(a, b, Some(BondOrder::Double));
        assert!(q.matches(&parse_smiles("C=CC").unwrap()));
        assert!(!q.matches(&parse_smiles("CCC").unwrap()));
    }

    #[test]
    fn query_injective() {
        // Two distinct S nodes cannot map onto one atom.
        let mut q = QueryGraph::new();
        q.node(AtomPredicate::Is(Element::S));
        q.node(AtomPredicate::Is(Element::S));
        assert!(!q.matches(&parse_smiles("CSC").unwrap()));
        assert!(q.matches(&parse_smiles("CSSC").unwrap()));
    }

    #[test]
    fn find_up_to_limits() {
        let m = parse_smiles("CCCCCC").unwrap();
        let mut q = QueryGraph::new();
        let a = q.node(AtomPredicate::Is(Element::C));
        let b = q.node(AtomPredicate::Is(Element::C));
        q.edge(a, b, None);
        let all = q.find_all(&m);
        assert_eq!(all.len(), 10); // 5 bonds, both orientations
        let some = q.find_up_to(&m, 3);
        assert_eq!(some.len(), 3);
    }

    #[test]
    fn allylic_and_bonded_to() {
        let m = parse_smiles("C=CCS").unwrap();
        let allylic = AtomPredicate::Allylic.select(&m);
        assert_eq!(allylic, vec![2]);
        let c_bonded_s = AtomPredicate::All(vec![
            AtomPredicate::Is(Element::C),
            AtomPredicate::BondedTo(Element::S),
        ])
        .select(&m);
        assert_eq!(c_bonded_s, vec![2]);
    }
}
