//! Canonical atom ranking (Morgan-style iterative refinement with
//! tie-breaking), the basis for canonical SMILES, molecule equality and
//! hashing.
//!
//! The paper relies on the CDK for "isomorphism checking" when deduping
//! molecules produced by rule application; canonical labeling gives us the
//! same capability with O(1) equality via the canonical string.

use std::collections::HashMap;

use crate::graph::Molecule;

/// Initial per-atom invariant (element, connectivity, hydrogen count,
/// charge, radicals, aromaticity).
pub(crate) fn initial_invariants(mol: &Molecule) -> Vec<u64> {
    mol.atoms()
        .map(|(i, a)| {
            let mut v: u64 = a.element.atomic_number() as u64;
            v = v * 16 + mol.degree(i) as u64;
            v = v * 16 + a.hydrogens as u64;
            v = v * 32 + (a.charge as i64 + 8) as u64;
            v = v * 8 + a.radicals as u64;
            v = v * 2 + a.aromatic as u64;
            v
        })
        .collect()
}

/// Compress arbitrary invariant values into dense ranks `0..k`, preserving
/// order. Returns (ranks, class count).
fn densify(values: &[u64]) -> (Vec<u32>, usize) {
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let index: HashMap<u64, u32> = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let ranks = values.iter().map(|v| index[v]).collect();
    (ranks, sorted.len())
}

/// One refinement round: each atom's new invariant combines its rank with
/// the sorted multiset of (bond order, neighbor rank) pairs.
fn refine_once(mol: &Molecule, ranks: &[u32]) -> Vec<u64> {
    let n = mol.atom_count();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut nbrs: Vec<u64> = mol
            .neighbors(i)
            .map(|j| {
                let order = mol
                    .bond_between(i, j)
                    .map(|b| {
                        b.order.valence_units() as u64
                            + if b.order == crate::bond::BondOrder::Aromatic {
                                8
                            } else {
                                0
                            }
                    })
                    .unwrap_or(0);
                order * (n as u64 + 1) + ranks[j] as u64
            })
            .collect();
        nbrs.sort_unstable();
        // FNV-style fold so the invariant stays a single u64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (ranks[i] as u64);
        for v in nbrs {
            h = (h ^ v).wrapping_mul(0x1000_0000_01b3);
        }
        out.push(h)
    }
    out
}

/// Refine ranks until the partition stops growing.
pub(crate) fn refine_to_fixpoint(mol: &Molecule, start: Vec<u64>) -> (Vec<u32>, usize) {
    let (mut ranks, mut classes) = densify(&start);
    loop {
        let next = refine_once(mol, &ranks);
        // Combine old rank with the refinement so the partition only splits.
        let combined: Vec<u64> = next
            .iter()
            .zip(&ranks)
            .map(|(&h, &r)| h.wrapping_mul(31).wrapping_add(r as u64 + 1))
            .collect();
        let (new_ranks, new_classes) = densify(&combined);
        if new_classes == classes {
            return (ranks, classes);
        }
        ranks = new_ranks;
        classes = new_classes;
    }
}

/// Compute canonical ranks for all atoms: a permutation-invariant total
/// order (ties broken by systematic individualization, choosing the branch
/// with the lexicographically smallest certificate).
pub fn canonical_ranks(mol: &Molecule) -> Vec<u32> {
    let n = mol.atom_count();
    if n == 0 {
        return Vec::new();
    }
    let (ranks, classes) = refine_to_fixpoint(mol, initial_invariants(mol));
    if classes == n {
        return ranks;
    }
    // Tie-breaking by individualization-refinement: find the smallest tied
    // class, promote each member in turn, recurse, and keep the branch
    // whose certificate is smallest.
    let mut best: Option<(Vec<u64>, Vec<u32>)> = None;
    let tied_rank = smallest_tied_class(&ranks, n);
    for atom in 0..n {
        if ranks[atom] != tied_rank {
            continue;
        }
        let mut seed: Vec<u64> = ranks.iter().map(|&r| r as u64 * 2).collect();
        seed[atom] += 1; // individualize
        let refined = complete_ranks(mol, seed);
        let cert = certificate(mol, &refined);
        match &best {
            Some((best_cert, _)) if *best_cert <= cert => {}
            _ => best = Some((cert, refined)),
        }
    }
    best.expect("tied class was non-empty").1
}

/// Recursively refine + individualize until the partition is discrete.
fn complete_ranks(mol: &Molecule, seed: Vec<u64>) -> Vec<u32> {
    let n = mol.atom_count();
    let (ranks, classes) = refine_to_fixpoint(mol, seed);
    if classes == n {
        return ranks;
    }
    let tied_rank = smallest_tied_class(&ranks, n);
    let mut best: Option<(Vec<u64>, Vec<u32>)> = None;
    for atom in 0..n {
        if ranks[atom] != tied_rank {
            continue;
        }
        let mut seed: Vec<u64> = ranks.iter().map(|&r| r as u64 * 2).collect();
        seed[atom] += 1;
        let refined = complete_ranks(mol, seed);
        let cert = certificate(mol, &refined);
        match &best {
            Some((best_cert, _)) if *best_cert <= cert => {}
            _ => best = Some((cert, refined)),
        }
    }
    best.expect("tied class was non-empty").1
}

fn smallest_tied_class(ranks: &[u32], n: usize) -> u32 {
    let mut counts = vec![0u32; n];
    for &r in ranks {
        counts[r as usize] += 1;
    }
    (0..n as u32)
        .find(|&r| counts[r as usize] > 1)
        .expect("called with a non-discrete partition")
}

/// A canonical certificate: the adjacency relation rewritten in rank space.
/// Two rank assignments of the same molecule compare meaningfully.
pub(crate) fn certificate(mol: &Molecule, ranks: &[u32]) -> Vec<u64> {
    let n = mol.atom_count() as u64;
    let mut edges: Vec<u64> = mol
        .bonds()
        .map(|b| {
            let (lo, hi) = {
                let (ra, rb) = (ranks[b.a] as u64, ranks[b.b] as u64);
                if ra <= rb {
                    (ra, rb)
                } else {
                    (rb, ra)
                }
            };
            (lo * n + hi) * 8 + b.order.valence_units() as u64
        })
        .collect();
    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::bond::BondOrder;
    use crate::element::Element;

    fn chain(elements: &[Element]) -> Molecule {
        let mut m = Molecule::new();
        let idx: Vec<usize> = elements.iter().map(|&e| m.add_atom(Atom::new(e))).collect();
        m.infer_all_hydrogens().unwrap();
        for w in idx.windows(2) {
            m.connect(w[0], w[1], BondOrder::Single).unwrap();
            m.infer_all_hydrogens().unwrap();
        }
        m
    }

    #[test]
    fn ranks_are_a_permutation() {
        let m = chain(&[Element::C, Element::S, Element::O, Element::C]);
        let mut r = canonical_ranks(&m);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn symmetric_chain_ends_tie_broken() {
        // propane: the two CH3 are equivalent; ranks must still be discrete.
        let m = chain(&[Element::C, Element::C, Element::C]);
        let mut r = canonical_ranks(&m);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2]);
    }

    #[test]
    fn relabeling_gives_same_certificate() {
        // Build CCO and OCC (reverse labeling); certificates must agree.
        let a = chain(&[Element::C, Element::C, Element::O]);
        let b = chain(&[Element::O, Element::C, Element::C]);
        let ca = certificate(&a, &canonical_ranks(&a));
        let cb = certificate(&b, &canonical_ranks(&b));
        assert_eq!(ca, cb);
    }

    #[test]
    fn different_molecules_differ() {
        let a = chain(&[Element::C, Element::C, Element::O]);
        let b = chain(&[Element::C, Element::O, Element::C]);
        let ca = certificate(&a, &canonical_ranks(&a));
        let cb = certificate(&b, &canonical_ranks(&b));
        assert_ne!(ca, cb);
    }

    #[test]
    fn empty_molecule() {
        let m = Molecule::new();
        assert!(canonical_ranks(&m).is_empty());
    }

    #[test]
    fn ring_symmetry_fully_broken() {
        // cyclohexane: all atoms equivalent; individualization must still
        // produce a discrete, deterministic ranking.
        let mut m = Molecule::new();
        let idx: Vec<usize> = (0..6).map(|_| m.add_atom(Atom::new(Element::C))).collect();
        m.infer_all_hydrogens().unwrap();
        for i in 0..6 {
            m.connect(idx[i], idx[(i + 1) % 6], BondOrder::Single)
                .unwrap();
            m.infer_all_hydrogens().unwrap();
        }
        let mut r = canonical_ranks(&m);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3, 4, 5]);
    }
}
