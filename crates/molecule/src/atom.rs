//! Atoms: element plus the per-atom state the reaction rules manipulate.

use crate::element::Element;

/// An atom inside a [`crate::Molecule`].
///
/// Hydrogens are kept implicit (a count on the heavy atom) unless a rule or
/// SMILES input makes them explicit; the paper's rule set includes
/// "remove a hydrogen atom" / "add hydrogen atoms", which operate on this
/// count and toggle radical character.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Chemical element.
    pub element: Element,
    /// Number of implicit hydrogens attached to this atom.
    pub hydrogens: u8,
    /// Formal charge.
    pub charge: i8,
    /// Number of unpaired electrons (0 = closed shell, 1 = radical, ...).
    /// Radicals drive vulcanization chemistry: sulfur radicals attack
    /// allylic carbons to form crosslinks.
    pub radicals: u8,
    /// Aromatic flag as written in SMILES (lowercase atoms).
    pub aromatic: bool,
    /// Whether the hydrogen count was given explicitly (bracket atom) and
    /// must not be re-derived from valence rules.
    pub fixed_hydrogens: bool,
}

impl Atom {
    /// A plain, closed-shell atom of `element` with hydrogens to be
    /// inferred from default valences.
    pub fn new(element: Element) -> Atom {
        Atom {
            element,
            hydrogens: 0,
            charge: 0,
            radicals: 0,
            aromatic: false,
            fixed_hydrogens: false,
        }
    }

    /// An atom with an explicit hydrogen count (as in `[SH]`).
    pub fn with_hydrogens(element: Element, hydrogens: u8) -> Atom {
        Atom {
            element,
            hydrogens,
            charge: 0,
            radicals: 0,
            aromatic: false,
            fixed_hydrogens: true,
        }
    }

    /// Builder-style: set formal charge.
    pub fn charged(mut self, charge: i8) -> Atom {
        self.charge = charge;
        self
    }

    /// Builder-style: set unpaired-electron count.
    pub fn radical(mut self, radicals: u8) -> Atom {
        self.radicals = radicals;
        self
    }

    /// Builder-style: mark aromatic.
    pub fn aromatic(mut self) -> Atom {
        self.aromatic = true;
        self
    }

    /// True if the atom has at least one unpaired electron.
    pub fn is_radical(&self) -> bool {
        self.radicals > 0
    }

    /// Total valence this atom must satisfy given `bond_order_sum` from
    /// explicit bonds: the smallest default valence that accommodates the
    /// bonds, explicit hydrogens, and radical electrons. Returns `None` when
    /// no standard valence fits (hypervalent beyond the table), in which
    /// case the implicit hydrogen count is pinned to zero.
    pub fn target_valence(&self, bond_order_sum: u8) -> Option<u8> {
        let needed = bond_order_sum
            .saturating_add(if self.fixed_hydrogens {
                self.hydrogens
            } else {
                0
            })
            .saturating_add(self.radicals);
        self.element
            .default_valences()
            .iter()
            .copied()
            .find(|&v| v >= needed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_atom_is_neutral_closed_shell() {
        let a = Atom::new(Element::C);
        assert_eq!(a.charge, 0);
        assert!(!a.is_radical());
        assert!(!a.fixed_hydrogens);
    }

    #[test]
    fn target_valence_picks_smallest_fitting() {
        let s = Atom::new(Element::S);
        assert_eq!(s.target_valence(2), Some(2));
        assert_eq!(s.target_valence(3), Some(4));
        assert_eq!(s.target_valence(5), Some(6));
        assert_eq!(s.target_valence(7), None);
    }

    #[test]
    fn radical_consumes_valence() {
        // A sulfur radical with one bond: 1 bond + 1 unpaired electron fits
        // valence 2, so no implicit hydrogen remains.
        let s = Atom::new(Element::S).radical(1);
        assert_eq!(s.target_valence(1), Some(2));
    }

    #[test]
    fn fixed_hydrogens_count_toward_valence() {
        let s = Atom::with_hydrogens(Element::S, 1);
        assert_eq!(s.target_valence(1), Some(2));
        assert_eq!(s.target_valence(2), Some(4));
    }
}
