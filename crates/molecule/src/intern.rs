//! Interned molecule identity: a cheap permutation-invariant content hash
//! plus an exact canonical certificate, replacing canonical SMILES strings
//! as the dedup key on the network-generation hot path.
//!
//! The rule engine produces the same fragment molecules over and over;
//! deduplicating them through canonical SMILES means running full
//! individualization-refinement *and* building a string for every
//! candidate, then hashing that string. The interned path splits the work:
//!
//! 1. [`identify`] computes a 64-bit **invariant hash** from one
//!    refinement fixpoint (no individualization, no strings) and, sharing
//!    the same refinement, an **exact certificate** — the labelled graph
//!    rewritten in canonical rank space. Only molecules whose refinement
//!    partition is not discrete (symmetric molecules) pay for the full
//!    individualization tie-break.
//! 2. [`KeyTable`] interns identities into dense [`Sym`] symbols. The
//!    hash acts as a prefilter: an empty bucket proves the molecule is
//!    new without comparing any certificate; only hash-bucket collisions
//!    compare certificates (almost always against the single isomorphic
//!    occupant).
//!
//! Equal certificates ⇔ isomorphic molecules ⇔ equal canonical SMILES, so
//! a network deduplicated through a `KeyTable` is identical to one
//! deduplicated through [`crate::canonical_key`] strings.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::canon::{canonical_ranks, certificate, initial_invariants, refine_to_fixpoint};
use crate::graph::Molecule;

/// Dense symbol assigned by a [`KeyTable`], in first-seen order.
pub type Sym = u32;

/// Precomputed identity of a molecule: the prefilter hash and the exact
/// canonical certificate. Cheap to compare, `Send` across worker threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MolIdentity {
    /// Permutation-invariant 64-bit content hash (the prefilter key).
    pub hash: u64,
    /// Exact canonical certificate: atom count, per-rank atom invariants,
    /// then the bond relation in rank space. Equal iff isomorphic.
    pub cert: Vec<u64>,
    /// Whether computing the certificate needed the individualization
    /// tie-break (the refinement partition was not discrete).
    pub slow_path: bool,
}

/// Compute a molecule's interned identity: one refinement fixpoint yields
/// both the invariant hash and — when the partition is discrete, which it
/// is for most generated fragments — the exact certificate. Symmetric
/// molecules fall back to [`canonical_ranks`] for the certificate only.
pub fn identify(mol: &Molecule) -> MolIdentity {
    let n = mol.atom_count();
    if n == 0 {
        return MolIdentity {
            hash: 0xcbf2_9ce4_8422_2325,
            cert: Vec::new(),
            slow_path: false,
        };
    }
    let init = initial_invariants(mol);
    let (ranks, classes) = refine_to_fixpoint(mol, init.clone());

    // Prefilter hash: permutation-invariant fold over the atom count, the
    // sorted (rank, initial invariant) pairs, and the rank-space edges.
    let mut nodes: Vec<u64> = ranks
        .iter()
        .zip(&init)
        .map(|(&r, &v)| ((r as u64) << 24) | v)
        .collect();
    nodes.sort_unstable();
    let edges = certificate(mol, &ranks);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ (n as u64);
    for v in nodes
        .iter()
        .chain([0xa5a5_a5a5_a5a5_a5a5u64].iter())
        .chain(&edges)
    {
        hash = (hash ^ v).wrapping_mul(0x1000_0000_01b3);
    }

    // Exact certificate: needs discrete ranks. The refinement fixpoint is
    // already canonical when discrete; otherwise break ties.
    let (final_ranks, slow_path) = if classes == n {
        (ranks, false)
    } else {
        (canonical_ranks(mol), true)
    };
    let mut cert = Vec::with_capacity(1 + n + mol.bond_count());
    cert.push(n as u64);
    let mut labels = vec![0u64; n];
    for (i, &r) in final_ranks.iter().enumerate() {
        labels[r as usize] = init[i];
    }
    cert.extend(labels);
    cert.extend(certificate(mol, &final_ranks));
    MolIdentity {
        hash,
        cert,
        slow_path,
    }
}

/// Interned symbol table over molecule identities, with prefilter
/// statistics. Symbols are dense and assigned in first-intern order, so a
/// caller can map them 1:1 onto its own id space with a plain `Vec`.
#[derive(Debug, Clone, Default)]
pub struct KeyTable {
    buckets: HashMap<u64, Vec<Sym>>,
    certs: Vec<Vec<u64>>,
    /// Total [`KeyTable::intern`] calls.
    pub lookups: u64,
    /// Lookups resolved as definitely-new by an empty hash bucket,
    /// without comparing any certificate.
    pub prefilter_hits: u64,
    /// Certificate comparisons performed on bucket collisions.
    pub cert_compares: u64,
}

impl KeyTable {
    /// Empty table.
    pub fn new() -> KeyTable {
        KeyTable::default()
    }

    /// Number of distinct interned identities.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }

    /// Intern an identity: returns its symbol and whether it was new.
    pub fn intern(&mut self, id: &MolIdentity) -> (Sym, bool) {
        self.lookups += 1;
        let next = self.certs.len() as Sym;
        match self.buckets.entry(id.hash) {
            Entry::Occupied(mut bucket) => {
                for &sym in bucket.get().iter() {
                    self.cert_compares += 1;
                    if self.certs[sym as usize] == id.cert {
                        return (sym, false);
                    }
                }
                bucket.get_mut().push(next);
            }
            Entry::Vacant(slot) => {
                self.prefilter_hits += 1;
                slot.insert(vec![next]);
            }
        }
        self.certs.push(id.cert.clone());
        (next, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smiles::parse_smiles;

    #[test]
    fn isomorphic_molecules_share_identity() {
        let a = parse_smiles("CCO").unwrap();
        let b = parse_smiles("OCC").unwrap();
        let (ia, ib) = (identify(&a), identify(&b));
        assert_eq!(ia.hash, ib.hash);
        assert_eq!(ia.cert, ib.cert);
    }

    #[test]
    fn distinct_molecules_differ() {
        let a = parse_smiles("CCO").unwrap();
        let b = parse_smiles("COC").unwrap();
        assert_ne!(identify(&a).cert, identify(&b).cert);
    }

    #[test]
    fn symmetric_molecule_takes_slow_path_but_still_matches() {
        // CSSC is mirror-symmetric: refinement alone cannot make the
        // partition discrete.
        let a = parse_smiles("CSSC").unwrap();
        let ia = identify(&a);
        assert!(ia.slow_path);
        let b = parse_smiles("CSSC").unwrap();
        assert_eq!(ia.cert, identify(&b).cert);
    }

    #[test]
    fn asymmetric_chain_avoids_slow_path() {
        let a = parse_smiles("CSSOC").unwrap();
        assert!(!identify(&a).slow_path);
    }

    #[test]
    fn table_interns_and_dedups() {
        let mut t = KeyTable::new();
        let a = identify(&parse_smiles("CCO").unwrap());
        let b = identify(&parse_smiles("OCC").unwrap());
        let c = identify(&parse_smiles("CCS").unwrap());
        let (sa, new_a) = t.intern(&a);
        let (sb, new_b) = t.intern(&b);
        let (sc, new_c) = t.intern(&c);
        assert!(new_a && !new_b && new_c);
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookups, 3);
        // First sights of CCO and CCS hit the prefilter; the OCC lookup
        // collided and compared one certificate.
        assert_eq!(t.prefilter_hits, 2);
        assert_eq!(t.cert_compares, 1);
    }

    #[test]
    fn identity_matches_canonical_key_equality() {
        // The interned identity and the canonical SMILES string must induce
        // the same equivalence classes.
        let pool = ["CSSC", "CSSSC", "CS", "CCO", "OCC", "CC(C)C", "CSC"];
        for x in pool {
            for y in pool {
                let (mx, my) = (parse_smiles(x).unwrap(), parse_smiles(y).unwrap());
                let by_string = crate::canonical_key(&mx) == crate::canonical_key(&my);
                let by_cert = identify(&mx).cert == identify(&my).cert;
                assert_eq!(by_string, by_cert, "{x} vs {y}");
            }
        }
    }
}
