//! The molecular graph and the six reaction-rule primitives.
//!
//! The paper (§2) lists six rule kinds the chemical compiler can apply:
//! (1) disconnect two atoms; (2) connect two atoms; (3) decrease the bond
//! order; (4) increase the bond order; (5) remove a hydrogen atom; and
//! (6) add hydrogen atoms. [`Molecule`] implements each as a checked edit.

use crate::atom::Atom;
use crate::bond::{Bond, BondOrder};
use crate::element::Element;
use crate::error::{MoleculeError, Result};

/// A molecule (or radical) as an undirected labelled graph.
///
/// Atom indices are dense (`0..atom_count()`) and remain stable across bond
/// edits; removing atoms (via [`Molecule::split_components`]) produces new
/// molecules with re-indexed atoms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Molecule {
    atoms: Vec<Atom>,
    bonds: Vec<Bond>,
    /// adjacency[i] = indices into `bonds` touching atom i.
    adjacency: Vec<Vec<usize>>,
}

impl Molecule {
    /// An empty molecule.
    pub fn new() -> Molecule {
        Molecule::default()
    }

    /// Number of (heavy, explicit) atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of bonds.
    pub fn bond_count(&self) -> usize {
        self.bonds.len()
    }

    /// Append an atom, returning its index.
    pub fn add_atom(&mut self, atom: Atom) -> usize {
        self.atoms.push(atom);
        self.adjacency.push(Vec::new());
        self.atoms.len() - 1
    }

    /// Immutable atom access.
    pub fn atom(&self, idx: usize) -> Result<&Atom> {
        self.atoms.get(idx).ok_or(MoleculeError::InvalidAtom(idx))
    }

    /// Mutable atom access.
    pub fn atom_mut(&mut self, idx: usize) -> Result<&mut Atom> {
        self.atoms
            .get_mut(idx)
            .ok_or(MoleculeError::InvalidAtom(idx))
    }

    /// Iterate over atoms with indices.
    pub fn atoms(&self) -> impl Iterator<Item = (usize, &Atom)> {
        self.atoms.iter().enumerate()
    }

    /// Iterate over bonds.
    pub fn bonds(&self) -> impl Iterator<Item = &Bond> {
        self.bonds.iter()
    }

    /// Neighbor atom indices of `idx` (unordered).
    pub fn neighbors(&self, idx: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency
            .get(idx)
            .into_iter()
            .flatten()
            .filter_map(move |&bi| self.bonds[bi].other(idx))
    }

    /// Degree (number of explicit bonds) of atom `idx`.
    pub fn degree(&self, idx: usize) -> usize {
        self.adjacency.get(idx).map_or(0, |v| v.len())
    }

    /// Find the bond between `a` and `b`, returning its index into the
    /// internal bond list.
    fn bond_index(&self, a: usize, b: usize) -> Option<usize> {
        self.adjacency
            .get(a)?
            .iter()
            .copied()
            .find(|&bi| self.bonds[bi].touches(b))
    }

    /// The bond between `a` and `b`, if any.
    pub fn bond_between(&self, a: usize, b: usize) -> Option<&Bond> {
        self.bond_index(a, b).map(|bi| &self.bonds[bi])
    }

    /// Sum of bond valence units incident to atom `idx`.
    pub fn bond_order_sum(&self, idx: usize) -> u8 {
        self.adjacency.get(idx).map_or(0, |v| {
            v.iter()
                .map(|&bi| self.bonds[bi].order.valence_units())
                .sum()
        })
    }

    /// Recompute the implicit hydrogen count for atom `idx` from its
    /// default valences, unless the count was fixed explicitly.
    pub fn infer_hydrogens(&mut self, idx: usize) -> Result<()> {
        let sum = self.bond_order_sum(idx);
        let atom = self.atom(idx)?;
        if atom.fixed_hydrogens {
            return Ok(());
        }
        let radicals = atom.radicals;
        let h = match atom.target_valence(sum) {
            Some(v) => v - sum - radicals,
            None => 0,
        };
        self.atoms[idx].hydrogens = h;
        Ok(())
    }

    /// Recompute implicit hydrogens for every atom.
    pub fn infer_all_hydrogens(&mut self) -> Result<()> {
        for i in 0..self.atom_count() {
            self.infer_hydrogens(i)?;
        }
        Ok(())
    }

    /// Add a bond with structural checks only (indices, self-bond,
    /// duplicates) and **no** hydrogen/radical accounting. Used by parsers
    /// and structure builders that infer hydrogens in a separate pass; the
    /// reaction-rule primitives below do full valence bookkeeping instead.
    pub fn add_bond(&mut self, a: usize, b: usize, order: BondOrder) -> Result<()> {
        if a == b {
            return Err(MoleculeError::SelfBond(a));
        }
        self.atom(a)?;
        self.atom(b)?;
        if self.bond_between(a, b).is_some() {
            return Err(MoleculeError::BondExists(a, b));
        }
        let bi = self.bonds.len();
        self.bonds.push(Bond::new(a, b, order));
        self.adjacency[a].push(bi);
        self.adjacency[b].push(bi);
        Ok(())
    }

    // ---- the six reaction-rule primitives -------------------------------

    /// Rule (2): connect two atoms with a bond of the given order.
    ///
    /// Each endpoint must have capacity: a free implicit hydrogen or an
    /// unpaired electron is consumed to form the bond (radical coupling
    /// preferred, mirroring sulfur-radical crosslink formation).
    pub fn connect(&mut self, a: usize, b: usize, order: BondOrder) -> Result<()> {
        if a == b {
            return Err(MoleculeError::SelfBond(a));
        }
        self.atom(a)?;
        self.atom(b)?;
        if self.bond_between(a, b).is_some() {
            return Err(MoleculeError::BondExists(a, b));
        }
        let units = order.valence_units();
        for &idx in &[a, b] {
            let atom = &self.atoms[idx];
            let capacity = atom.radicals.saturating_add(atom.hydrogens);
            if capacity < units {
                return Err(MoleculeError::ValenceViolation {
                    atom: idx,
                    detail: format!(
                        "needs {units} valence unit(s) to bond but only {capacity} available"
                    ),
                });
            }
        }
        for &idx in &[a, b] {
            let mut remaining = units;
            let atom = &mut self.atoms[idx];
            let from_radicals = remaining.min(atom.radicals);
            atom.radicals -= from_radicals;
            remaining -= from_radicals;
            atom.hydrogens -= remaining;
            atom.fixed_hydrogens = true;
        }
        let bi = self.bonds.len();
        self.bonds.push(Bond::new(a, b, order));
        self.adjacency[a].push(bi);
        self.adjacency[b].push(bi);
        Ok(())
    }

    /// Rule (1): disconnect two atoms (homolytic cleavage).
    ///
    /// Removes the bond and leaves each endpoint with unpaired electrons
    /// equal to the broken bond's order — exactly the sulfur-radical pairs
    /// produced by S–S scission during vulcanization.
    pub fn disconnect(&mut self, a: usize, b: usize) -> Result<()> {
        let bi = self
            .bond_index(a, b)
            .ok_or(MoleculeError::NoSuchBond(a, b))?;
        let order = self.bonds[bi].order;
        self.remove_bond_at(bi);
        for &idx in &[a, b] {
            self.atoms[idx].radicals = self.atoms[idx]
                .radicals
                .saturating_add(order.valence_units());
        }
        Ok(())
    }

    /// Rule (4): increase the bond order between two atoms by one step,
    /// consuming one hydrogen-or-radical valence unit at each endpoint.
    pub fn increase_bond_order(&mut self, a: usize, b: usize) -> Result<()> {
        let bi = self
            .bond_index(a, b)
            .ok_or(MoleculeError::NoSuchBond(a, b))?;
        let next = self.bonds[bi]
            .order
            .increased()
            .ok_or(MoleculeError::BondOrderLimit(a, b))?;
        for &idx in &[a, b] {
            let atom = &self.atoms[idx];
            if atom.radicals == 0 && atom.hydrogens == 0 {
                return Err(MoleculeError::ValenceViolation {
                    atom: idx,
                    detail: "no valence unit available to raise bond order".to_string(),
                });
            }
        }
        for &idx in &[a, b] {
            let atom = &mut self.atoms[idx];
            if atom.radicals > 0 {
                atom.radicals -= 1;
            } else {
                atom.hydrogens -= 1;
                atom.fixed_hydrogens = true;
            }
        }
        self.bonds[bi].order = next;
        Ok(())
    }

    /// Rule (3): decrease the bond order between two atoms by one step,
    /// releasing one unpaired electron at each endpoint.
    pub fn decrease_bond_order(&mut self, a: usize, b: usize) -> Result<()> {
        let bi = self
            .bond_index(a, b)
            .ok_or(MoleculeError::NoSuchBond(a, b))?;
        let next = self.bonds[bi]
            .order
            .decreased()
            .ok_or(MoleculeError::BondOrderLimit(a, b))?;
        self.bonds[bi].order = next;
        for &idx in &[a, b] {
            self.atoms[idx].radicals = self.atoms[idx].radicals.saturating_add(1);
        }
        Ok(())
    }

    /// Rule (5): remove a hydrogen atom, leaving a radical (hydrogen
    /// abstraction, e.g. at an allylic carbon).
    pub fn remove_hydrogen(&mut self, idx: usize) -> Result<()> {
        let atom = self.atom_mut(idx)?;
        if atom.hydrogens == 0 {
            return Err(MoleculeError::NoHydrogen(idx));
        }
        atom.hydrogens -= 1;
        atom.radicals = atom.radicals.saturating_add(1);
        atom.fixed_hydrogens = true;
        Ok(())
    }

    /// Rule (6): add a hydrogen atom, quenching a radical if present or
    /// extending valence.
    pub fn add_hydrogen(&mut self, idx: usize) -> Result<()> {
        let sum = self.bond_order_sum(idx);
        let atom = self.atom_mut(idx)?;
        if atom.radicals > 0 {
            atom.radicals -= 1;
            atom.hydrogens += 1;
            atom.fixed_hydrogens = true;
            return Ok(());
        }
        // No radical: adding H must still fit some standard valence.
        let needed = sum + atom.hydrogens + 1;
        let fits = atom.element.default_valences().iter().any(|&v| v >= needed);
        if !fits {
            return Err(MoleculeError::ValenceViolation {
                atom: idx,
                detail: format!("adding H would exceed max valence (needs {needed})"),
            });
        }
        atom.hydrogens += 1;
        atom.fixed_hydrogens = true;
        Ok(())
    }

    // ---- structural queries used by rule predicates ----------------------

    /// Length of the maximal chain of `element` atoms through `idx`:
    /// returns, for an atom of that element, the minimum number of
    /// same-element atoms (including itself) between it and the nearest end
    /// of its same-element chain. The paper's example predicate — "only
    /// break S–S bonds at least three atoms from the end of a sulfur
    /// chain" — is expressed as `chain_depth(i) >= 3`.
    pub fn chain_depth(&self, idx: usize, element: Element) -> usize {
        if self.atoms.get(idx).map(|a| a.element) != Some(element) {
            return 0;
        }
        // BFS over the same-element subgraph, recording distances from idx.
        let mut dist = vec![usize::MAX; self.atom_count()];
        dist[idx] = 0;
        let mut queue = std::collections::VecDeque::from([idx]);
        let mut component = vec![idx];
        while let Some(at) = queue.pop_front() {
            for nb in self.neighbors(at).collect::<Vec<_>>() {
                if self.atoms[nb].element == element && dist[nb] == usize::MAX {
                    dist[nb] = dist[at] + 1;
                    component.push(nb);
                    queue.push_back(nb);
                }
            }
        }
        // Chain ends: same-element atoms with at most one same-element
        // neighbor. Depth = 1 + distance to the nearest end (so a terminal
        // atom has depth 1); a pure cycle has no ends and every atom gets
        // the cycle length.
        let min_to_end = component
            .iter()
            .filter(|&&at| {
                self.neighbors(at)
                    .filter(|&n| self.atoms[n].element == element)
                    .count()
                    <= 1
            })
            .map(|&at| dist[at])
            .min();
        match min_to_end {
            Some(d) => d + 1,
            None => component.len(),
        }
    }

    /// Whether atom `idx` is an sp3 carbon adjacent to a C=C double bond
    /// (allylic position) — the crosslink attachment site in rubber.
    pub fn is_allylic_carbon(&self, idx: usize) -> bool {
        let Some(atom) = self.atoms.get(idx) else {
            return false;
        };
        if atom.element != Element::C {
            return false;
        }
        // idx itself must not be part of a double bond…
        let in_double = self.adjacency[idx]
            .iter()
            .any(|&bi| self.bonds[bi].order == BondOrder::Double);
        if in_double {
            return false;
        }
        // …but a neighboring carbon must be.
        self.neighbors(idx).any(|n| {
            self.atoms[n].element == Element::C
                && self.adjacency[n].iter().any(|&bi| {
                    let bond = &self.bonds[bi];
                    bond.order == BondOrder::Double && {
                        let other = bond.other(n).unwrap();
                        self.atoms[other].element == Element::C
                    }
                })
        })
    }

    /// Indices of atoms carrying unpaired electrons.
    pub fn radical_sites(&self) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_radical())
            .map(|(i, _)| i)
            .collect()
    }

    /// Total number of implicit hydrogens in the molecule.
    pub fn total_hydrogens(&self) -> u32 {
        self.atoms.iter().map(|a| a.hydrogens as u32).sum()
    }

    /// Connected components as atom-index sets (sorted).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.atom_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut queue = vec![start];
            while let Some(at) = queue.pop() {
                for nb in self.neighbors(at).collect::<Vec<_>>() {
                    if !seen[nb] {
                        seen[nb] = true;
                        comp.push(nb);
                        queue.push(nb);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Split into connected-component molecules (re-indexed). Returns the
    /// fragments in component order; a connected molecule returns a single
    /// clone of itself.
    pub fn split_components(&self) -> Vec<Molecule> {
        let comps = self.components();
        comps
            .iter()
            .map(|comp| {
                let mut m = Molecule::new();
                let mut map = vec![usize::MAX; self.atom_count()];
                for &old in comp {
                    map[old] = m.add_atom(self.atoms[old]);
                }
                for bond in &self.bonds {
                    if map[bond.a] != usize::MAX && map[bond.b] != usize::MAX {
                        let bi = m.bonds.len();
                        m.bonds
                            .push(Bond::new(map[bond.a], map[bond.b], bond.order));
                        m.adjacency[map[bond.a]].push(bi);
                        m.adjacency[map[bond.b]].push(bi);
                    }
                }
                m
            })
            .collect()
    }

    /// Merge another molecule into this one (disjoint union), returning
    /// the index offset applied to the other molecule's atoms.
    pub fn merge(&mut self, other: &Molecule) -> usize {
        let offset = self.atom_count();
        for atom in &other.atoms {
            self.add_atom(*atom);
        }
        for bond in &other.bonds {
            let bi = self.bonds.len();
            self.bonds
                .push(Bond::new(bond.a + offset, bond.b + offset, bond.order));
            self.adjacency[bond.a + offset].push(bi);
            self.adjacency[bond.b + offset].push(bi);
        }
        offset
    }

    fn remove_bond_at(&mut self, bi: usize) {
        let bond = self.bonds[bi];
        // Swap-remove the bond and fix adjacency references to the moved one.
        let last = self.bonds.len() - 1;
        self.bonds.swap_remove(bi);
        for &idx in &[bond.a, bond.b] {
            self.adjacency[idx].retain(|&x| x != bi);
        }
        if bi != last {
            let moved = self.bonds[bi];
            for &idx in &[moved.a, moved.b] {
                for slot in &mut self.adjacency[idx] {
                    if *slot == last {
                        *slot = bi;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sulfur_chain(n: usize) -> Molecule {
        let mut m = Molecule::new();
        let idx: Vec<usize> = (0..n).map(|_| m.add_atom(Atom::new(Element::S))).collect();
        for w in idx.windows(2) {
            m.infer_all_hydrogens().unwrap();
            m.connect(w[0], w[1], BondOrder::Single).unwrap();
        }
        m.infer_all_hydrogens().unwrap();
        m
    }

    #[test]
    fn ethane_hydrogens() {
        let mut m = Molecule::new();
        let c0 = m.add_atom(Atom::new(Element::C));
        let c1 = m.add_atom(Atom::new(Element::C));
        m.infer_all_hydrogens().unwrap();
        assert_eq!(m.atom(c0).unwrap().hydrogens, 4);
        m.connect(c0, c1, BondOrder::Single).unwrap();
        m.infer_all_hydrogens().unwrap();
        assert_eq!(m.atom(c0).unwrap().hydrogens, 3);
        assert_eq!(m.atom(c1).unwrap().hydrogens, 3);
    }

    #[test]
    fn disconnect_creates_radical_pair() {
        let mut m = sulfur_chain(2);
        m.disconnect(0, 1).unwrap();
        assert_eq!(m.bond_count(), 0);
        assert_eq!(m.atom(0).unwrap().radicals, 1);
        assert_eq!(m.atom(1).unwrap().radicals, 1);
    }

    #[test]
    fn connect_consumes_radicals_first() {
        let mut m = sulfur_chain(2);
        m.disconnect(0, 1).unwrap();
        let h_before = m.atom(0).unwrap().hydrogens;
        m.connect(0, 1, BondOrder::Single).unwrap();
        assert_eq!(m.atom(0).unwrap().radicals, 0);
        assert_eq!(m.atom(0).unwrap().hydrogens, h_before);
    }

    #[test]
    fn connect_rejects_existing_bond_and_self_bond() {
        let mut m = sulfur_chain(2);
        assert_eq!(
            m.connect(0, 1, BondOrder::Single),
            Err(MoleculeError::BondExists(0, 1))
        );
        assert_eq!(
            m.connect(0, 0, BondOrder::Single),
            Err(MoleculeError::SelfBond(0))
        );
    }

    #[test]
    fn bond_order_round_trip_preserves_hydrogens() {
        let mut m = Molecule::new();
        let c0 = m.add_atom(Atom::new(Element::C));
        let c1 = m.add_atom(Atom::new(Element::C));
        m.infer_all_hydrogens().unwrap();
        m.connect(c0, c1, BondOrder::Single).unwrap();
        m.infer_all_hydrogens().unwrap();
        m.increase_bond_order(c0, c1).unwrap();
        assert_eq!(m.bond_between(c0, c1).unwrap().order, BondOrder::Double);
        assert_eq!(m.atom(c0).unwrap().hydrogens, 2);
        m.decrease_bond_order(c0, c1).unwrap();
        // decreasing leaves a diradical, not hydrogens
        assert_eq!(m.atom(c0).unwrap().radicals, 1);
        assert_eq!(m.atom(c0).unwrap().hydrogens, 2);
    }

    #[test]
    fn triple_bond_cannot_increase() {
        let mut m = Molecule::new();
        let c0 = m.add_atom(Atom::new(Element::C));
        let c1 = m.add_atom(Atom::new(Element::C));
        m.infer_all_hydrogens().unwrap();
        m.connect(c0, c1, BondOrder::Triple).unwrap();
        assert_eq!(
            m.increase_bond_order(c0, c1),
            Err(MoleculeError::BondOrderLimit(0, 1))
        );
    }

    #[test]
    fn hydrogen_abstraction_and_quench() {
        let mut m = Molecule::new();
        let c = m.add_atom(Atom::new(Element::C));
        m.infer_all_hydrogens().unwrap();
        assert_eq!(m.atom(c).unwrap().hydrogens, 4);
        m.remove_hydrogen(c).unwrap();
        assert_eq!(m.atom(c).unwrap().hydrogens, 3);
        assert!(m.atom(c).unwrap().is_radical());
        m.add_hydrogen(c).unwrap();
        assert_eq!(m.atom(c).unwrap().hydrogens, 4);
        assert!(!m.atom(c).unwrap().is_radical());
    }

    #[test]
    fn remove_hydrogen_fails_without_h() {
        let mut m = Molecule::new();
        let f = m.add_atom(Atom::with_hydrogens(Element::F, 0));
        assert_eq!(m.remove_hydrogen(f), Err(MoleculeError::NoHydrogen(0)));
    }

    #[test]
    fn chain_depth_on_s8() {
        let m = sulfur_chain(8);
        // ends have depth 1, the middle atoms 4.
        assert_eq!(m.chain_depth(0, Element::S), 1);
        assert_eq!(m.chain_depth(1, Element::S), 2);
        assert_eq!(m.chain_depth(3, Element::S), 4);
        assert_eq!(m.chain_depth(4, Element::S), 4);
        assert_eq!(m.chain_depth(7, Element::S), 1);
    }

    #[test]
    fn chain_depth_wrong_element_is_zero() {
        let m = sulfur_chain(3);
        assert_eq!(m.chain_depth(0, Element::C), 0);
    }

    #[test]
    fn allylic_detection() {
        // propene: C=C-C ; the methyl carbon (2) is allylic.
        let mut m = Molecule::new();
        let c0 = m.add_atom(Atom::new(Element::C));
        let c1 = m.add_atom(Atom::new(Element::C));
        let c2 = m.add_atom(Atom::new(Element::C));
        m.infer_all_hydrogens().unwrap();
        m.connect(c0, c1, BondOrder::Double).unwrap();
        m.connect(c1, c2, BondOrder::Single).unwrap();
        m.infer_all_hydrogens().unwrap();
        assert!(!m.is_allylic_carbon(c0));
        assert!(!m.is_allylic_carbon(c1));
        assert!(m.is_allylic_carbon(c2));
    }

    #[test]
    fn split_after_scission_gives_two_fragments() {
        let mut m = sulfur_chain(4);
        m.disconnect(1, 2).unwrap();
        let frags = m.split_components();
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].atom_count(), 2);
        assert_eq!(frags[1].atom_count(), 2);
        assert!(frags[0].atoms().any(|(_, a)| a.is_radical()));
    }

    #[test]
    fn merge_is_disjoint_union() {
        let mut m = sulfur_chain(2);
        let other = sulfur_chain(3);
        let off = m.merge(&other);
        assert_eq!(off, 2);
        assert_eq!(m.atom_count(), 5);
        assert_eq!(m.bond_count(), 3);
        assert!(m.bond_between(off, off + 1).is_some());
        assert!(m.bond_between(1, off).is_none());
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut m = sulfur_chain(2);
        m.add_atom(Atom::new(Element::C));
        let comps = m.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2]);
    }

    #[test]
    fn swap_remove_bond_keeps_adjacency_consistent() {
        let mut m = sulfur_chain(4); // bonds 0-1,1-2,2-3
        m.disconnect(0, 1).unwrap(); // removes first bond; last bond swaps in
        assert!(m.bond_between(1, 2).is_some());
        assert!(m.bond_between(2, 3).is_some());
        assert!(m.bond_between(0, 1).is_none());
        assert_eq!(m.neighbors(2).count(), 2);
    }
}
