//! Molecular formulas (Hill order) and weights.

use std::collections::BTreeMap;
use std::fmt;

use crate::element::Element;
use crate::graph::Molecule;

/// A molecular formula: element → count, displayed in Hill order (C first,
/// H second, the rest alphabetically).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Formula {
    counts: BTreeMap<Element, u32>,
}

impl Formula {
    /// Compute the formula of a molecule, counting implicit hydrogens.
    pub fn of(mol: &Molecule) -> Formula {
        let mut counts: BTreeMap<Element, u32> = BTreeMap::new();
        for (_, atom) in mol.atoms() {
            *counts.entry(atom.element).or_insert(0) += 1;
            if atom.hydrogens > 0 {
                *counts.entry(Element::H).or_insert(0) += atom.hydrogens as u32;
            }
        }
        counts.retain(|_, &mut c| c > 0);
        Formula { counts }
    }

    /// Count of a specific element (implicit H included).
    pub fn count(&self, element: Element) -> u32 {
        self.counts.get(&element).copied().unwrap_or(0)
    }

    /// Total number of atoms including implicit hydrogens.
    pub fn total_atoms(&self) -> u32 {
        self.counts.values().sum()
    }

    /// Molecular weight in g/mol.
    pub fn weight(&self) -> f64 {
        self.counts
            .iter()
            .map(|(e, &c)| e.atomic_weight() * c as f64)
            .sum()
    }

    /// Element-wise sum of two formulas (for checking conservation across
    /// a reaction: reactants' total formula must equal products').
    pub fn plus(&self, other: &Formula) -> Formula {
        let mut counts = self.counts.clone();
        for (&e, &c) in &other.counts {
            *counts.entry(e).or_insert(0) += c;
        }
        Formula { counts }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut write_one = |e: Element, c: u32| -> fmt::Result {
            if c == 0 {
                Ok(())
            } else if c == 1 {
                write!(f, "{}", e.symbol())
            } else {
                write!(f, "{}{}", e.symbol(), c)
            }
        };
        // Hill order: C, H, then alphabetical by symbol.
        write_one(Element::C, self.count(Element::C))?;
        write_one(Element::H, self.count(Element::H))?;
        let mut rest: Vec<(Element, u32)> = self
            .counts
            .iter()
            .filter(|(e, _)| !matches!(e, Element::C | Element::H))
            .map(|(&e, &c)| (e, c))
            .collect();
        rest.sort_by_key(|(e, _)| e.symbol());
        for (e, c) in rest {
            write_one(e, c)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smiles::parse_smiles;

    #[test]
    fn methane_formula() {
        let m = parse_smiles("C").unwrap();
        let f = Formula::of(&m);
        assert_eq!(f.to_string(), "CH4");
        assert_eq!(f.count(Element::H), 4);
    }

    #[test]
    fn hill_order() {
        let m = parse_smiles("CS(=O)O").unwrap();
        let f = Formula::of(&m);
        assert_eq!(f.to_string(), "CH4O2S");
    }

    #[test]
    fn weight_of_water() {
        let m = parse_smiles("O").unwrap();
        let w = Formula::of(&m).weight();
        assert!((w - 18.015).abs() < 0.01, "{w}");
    }

    #[test]
    fn conservation_check_usage() {
        // CSSC -> scission -> two CS radicals: formulas must sum equal.
        let whole = parse_smiles("CSSC").unwrap();
        let mut broken = whole.clone();
        broken.disconnect(1, 2).unwrap();
        let frags = broken.split_components();
        assert_eq!(frags.len(), 2);
        let sum = Formula::of(&frags[0]).plus(&Formula::of(&frags[1]));
        assert_eq!(sum, Formula::of(&whole));
    }

    #[test]
    fn empty_molecule_formula() {
        let f = Formula::of(&Molecule::new());
        assert_eq!(f.total_atoms(), 0);
        assert_eq!(f.to_string(), "");
    }
}
