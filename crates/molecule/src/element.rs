//! Chemical elements relevant to polymer / rubber chemistry.
//!
//! The paper's chemical compiler manipulates molecules symbolically via the
//! CDK SMILES classes; this module is the corresponding periodic-table
//! subset. Rubber vulcanization chemistry is dominated by C, H, S, N and O
//! (benzothiazole accelerators contribute N and S heterocycles), but the
//! table carries the full organic subset so arbitrary RDL inputs parse.

use std::fmt;

/// A chemical element supported by the molecule substrate.
///
/// The set covers the SMILES "organic subset" plus a few common hetero
/// atoms. Anything else can be spelled in brackets in SMILES input and is
/// rejected with a parse error, which mirrors how the paper's frontend only
/// accepts chemistry its rule language can act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    /// Hydrogen.
    H,
    /// Boron.
    B,
    /// Carbon.
    C,
    /// Nitrogen.
    N,
    /// Oxygen.
    O,
    /// Fluorine.
    F,
    /// Silicon.
    Si,
    /// Phosphorus.
    P,
    /// Sulfur (the star of vulcanization chemistry).
    S,
    /// Chlorine.
    Cl,
    /// Zinc (ZnO activator chemistry).
    Zn,
    /// Selenium.
    Se,
    /// Bromine.
    Br,
    /// Iodine.
    I,
}

impl Element {
    /// All supported elements, in atomic-number order.
    pub const ALL: [Element; 14] = [
        Element::H,
        Element::B,
        Element::C,
        Element::N,
        Element::O,
        Element::F,
        Element::Si,
        Element::P,
        Element::S,
        Element::Cl,
        Element::Zn,
        Element::Se,
        Element::Br,
        Element::I,
    ];

    /// Atomic number.
    pub fn atomic_number(self) -> u8 {
        match self {
            Element::H => 1,
            Element::B => 5,
            Element::C => 6,
            Element::N => 7,
            Element::O => 8,
            Element::F => 9,
            Element::Si => 14,
            Element::P => 15,
            Element::S => 16,
            Element::Cl => 17,
            Element::Zn => 30,
            Element::Se => 34,
            Element::Br => 35,
            Element::I => 53,
        }
    }

    /// Standard atomic weight (g/mol), used for formula weights.
    pub fn atomic_weight(self) -> f64 {
        match self {
            Element::H => 1.008,
            Element::B => 10.81,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::F => 18.998,
            Element::Si => 28.085,
            Element::P => 30.974,
            Element::S => 32.06,
            Element::Cl => 35.45,
            Element::Zn => 65.38,
            Element::Se => 78.971,
            Element::Br => 79.904,
            Element::I => 126.904,
        }
    }

    /// Element symbol as written in SMILES.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::B => "B",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::F => "F",
            Element::Si => "Si",
            Element::P => "P",
            Element::S => "S",
            Element::Cl => "Cl",
            Element::Zn => "Zn",
            Element::Se => "Se",
            Element::Br => "Br",
            Element::I => "I",
        }
    }

    /// Parse an element symbol (case-sensitive, as in SMILES brackets).
    pub fn from_symbol(sym: &str) -> Option<Element> {
        Element::ALL.iter().copied().find(|e| e.symbol() == sym)
    }

    /// Default valences used to infer implicit hydrogen counts, in the
    /// order they are tried (smallest first), matching the SMILES
    /// specification's treatment of the organic subset.
    pub fn default_valences(self) -> &'static [u8] {
        match self {
            Element::H => &[1],
            Element::B => &[3],
            Element::C => &[4],
            Element::N => &[3, 5],
            Element::O => &[2],
            Element::F => &[1],
            Element::Si => &[4],
            Element::P => &[3, 5],
            Element::S => &[2, 4, 6],
            Element::Cl => &[1],
            Element::Zn => &[2],
            Element::Se => &[2, 4, 6],
            Element::Br => &[1],
            Element::I => &[1],
        }
    }

    /// Whether the element belongs to the SMILES organic subset and may be
    /// written without brackets.
    pub fn in_organic_subset(self) -> bool {
        matches!(
            self,
            Element::B
                | Element::C
                | Element::N
                | Element::O
                | Element::F
                | Element::P
                | Element::S
                | Element::Cl
                | Element::Br
                | Element::I
        )
    }

    /// Whether SMILES permits an aromatic (lowercase) form of the symbol.
    pub fn can_be_aromatic(self) -> bool {
        matches!(
            self,
            Element::B
                | Element::C
                | Element::N
                | Element::O
                | Element::P
                | Element::S
                | Element::Se
        )
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_round_trip() {
        for e in Element::ALL {
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
        }
    }

    #[test]
    fn unknown_symbol_rejected() {
        assert_eq!(Element::from_symbol("Xx"), None);
        assert_eq!(Element::from_symbol("c"), None); // lowercase is aromatic, not a symbol
        assert_eq!(Element::from_symbol(""), None);
    }

    #[test]
    fn atomic_numbers_strictly_increase() {
        let nums: Vec<u8> = Element::ALL.iter().map(|e| e.atomic_number()).collect();
        assert!(nums.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn valences_are_sorted_and_nonempty() {
        for e in Element::ALL {
            let v = e.default_valences();
            assert!(!v.is_empty(), "{e} has no valences");
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{e} valences unsorted");
        }
    }

    #[test]
    fn sulfur_supports_hypervalence() {
        // Polysulfidic crosslinks and sulfoxides need S(IV) and S(VI).
        assert_eq!(Element::S.default_valences(), &[2, 4, 6]);
    }

    #[test]
    fn organic_subset_matches_smiles_spec() {
        assert!(Element::C.in_organic_subset());
        assert!(Element::S.in_organic_subset());
        assert!(!Element::H.in_organic_subset());
        assert!(!Element::Zn.in_organic_subset());
    }

    #[test]
    fn weights_positive_and_ordered_with_z() {
        for e in Element::ALL {
            assert!(e.atomic_weight() > 0.0);
        }
        assert!(Element::S.atomic_weight() > Element::O.atomic_weight());
    }
}
