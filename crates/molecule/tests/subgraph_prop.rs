//! Differential testing of the VF2-style matcher against a brute-force
//! permutation matcher, plus canonicalization invariance under explicit
//! relabeling.

use proptest::prelude::*;

use rms_molecule::{canonical_key, Atom, AtomPredicate, BondOrder, Element, Molecule, QueryGraph};

/// Random small tree molecule over a few elements.
fn arb_molecule(max_atoms: usize) -> impl Strategy<Value = Molecule> {
    let elems = prop::sample::select(vec![Element::C, Element::N, Element::O, Element::S]);
    prop::collection::vec((elems, any::<u8>()), 1..max_atoms).prop_map(|nodes| {
        let mut m = Molecule::new();
        for (i, (e, seed)) in nodes.iter().enumerate() {
            let idx = m.add_atom(Atom::new(*e));
            m.infer_all_hydrogens().unwrap();
            if i > 0 {
                let parent = (*seed as usize) % i;
                let _ = m.connect(parent, idx, BondOrder::Single);
                m.infer_all_hydrogens().unwrap();
            }
        }
        m
    })
}

/// Brute force: try every injective assignment of query nodes to atoms.
fn brute_force_matches(mol: &Molecule, nodes: &[Element], edges: &[(usize, usize)]) -> usize {
    let n = mol.atom_count();
    let k = nodes.len();
    let mut count = 0;
    let mut assignment = vec![usize::MAX; k];
    fn rec(
        mol: &Molecule,
        nodes: &[Element],
        edges: &[(usize, usize)],
        assignment: &mut Vec<usize>,
        level: usize,
        n: usize,
        count: &mut usize,
    ) {
        if level == nodes.len() {
            *count += 1;
            return;
        }
        'cand: for cand in 0..n {
            if assignment[..level].contains(&cand) {
                continue;
            }
            if mol.atom(cand).unwrap().element != nodes[level] {
                continue;
            }
            for &(a, b) in edges {
                let (x, y) = (a.max(b), a.min(b));
                if x == level {
                    // y already assigned
                    if mol.bond_between(cand, assignment[y]).is_none() {
                        continue 'cand;
                    }
                }
            }
            assignment[level] = cand;
            rec(mol, nodes, edges, assignment, level + 1, n, count);
            assignment[level] = usize::MAX;
        }
    }
    rec(mol, nodes, edges, &mut assignment, 0, n, &mut count);
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// VF2 match counts equal the brute-force count for path queries of
    /// length 1..3 over random molecules.
    #[test]
    fn vf2_matches_brute_force(m in arb_molecule(9), path_len in 1usize..4, e1 in 0usize..4, e2 in 0usize..4, e3 in 0usize..4) {
        let pool = [Element::C, Element::N, Element::O, Element::S];
        let picks = [pool[e1], pool[e2], pool[e3]];
        let nodes: Vec<Element> = picks[..path_len].to_vec();
        let edges: Vec<(usize, usize)> = (1..path_len).map(|i| (i - 1, i)).collect();

        let mut q = QueryGraph::new();
        for &e in &nodes {
            q.node(AtomPredicate::Is(e));
        }
        for &(a, b) in &edges {
            q.edge(a, b, None);
        }
        let vf2 = q.find_all(&m).len();
        let brute = brute_force_matches(&m, &nodes, &edges);
        prop_assert_eq!(vf2, brute, "query {:?} over molecule with {} atoms", nodes, m.atom_count());
    }

    /// The canonical key is invariant under explicit random relabeling of
    /// atom indices (rebuild the molecule with a permuted order).
    #[test]
    fn canonical_key_survives_relabeling(m in arb_molecule(10), seed in any::<u64>()) {
        let n = m.atom_count();
        // Deterministic permutation from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        // Rebuild with atoms in permuted order (perm[new] = old).
        let mut rebuilt = Molecule::new();
        let mut old_to_new = vec![usize::MAX; n];
        for (new_idx, &old_idx) in perm.iter().enumerate() {
            let added = rebuilt.add_atom(*m.atom(old_idx).unwrap());
            debug_assert_eq!(added, new_idx);
            old_to_new[old_idx] = new_idx;
        }
        for bond in m.bonds() {
            rebuilt
                .add_bond(old_to_new[bond.a], old_to_new[bond.b], bond.order)
                .unwrap();
        }
        prop_assert_eq!(canonical_key(&m), canonical_key(&rebuilt));
    }

    /// Chain depth is bounded by the same-element component size and is 0
    /// for mismatched elements.
    #[test]
    fn chain_depth_bounds(m in arb_molecule(10), idx_seed in any::<usize>()) {
        if m.atom_count() == 0 { return Ok(()); }
        let idx = idx_seed % m.atom_count();
        let elem = m.atom(idx).unwrap().element;
        let depth = m.chain_depth(idx, elem);
        prop_assert!(depth >= 1);
        prop_assert!(depth <= m.atom_count());
        let other = Element::ALL.iter().copied().find(|&e| e != elem).unwrap();
        prop_assert_eq!(m.chain_depth(idx, other), 0);
    }
}
