//! Product terms: the building block of the generated ODEs.
//!
//! Every right-hand side produced by the equation generator is a
//! sum-of-products where each product is
//! `coeff * K * [S1] * [S2] * …` — a signed constant coefficient, one
//! kinetic rate constant, and a multiset of species concentrations.

use std::cmp::Ordering;
use std::fmt;

use rms_rcip::RateId;
use rms_rdl::SpeciesId;

/// One product in a sum-of-products right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductTerm {
    /// Signed constant coefficient (sign encodes produced/consumed;
    /// magnitude encodes stoichiometry and merged duplicates).
    pub coeff: f64,
    /// The kinetic rate constant (value-deduplicated id from the RCIP).
    pub rate: RateId,
    /// Species concentration factors, kept sorted (canonical order).
    pub species: Vec<SpeciesId>,
}

impl ProductTerm {
    /// Create a term, normalizing species order.
    pub fn new(coeff: f64, rate: RateId, mut species: Vec<SpeciesId>) -> ProductTerm {
        species.sort_unstable();
        ProductTerm {
            coeff,
            rate,
            species,
        }
    }

    /// Two terms are *mergeable* when they differ only in the constant
    /// coefficient (§3.1's equation simplification).
    pub fn same_shape(&self, other: &ProductTerm) -> bool {
        self.rate == other.rate && self.species == other.species
    }

    /// Multiplications needed to evaluate this product naively:
    /// one per factor beyond the first, counting the coefficient only when
    /// it is not ±1 (a sign flip is free as part of the add/sub).
    pub fn multiplication_count(&self) -> usize {
        let factors = self.species.len() + 1 + usize::from(self.coeff.abs() != 1.0);
        factors - 1
    }

    /// Evaluate with the given rate-constant values and concentrations.
    pub fn eval(&self, rates: &[f64], y: &[f64]) -> f64 {
        let mut v = self.coeff * rates[self.rate.0 as usize];
        for &s in &self.species {
            v *= y[s.0 as usize];
        }
        v
    }

    /// Canonical ordering key for stable output: by rate id, then species
    /// list, then coefficient.
    pub fn canonical_cmp(&self, other: &ProductTerm) -> Ordering {
        self.rate
            .cmp(&other.rate)
            .then_with(|| self.species.cmp(&other.species))
            .then_with(|| {
                self.coeff
                    .partial_cmp(&other.coeff)
                    .unwrap_or(Ordering::Equal)
            })
    }
}

/// Displays like `-2 * K3 * [S1] * [S4]` with symbolic ids.
impl fmt::Display for ProductTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.coeff < 0.0 { "-" } else { "+" };
        let mag = self.coeff.abs();
        write!(f, "{sign}")?;
        if mag != 1.0 {
            write!(f, "{mag} * ")?;
        }
        write!(f, "K{}", self.rate.0)?;
        for s in &self.species {
            write!(f, " * y{}", s.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: u32) -> SpeciesId {
        SpeciesId(i)
    }

    #[test]
    fn species_normalized_sorted() {
        let t = ProductTerm::new(1.0, RateId(0), vec![sid(3), sid(1), sid(2)]);
        assert_eq!(t.species, vec![sid(1), sid(2), sid(3)]);
    }

    #[test]
    fn same_shape_ignores_coefficient() {
        let a = ProductTerm::new(2.0, RateId(1), vec![sid(0), sid(1)]);
        let b = ProductTerm::new(-3.0, RateId(1), vec![sid(1), sid(0)]);
        let c = ProductTerm::new(2.0, RateId(2), vec![sid(0), sid(1)]);
        assert!(a.same_shape(&b));
        assert!(!a.same_shape(&c));
    }

    #[test]
    fn multiplication_count_matches_naive_evaluation() {
        // k * A         -> 1 multiply
        assert_eq!(
            ProductTerm::new(1.0, RateId(0), vec![sid(0)]).multiplication_count(),
            1
        );
        // k * A * B     -> 2 multiplies
        assert_eq!(
            ProductTerm::new(-1.0, RateId(0), vec![sid(0), sid(1)]).multiplication_count(),
            2
        );
        // 2 * k * A     -> 2 multiplies
        assert_eq!(
            ProductTerm::new(2.0, RateId(0), vec![sid(0)]).multiplication_count(),
            2
        );
    }

    #[test]
    fn eval_mass_action() {
        let t = ProductTerm::new(-2.0, RateId(1), vec![sid(0), sid(0)]);
        // -2 * k1 * y0^2 with k1 = 3, y0 = 4 => -96
        assert_eq!(t.eval(&[0.0, 3.0], &[4.0]), -96.0);
    }

    #[test]
    fn display_forms() {
        let t = ProductTerm::new(-1.0, RateId(2), vec![sid(0), sid(5)]);
        assert_eq!(t.to_string(), "-K2 * y0 * y5");
        let t = ProductTerm::new(3.0, RateId(0), vec![sid(1)]);
        assert_eq!(t.to_string(), "+3 * K0 * y1");
    }

    #[test]
    fn canonical_order_total() {
        let mut terms = [
            ProductTerm::new(1.0, RateId(1), vec![sid(0)]),
            ProductTerm::new(1.0, RateId(0), vec![sid(1)]),
            ProductTerm::new(1.0, RateId(0), vec![sid(0)]),
        ];
        terms.sort_by(|a, b| a.canonical_cmp(b));
        assert_eq!(terms[0].rate, RateId(0));
        assert_eq!(terms[0].species, vec![sid(0)]);
        assert_eq!(terms[2].rate, RateId(1));
    }
}
