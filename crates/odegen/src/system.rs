//! The generated ODE system: the equation generator's output and the
//! optimizer's input.

use std::fmt;

use crate::equation::OdeEquation;

/// Operation counts for a system in its naive sum-of-products form —
/// the quantities reported in the paper's Table 1 ("Number of *",
/// "Number of (+ and -)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Multiplications.
    pub mults: usize,
    /// Additions and subtractions.
    pub adds: usize,
}

impl OpCounts {
    /// Total arithmetic operations.
    pub fn total(&self) -> usize {
        self.mults + self.adds
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mults, {} adds", self.mults, self.adds)
    }
}

/// A complete system of ODEs over species concentrations, parameterized by
/// kinetic rate constants.
#[derive(Debug, Clone)]
pub struct OdeSystem {
    /// One equation per species, indexed by `SpeciesId`.
    pub equations: Vec<OdeEquation>,
    /// Number of distinct kinetic rate constants (canonical ids).
    pub n_rates: usize,
    /// Display names of species, indexed by `SpeciesId`.
    pub species_names: Vec<String>,
    /// Display names of canonical rate constants.
    pub rate_names: Vec<String>,
    /// Initial concentrations.
    pub initial: Vec<f64>,
    /// Nominal rate-constant values (canonical ids).
    pub rate_values: Vec<f64>,
}

impl OdeSystem {
    /// Number of equations (= species).
    pub fn len(&self) -> usize {
        self.equations.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.equations.is_empty()
    }

    /// Evaluate every right-hand side into `ydot` (reference semantics for
    /// all optimized evaluators).
    pub fn eval_into(&self, rates: &[f64], y: &[f64], ydot: &mut [f64]) {
        debug_assert_eq!(ydot.len(), self.equations.len());
        for (eq, out) in self.equations.iter().zip(ydot.iter_mut()) {
            *out = eq.eval(rates, y);
        }
    }

    /// Evaluate with the nominal rate values.
    pub fn eval_nominal(&self, y: &[f64]) -> Vec<f64> {
        let mut ydot = vec![0.0; self.len()];
        self.eval_into(&self.rate_values, y, &mut ydot);
        ydot
    }

    /// Count arithmetic operations of the naive sum-of-products form:
    /// one multiply per factor pair inside each product, one add/sub per
    /// term beyond the first in each sum.
    pub fn op_counts(&self) -> OpCounts {
        let mut counts = OpCounts::default();
        for eq in &self.equations {
            for t in &eq.terms {
                counts.mults += t.multiplication_count();
            }
            counts.adds += eq.terms.len().saturating_sub(1);
        }
        counts
    }

    /// Total number of product terms across all equations.
    pub fn term_count(&self) -> usize {
        self.equations.iter().map(|e| e.terms.len()).sum()
    }

    /// Render every equation in the paper's Fig. 5 style with real names.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for eq in &self.equations {
            let name = &self.species_names[eq.lhs.0 as usize];
            out.push_str(&format!("d[{name}]/dt ="));
            if eq.terms.is_empty() {
                out.push_str(" 0");
            }
            for t in &eq.terms {
                let sign = if t.coeff < 0.0 { " - " } else { " + " };
                out.push_str(sign);
                let mag = t.coeff.abs();
                if mag != 1.0 {
                    out.push_str(&format!("{mag} * "));
                }
                out.push_str(&self.rate_names[t.rate.0 as usize]);
                for s in &t.species {
                    out.push_str(&format!(" * [{}]", self.species_names[s.0 as usize]));
                }
            }
            out.push_str(";\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::ProductTerm;
    use rms_rcip::RateId;
    use rms_rdl::SpeciesId;

    fn tiny_system() -> OdeSystem {
        // dA/dt = -K*A ; dB/dt = 2*K*A
        let eq_a = OdeEquation {
            lhs: SpeciesId(0),
            terms: vec![ProductTerm::new(-1.0, RateId(0), vec![SpeciesId(0)])],
        };
        let eq_b = OdeEquation {
            lhs: SpeciesId(1),
            terms: vec![ProductTerm::new(2.0, RateId(0), vec![SpeciesId(0)])],
        };
        OdeSystem {
            equations: vec![eq_a, eq_b],
            n_rates: 1,
            species_names: vec!["A".to_string(), "B".to_string()],
            rate_names: vec!["K_A".to_string()],
            initial: vec![1.0, 0.0],
            rate_values: vec![0.5],
        }
    }

    #[test]
    fn eval_into_matches_manual() {
        let sys = tiny_system();
        let mut ydot = vec![0.0; 2];
        sys.eval_into(&[0.5], &[2.0, 0.0], &mut ydot);
        assert_eq!(ydot, vec![-1.0, 2.0]);
    }

    #[test]
    fn nominal_eval_uses_rate_values() {
        let sys = tiny_system();
        assert_eq!(sys.eval_nominal(&[2.0, 0.0]), vec![-1.0, 2.0]);
    }

    #[test]
    fn op_counts() {
        let sys = tiny_system();
        // -K*A: 1 mult; 2*K*A: 2 mults; adds: 0 per single-term equation
        let c = sys.op_counts();
        assert_eq!(c.mults, 3);
        assert_eq!(c.adds, 0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn display_has_names() {
        let sys = tiny_system();
        let text = sys.display();
        assert!(text.contains("d[A]/dt = - K_A * [A];"), "{text}");
        assert!(text.contains("d[B]/dt = + 2 * K_A * [A];"), "{text}");
    }
}
