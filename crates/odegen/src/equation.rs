//! The equation table (paper §2): one entry per molecule, each holding the
//! sum-of-products right-hand side of that molecule's ODE, with §3.1's
//! equation simplification applied on the fly during insertion.

use std::collections::HashMap;

use rms_rcip::RateId;
use rms_rdl::SpeciesId;

use crate::term::ProductTerm;

/// One ODE: `d[lhs]/dt = Σ terms`.
#[derive(Debug, Clone, PartialEq)]
pub struct OdeEquation {
    /// The species whose concentration this equation differentiates.
    pub lhs: SpeciesId,
    /// Sum-of-products right-hand side.
    pub terms: Vec<ProductTerm>,
}

impl OdeEquation {
    /// Evaluate the right-hand side.
    pub fn eval(&self, rates: &[f64], y: &[f64]) -> f64 {
        self.terms.iter().map(|t| t.eval(rates, y)).sum()
    }

    /// Render like the paper's Fig. 5: `dA/dt = -K_A * A;` using positional
    /// symbols.
    pub fn display(&self) -> String {
        let mut out = format!("dy{}/dt =", self.lhs.0);
        if self.terms.is_empty() {
            out.push_str(" 0");
        }
        for t in &self.terms {
            out.push(' ');
            out.push_str(&t.to_string());
        }
        out.push(';');
        out
    }
}

/// The equation table. The paper stores "a doubly linked list of nodes,
/// each representing one sum-of-products in the equation, broken down into
/// individual terms"; we store a `Vec` of terms per species plus a shape
/// index enabling O(1) on-the-fly merging.
#[derive(Debug, Clone)]
pub struct EquationTable {
    /// Per-species term lists, indexed by `SpeciesId`.
    terms: Vec<Vec<ProductTerm>>,
    /// Per-species map from (rate, species-multiset) to index in `terms`,
    /// used only when `simplify_on_insert` is set.
    shape_index: Vec<HashMap<(RateId, Vec<SpeciesId>), usize>>,
    /// Whether §3.1 equation simplification runs during insertion.
    simplify_on_insert: bool,
    /// Count of raw insertions (the Fig. 4 "initial ODE" count).
    raw_insertions: usize,
}

impl EquationTable {
    /// Create a table for `n_species` species.
    pub fn new(n_species: usize, simplify_on_insert: bool) -> EquationTable {
        EquationTable {
            terms: vec![Vec::new(); n_species],
            shape_index: vec![HashMap::new(); n_species],
            simplify_on_insert,
            raw_insertions: 0,
        }
    }

    /// Number of species rows.
    pub fn species_count(&self) -> usize {
        self.terms.len()
    }

    /// Number of terms inserted before any merging.
    pub fn raw_insertions(&self) -> usize {
        self.raw_insertions
    }

    /// Insert a term into the equation for `lhs`. With simplification
    /// enabled, a term of the same shape merges coefficients ("combined,
    /// whenever possible, with another term that differs from it only in
    /// the constant terms"); exact zero results are kept (and dropped at
    /// finish) so merging stays order-independent.
    pub fn insert(&mut self, lhs: SpeciesId, term: ProductTerm) {
        self.raw_insertions += 1;
        let row = lhs.0 as usize;
        if self.simplify_on_insert {
            let key = (term.rate, term.species.clone());
            match self.shape_index[row].get(&key) {
                Some(&i) => {
                    self.terms[row][i].coeff += term.coeff;
                    return;
                }
                None => {
                    self.shape_index[row].insert(key, self.terms[row].len());
                }
            }
        }
        self.terms[row].push(term);
    }

    /// Finalize into equations, dropping exactly-cancelled terms and
    /// sorting each sum into canonical order. Species with empty
    /// right-hand sides still get an equation (dX/dt = 0).
    pub fn finish(self) -> Vec<OdeEquation> {
        self.terms
            .into_iter()
            .enumerate()
            .map(|(i, mut terms)| {
                terms.retain(|t| t.coeff != 0.0);
                terms.sort_by(|a, b| a.canonical_cmp(b));
                OdeEquation {
                    lhs: SpeciesId(i as u32),
                    terms,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(coeff: f64, rate: u32, species: &[u32]) -> ProductTerm {
        ProductTerm::new(
            coeff,
            RateId(rate),
            species.iter().map(|&s| SpeciesId(s)).collect(),
        )
    }

    #[test]
    fn merging_combines_coefficients() {
        // Paper §3.1: 2*k1*B*C + 3*k1*B*C => 5*k1*B*C
        let mut table = EquationTable::new(1, true);
        table.insert(SpeciesId(0), term(2.0, 1, &[1, 2]));
        table.insert(SpeciesId(0), term(3.0, 1, &[2, 1]));
        let eqs = table.finish();
        assert_eq!(eqs[0].terms.len(), 1);
        assert_eq!(eqs[0].terms[0].coeff, 5.0);
    }

    #[test]
    fn no_merging_when_disabled() {
        let mut table = EquationTable::new(1, false);
        table.insert(SpeciesId(0), term(2.0, 1, &[1, 2]));
        table.insert(SpeciesId(0), term(3.0, 1, &[1, 2]));
        let eqs = table.finish();
        assert_eq!(eqs[0].terms.len(), 2);
        assert_eq!(table_raw(&eqs), 5.0);
    }

    fn table_raw(eqs: &[OdeEquation]) -> f64 {
        eqs[0].terms.iter().map(|t| t.coeff).sum()
    }

    #[test]
    fn different_shapes_do_not_merge() {
        let mut table = EquationTable::new(1, true);
        table.insert(SpeciesId(0), term(1.0, 1, &[1]));
        table.insert(SpeciesId(0), term(1.0, 2, &[1]));
        table.insert(SpeciesId(0), term(1.0, 1, &[1, 1]));
        assert_eq!(table.finish()[0].terms.len(), 3);
    }

    #[test]
    fn exact_cancellation_drops_term() {
        let mut table = EquationTable::new(1, true);
        table.insert(SpeciesId(0), term(1.0, 1, &[1]));
        table.insert(SpeciesId(0), term(-1.0, 1, &[1]));
        assert!(table.finish()[0].terms.is_empty());
    }

    #[test]
    fn cancelled_shape_can_reappear() {
        let mut table = EquationTable::new(1, true);
        table.insert(SpeciesId(0), term(1.0, 1, &[1]));
        table.insert(SpeciesId(0), term(-1.0, 1, &[1]));
        table.insert(SpeciesId(0), term(4.0, 1, &[1]));
        let eqs = table.finish();
        assert_eq!(eqs[0].terms.len(), 1);
        assert_eq!(eqs[0].terms[0].coeff, 4.0);
    }

    #[test]
    fn raw_insertions_counted() {
        let mut table = EquationTable::new(1, true);
        table.insert(SpeciesId(0), term(2.0, 1, &[1]));
        table.insert(SpeciesId(0), term(3.0, 1, &[1]));
        assert_eq!(table.raw_insertions(), 2);
    }

    #[test]
    fn empty_equation_rendered_as_zero() {
        let table = EquationTable::new(2, true);
        let eqs = table.finish();
        assert_eq!(eqs.len(), 2);
        assert_eq!(eqs[0].display(), "dy0/dt = 0;");
    }

    #[test]
    fn equation_eval_sums_terms() {
        let mut table = EquationTable::new(2, true);
        table.insert(SpeciesId(0), term(-1.0, 0, &[0]));
        table.insert(SpeciesId(0), term(2.0, 1, &[1]));
        let eqs = table.finish();
        // -k0*y0 + 2*k1*y1 with k=[2,3], y=[5,7] => -10 + 42 = 32
        assert_eq!(eqs[0].eval(&[2.0, 3.0], &[5.0, 7.0]), 32.0);
    }

    #[test]
    fn canonical_term_order_in_output() {
        let mut table = EquationTable::new(1, false);
        table.insert(SpeciesId(0), term(1.0, 3, &[0]));
        table.insert(SpeciesId(0), term(1.0, 1, &[0]));
        table.insert(SpeciesId(0), term(1.0, 2, &[0]));
        let eqs = table.finish();
        let rates: Vec<u32> = eqs[0].terms.iter().map(|t| t.rate.0).collect();
        assert_eq!(rates, vec![1, 2, 3]);
    }
}
