//! Linear conservation-law analysis of a reaction network.
//!
//! A vector `w` with `wᵀ·S = 0` (S the stoichiometry matrix) is a
//! conserved moiety: `Σ w_i·[X_i]` is constant along every trajectory.
//! Chemists use these both as sanity checks (atom balances must appear
//! here) and to reduce systems; our tests use them to validate generated
//! ODEs and solver output without reference solutions.

use rms_rdl::ReactionNetwork;

/// The dense stoichiometry matrix: `s[species][reaction]` = net production
/// of the species in that reaction.
pub fn stoichiometry_matrix(network: &ReactionNetwork) -> Vec<Vec<f64>> {
    let n = network.species_count();
    let m = network.reaction_count();
    let mut s = vec![vec![0.0; m]; n];
    for (j, reaction) in network.reactions().iter().enumerate() {
        for r in &reaction.reactants {
            s[r.0 as usize][j] -= 1.0;
        }
        for p in &reaction.products {
            s[p.0 as usize][j] += 1.0;
        }
    }
    s
}

/// A basis for the left null space of the stoichiometry matrix: each
/// returned vector `w` satisfies `wᵀ·S = 0`. Computed by row-reducing
/// `Sᵀ` and reading off the free-variable basis; entries are scaled so
/// the first nonzero is 1.
pub fn conservation_laws(network: &ReactionNetwork) -> Vec<Vec<f64>> {
    let s = stoichiometry_matrix(network);
    let n = network.species_count(); // unknowns (w components)
    let m = network.reaction_count(); // equations (one per reaction)
    if n == 0 {
        return Vec::new();
    }
    // Row-reduce the m x n system Sᵀ w = 0.
    let mut a: Vec<Vec<f64>> = (0..m).map(|j| (0..n).map(|i| s[i][j]).collect()).collect();
    let eps = 1e-9;
    let mut pivot_cols = Vec::new();
    let mut row = 0usize;
    for col in 0..n {
        // Find pivot.
        let Some(p) = (row..m).max_by(|&x, &y| a[x][col].abs().total_cmp(&a[y][col].abs())) else {
            break;
        };
        if a[p][col].abs() < eps {
            continue;
        }
        a.swap(row, p);
        let pivot = a[row][col];
        for v in &mut a[row] {
            *v /= pivot;
        }
        for r in 0..m {
            if r != row && a[r][col].abs() > eps {
                let factor = a[r][col];
                // Rows `row` and `r` alias the same matrix, so iterator
                // forms would need split borrows; indices are clearer.
                #[allow(clippy::needless_range_loop)]
                for c in 0..n {
                    let sub = factor * a[row][c];
                    a[r][c] -= sub;
                }
            }
        }
        pivot_cols.push(col);
        row += 1;
        if row == m {
            break;
        }
    }
    // Free columns parameterize the null space.
    let mut basis = Vec::new();
    let is_pivot = |c: usize| pivot_cols.contains(&c);
    for free in 0..n {
        if is_pivot(free) {
            continue;
        }
        let mut w = vec![0.0; n];
        w[free] = 1.0;
        for (r, &pc) in pivot_cols.iter().enumerate() {
            w[pc] = -a[r][free];
        }
        // Normalize: first nonzero entry positive 1.
        if let Some(first) = w.iter().find(|v| v.abs() > eps).copied() {
            for v in &mut w {
                *v /= first;
                if v.abs() < eps {
                    *v = 0.0;
                }
            }
        }
        basis.push(w);
    }
    basis
}

/// Verify that a derivative vector respects every conservation law to the
/// given tolerance (`wᵀ·ydot ≈ 0`). Returns the worst violation.
pub fn max_violation(laws: &[Vec<f64>], ydot: &[f64]) -> f64 {
    laws.iter()
        .map(|w| w.iter().zip(ydot).map(|(a, b)| a * b).sum::<f64>().abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_rdl::Reaction;

    fn simple_network() -> ReactionNetwork {
        // A -> B, B -> C: total A+B+C conserved (1 law for 3 species,
        // 2 independent reactions).
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 1.0);
        let b = n.add_abstract_species("B", 0.0);
        let c = n.add_abstract_species("C", 0.0);
        n.add_reaction(Reaction {
            reactants: vec![a],
            products: vec![b],
            rate: "K".to_string(),
            rule: "r".to_string(),
        });
        n.add_reaction(Reaction {
            reactants: vec![b],
            products: vec![c],
            rate: "K".to_string(),
            rule: "r".to_string(),
        });
        n
    }

    #[test]
    fn chain_has_total_mass_law() {
        let n = simple_network();
        let laws = conservation_laws(&n);
        assert_eq!(laws.len(), 1);
        // w = (1, 1, 1) up to scaling.
        let w = &laws[0];
        assert!(
            (w[0] - w[1]).abs() < 1e-9 && (w[1] - w[2]).abs() < 1e-9,
            "{w:?}"
        );
    }

    #[test]
    fn stoichiometry_matrix_signs() {
        let n = simple_network();
        let s = stoichiometry_matrix(&n);
        assert_eq!(s[0], vec![-1.0, 0.0]); // A consumed by r1
        assert_eq!(s[1], vec![1.0, -1.0]); // B produced then consumed
        assert_eq!(s[2], vec![0.0, 1.0]); // C produced by r2
    }

    #[test]
    fn bimolecular_two_laws() {
        // A + B -> C: 3 species, 1 reaction => 2 laws
        // (A - B constant; A + C constant).
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 1.0);
        let b = n.add_abstract_species("B", 1.0);
        let c = n.add_abstract_species("C", 0.0);
        n.add_reaction(Reaction {
            reactants: vec![a, b],
            products: vec![c],
            rate: "K".to_string(),
            rule: "r".to_string(),
        });
        let laws = conservation_laws(&n);
        assert_eq!(laws.len(), 2);
        // Any derivative of the form (-x, -x, +x) must satisfy them.
        assert!(max_violation(&laws, &[-0.3, -0.3, 0.3]) < 1e-9);
        // An unbalanced derivative must violate at least one.
        assert!(max_violation(&laws, &[-0.3, 0.0, 0.3]) > 1e-3);
    }

    #[test]
    fn generated_system_respects_laws() {
        // ODE system derivatives must lie in the stoichiometric subspace.
        use crate::{generate, GenerateOptions};
        use rms_rcip::RateTable;
        let n = simple_network();
        let rates = RateTable::parse("rate K = 2;").unwrap();
        let sys = generate(&n, &rates, GenerateOptions::default()).unwrap();
        let laws = conservation_laws(&n);
        for y in [&[1.0, 0.0, 0.0][..], &[0.3, 0.5, 0.2], &[0.1, 0.1, 0.8]] {
            let ydot = sys.eval_nominal(y);
            assert!(max_violation(&laws, &ydot) < 1e-12, "{ydot:?}");
        }
    }

    #[test]
    fn closed_cycle_conserves_everything_pairwise() {
        // A -> B -> A: one law (A+B).
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 1.0);
        let b = n.add_abstract_species("B", 0.0);
        n.add_reaction(Reaction {
            reactants: vec![a],
            products: vec![b],
            rate: "K".to_string(),
            rule: "f".to_string(),
        });
        n.add_reaction(Reaction {
            reactants: vec![b],
            products: vec![a],
            rate: "K".to_string(),
            rule: "b".to_string(),
        });
        let laws = conservation_laws(&n);
        assert_eq!(laws.len(), 1);
    }

    #[test]
    fn empty_network() {
        let n = ReactionNetwork::new();
        assert!(conservation_laws(&n).is_empty());
    }
}
