//! # rms-odegen — the Equation Generator
//!
//! Third component of the paper's Reaction Modeling Suite (§2): takes the
//! reaction network created by the chemical compiler and generates the
//! ODEs describing each species' concentration, via an *equation table*
//! holding sum-of-products right-hand sides. §3.1's equation
//! simplification (merging terms differing only in constants) runs on the
//! fly during insertion.
//!
//! The output [`OdeSystem`] is the input to the algebraic optimizer in
//! `rms-core`.

#![warn(missing_docs)]

pub mod conservation;
pub mod equation;
pub mod generate;
pub mod system;
pub mod term;

pub use conservation::{conservation_laws, max_violation, stoichiometry_matrix};
pub use equation::{EquationTable, OdeEquation};
pub use generate::{generate, GenerateOptions, OdegenError};
pub use system::{OdeSystem, OpCounts};
pub use term::ProductTerm;
