//! Reaction network → ODE system (paper §2, Figures 3–5).
//!
//! "For each term T in the right hand side of the intermediate equations
//! an equation with the left hand side of dT/dt is formed. The right hand
//! side of the equation consists of the product of the rate constant for
//! the intermediate reaction and each reactant term […] the final ODEs are
//! formed by summing all of the right hand sides of equations with the
//! same left hand side."

use std::collections::BTreeMap;
use std::fmt;

use rms_rcip::RateTable;
use rms_rdl::{ReactionNetwork, SpeciesId};

use crate::equation::EquationTable;
use crate::system::OdeSystem;
use crate::term::ProductTerm;

/// Equation-generation error.
#[derive(Debug, Clone, PartialEq)]
pub enum OdegenError {
    /// A reaction references a rate constant absent from the table.
    UnknownRate(String),
}

impl fmt::Display for OdegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdegenError::UnknownRate(name) => {
                write!(f, "reaction references unknown rate constant '{name}'")
            }
        }
    }
}

impl std::error::Error for OdegenError {}

/// Options controlling generation.
#[derive(Debug, Clone, Copy)]
pub struct GenerateOptions {
    /// Apply §3.1 equation simplification on the fly (merging terms that
    /// differ only in constants). Disabled for the "without optimizations"
    /// baseline of Table 1.
    pub simplify: bool,
}

impl Default for GenerateOptions {
    fn default() -> GenerateOptions {
        GenerateOptions { simplify: true }
    }
}

/// Generate the ODE system for a reaction network under mass-action
/// kinetics.
pub fn generate(
    network: &ReactionNetwork,
    rates: &RateTable,
    options: GenerateOptions,
) -> Result<OdeSystem, OdegenError> {
    let n = network.species_count();
    let mut table = EquationTable::new(n, options.simplify);

    for reaction in network.reactions() {
        let rate_id = rates
            .id(&reaction.rate)
            .ok_or_else(|| OdegenError::UnknownRate(reaction.rate.clone()))?;

        // Multiplicity maps for reactants and products.
        let mut consumed: BTreeMap<SpeciesId, f64> = BTreeMap::new();
        for &r in &reaction.reactants {
            *consumed.entry(r).or_insert(0.0) += 1.0;
        }
        let mut produced: BTreeMap<SpeciesId, f64> = BTreeMap::new();
        for &p in &reaction.products {
            *produced.entry(p).or_insert(0.0) += 1.0;
        }

        // Mass-action rate expression: K * Π [reactant] (with multiplicity).
        let factors: Vec<SpeciesId> = reaction.reactants.clone();

        for (&species, &mult) in &consumed {
            table.insert(species, ProductTerm::new(-mult, rate_id, factors.clone()));
        }
        for (&species, &mult) in &produced {
            table.insert(species, ProductTerm::new(mult, rate_id, factors.clone()));
        }
    }

    let species_names = network
        .species_iter()
        .map(|(_, s)| s.name.clone())
        .collect();
    Ok(OdeSystem {
        equations: table.finish(),
        n_rates: rates.distinct_count(),
        species_names,
        rate_names: (0..rates.distinct_count())
            .map(|i| rates.canonical_name(rms_rcip::RateId(i as u32)).to_string())
            .collect(),
        initial: network.initial_concentrations(),
        rate_values: rates.canonical_value_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_rdl::Reaction;

    /// Build the paper's Fig. 3 network:
    /// 1. -A +B +B \ [K_A];   2. -C -D +E \ [K_CD];
    fn fig3() -> (ReactionNetwork, RateTable) {
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 1.0);
        let b = n.add_abstract_species("B", 0.0);
        let c = n.add_abstract_species("C", 0.8);
        let d = n.add_abstract_species("D", 0.6);
        let e = n.add_abstract_species("E", 0.0);
        n.add_reaction(Reaction {
            reactants: vec![a],
            products: vec![b, b],
            rate: "K_A".to_string(),
            rule: "r1".to_string(),
        });
        n.add_reaction(Reaction {
            reactants: vec![c, d],
            products: vec![e],
            rate: "K_CD".to_string(),
            rule: "r2".to_string(),
        });
        let rates = RateTable::parse("rate K_A = 2; rate K_CD = 3;").unwrap();
        (n, rates)
    }

    #[test]
    fn fig4_to_fig5_transformation() {
        let (network, rates) = fig3();
        let sys = generate(&network, &rates, GenerateOptions { simplify: true }).unwrap();
        let text = sys.display();
        // Fig. 5 final ODEs, with the two +K_A*A terms for B merged by the
        // on-the-fly simplification into a stoichiometric coefficient of 2.
        assert!(text.contains("d[A]/dt = - K_A * [A];"), "{text}");
        assert!(text.contains("d[B]/dt = + 2 * K_A * [A];"), "{text}");
        assert!(text.contains("d[C]/dt = - K_CD * [C] * [D];"), "{text}");
        assert!(text.contains("d[D]/dt = - K_CD * [C] * [D];"), "{text}");
        assert!(text.contains("d[E]/dt = + K_CD * [C] * [D];"), "{text}");
    }

    #[test]
    fn unsimplified_keeps_duplicate_terms() {
        // Without simplification dB/dt = +K_A*A + K_A*A, matching Fig. 5's
        // literal repeated-term form before §3.1 runs.
        let (network, rates) = fig3();
        let sys = generate(&network, &rates, GenerateOptions { simplify: false }).unwrap();
        let b = &sys.equations[1];
        assert_eq!(
            b.terms.len(),
            1,
            "products with multiplicity insert once per species"
        );
        // Multiplicity 2 is still a single insert here; duplicates arise
        // from *different reactions* producing the same term shape:
        let mut n2 = ReactionNetwork::new();
        let a = n2.add_abstract_species("A", 0.0);
        let b2 = n2.add_abstract_species("B", 0.0);
        n2.add_reaction(Reaction {
            reactants: vec![a],
            products: vec![b2],
            rate: "K_A".to_string(),
            rule: "r1".to_string(),
        });
        n2.add_reaction(Reaction {
            reactants: vec![a],
            products: vec![b2, a],
            rate: "K_A".to_string(),
            rule: "r2".to_string(),
        });
        let rates2 = RateTable::parse("rate K_A = 2;").unwrap();
        let raw = generate(&n2, &rates2, GenerateOptions { simplify: false }).unwrap();
        assert_eq!(raw.equations[1].terms.len(), 2);
        let simplified = generate(&n2, &rates2, GenerateOptions { simplify: true }).unwrap();
        assert_eq!(simplified.equations[1].terms.len(), 1);
        assert_eq!(simplified.equations[1].terms[0].coeff, 2.0);
    }

    #[test]
    fn simplified_and_raw_evaluate_identically() {
        let (network, rates) = fig3();
        let raw = generate(&network, &rates, GenerateOptions { simplify: false }).unwrap();
        let opt = generate(&network, &rates, GenerateOptions { simplify: true }).unwrap();
        let y = vec![0.9, 0.1, 0.7, 0.5, 0.2];
        assert_eq!(raw.eval_nominal(&y), opt.eval_nominal(&y));
    }

    #[test]
    fn mass_conservation_of_balanced_reaction() {
        // For C + D -> E, d[C]+d[D] = -2 rate and d[E] = +rate; the weighted
        // sum d[C] + d[E]*1 + ... per-reaction stoichiometry must cancel
        // for a closed A -> 2B style system with weights (1, 0.5).
        let (network, rates) = fig3();
        let sys = generate(&network, &rates, GenerateOptions::default()).unwrap();
        let y = vec![0.9, 0.1, 0.7, 0.5, 0.2];
        let ydot = sys.eval_nominal(&y);
        // A -> 2B: dA + dB/2 = 0
        assert!((ydot[0] + ydot[1] / 2.0).abs() < 1e-12);
        // C + D -> E: dC - dD = 0 and dC + dE = 0
        assert!((ydot[2] - ydot[3]).abs() < 1e-12);
        assert!((ydot[2] + ydot[4]).abs() < 1e-12);
    }

    #[test]
    fn bimolecular_self_reaction_squares_concentration() {
        // A + A -> B : rate = K * A^2, dA/dt = -2 rate, dB/dt = +rate.
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 1.0);
        let b = n.add_abstract_species("B", 0.0);
        n.add_reaction(Reaction {
            reactants: vec![a, a],
            products: vec![b],
            rate: "K".to_string(),
            rule: "r".to_string(),
        });
        let rates = RateTable::parse("rate K = 4;").unwrap();
        let sys = generate(&n, &rates, GenerateOptions::default()).unwrap();
        let ydot = sys.eval_nominal(&[3.0, 0.0]);
        // rate = 4 * 9 = 36; dA = -72, dB = +36
        assert_eq!(ydot, vec![-72.0, 36.0]);
    }

    #[test]
    fn unknown_rate_is_error() {
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 0.0);
        n.add_reaction(Reaction {
            reactants: vec![a],
            products: vec![],
            rate: "K_missing".to_string(),
            rule: "r".to_string(),
        });
        let rates = RateTable::parse("rate K = 1;").unwrap();
        assert_eq!(
            generate(&n, &rates, GenerateOptions::default()).unwrap_err(),
            OdegenError::UnknownRate("K_missing".to_string())
        );
    }

    #[test]
    fn rate_value_dedup_shares_symbols() {
        // Two rate names with equal values collapse onto one canonical id,
        // enabling cross-reaction term merging.
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 0.0);
        let b = n.add_abstract_species("B", 0.0);
        n.add_reaction(Reaction {
            reactants: vec![a],
            products: vec![b],
            rate: "K1".to_string(),
            rule: "r1".to_string(),
        });
        n.add_reaction(Reaction {
            reactants: vec![a],
            products: vec![b],
            rate: "K2".to_string(),
            rule: "r2".to_string(),
        });
        let rates = RateTable::parse("rate K1 = 2; rate K2 = 2;").unwrap();
        let sys = generate(&n, &rates, GenerateOptions::default()).unwrap();
        // dB/dt = K1*A + K2*A merges to 2*K1*A because K1 == K2.
        assert_eq!(sys.equations[1].terms.len(), 1);
        assert_eq!(sys.equations[1].terms[0].coeff, 2.0);
        assert_eq!(sys.n_rates, 1);
    }
}
