//! Bounded admission queue with per-tenant round-robin fairness.
//!
//! Admission control is immediate and structured: a full queue rejects
//! the submit on the spot ([`crate::protocol::JobError::Rejected`])
//! instead of blocking the client or growing without bound. Dispatch is
//! fair across tenants: workers pop tenants in round-robin order, so a
//! tenant flooding the queue delays its own jobs, not its neighbours'.

use std::collections::{HashMap, VecDeque};

/// Queue state; callers hold it under the server's mutex.
pub struct FairQueue<T> {
    /// Per-tenant FIFO lanes.
    lanes: HashMap<String, VecDeque<T>>,
    /// Tenant rotation ring (insertion order; stable across pops).
    ring: Vec<String>,
    /// Next ring index to serve.
    cursor: usize,
    /// Total queued items across lanes.
    len: usize,
    /// Admission bound.
    capacity: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue admitting at most `capacity` items.
    pub fn new(capacity: usize) -> FairQueue<T> {
        FairQueue {
            lanes: HashMap::new(),
            ring: Vec::new(),
            cursor: 0,
            len: 0,
            capacity: capacity.max(1),
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No items queued?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admit `item` for `tenant`, or return it when full.
    pub fn push(&mut self, tenant: &str, item: T) -> Result<(), T> {
        if self.len >= self.capacity {
            return Err(item);
        }
        match self.lanes.get_mut(tenant) {
            Some(lane) => lane.push_back(item),
            None => {
                self.ring.push(tenant.to_string());
                self.lanes
                    .insert(tenant.to_string(), VecDeque::from([item]));
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Pop the next item in tenant round-robin order.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 || self.ring.is_empty() {
            return None;
        }
        for step in 0..self.ring.len() {
            let idx = (self.cursor + step) % self.ring.len();
            if let Some(item) = self
                .lanes
                .get_mut(&self.ring[idx])
                .and_then(VecDeque::pop_front)
            {
                // Advance past the served tenant so the next pop starts
                // at its successor — that is the fairness guarantee.
                self.cursor = (idx + 1) % self.ring.len();
                self.len -= 1;
                return Some(item);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_when_full_without_losing_items() {
        let mut q = FairQueue::new(2);
        assert!(q.push("a", 1).is_ok());
        assert!(q.push("a", 2).is_ok());
        assert_eq!(q.push("b", 3), Err(3));
        assert_eq!(q.len(), 2);
        q.pop().unwrap();
        assert!(q.push("b", 3).is_ok());
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut q = FairQueue::new(16);
        // Tenant "hog" floods first; "polite" adds two jobs later.
        for i in 0..4 {
            q.push("hog", ("hog", i)).unwrap();
        }
        q.push("polite", ("polite", 0)).unwrap();
        q.push("polite", ("polite", 1)).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        // Fairness: polite's first job is served second, not fifth.
        assert_eq!(
            order,
            vec![
                ("hog", 0),
                ("polite", 0),
                ("hog", 1),
                ("polite", 1),
                ("hog", 2),
                ("hog", 3),
            ]
        );
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut q = FairQueue::new(8);
        for i in 0..5 {
            q.push("t", i).unwrap();
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_lanes_do_not_stall_the_ring() {
        let mut q = FairQueue::new(8);
        q.push("a", 1).unwrap();
        q.push("b", 2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        // "a" and "b" lanes are empty but still in the ring; new pushes
        // still dispatch.
        q.push("c", 3).unwrap();
        assert_eq!(q.pop(), Some(3));
    }
}
