//! Line-delimited transport: requests in on a reader, events out on a
//! writer. This is the stdin/stdout framing used by `rmsc serve`; the
//! same function serves any `BufRead`/`Write` pair (pipes, sockets,
//! in-memory buffers in tests).

use std::io::{BufRead, Write};
use std::sync::mpsc;

use crate::server::{Server, ServerConfig, ServerStats};

/// Serve requests from `reader` until EOF, streaming events to
/// `writer`, then drain gracefully and emit the final `drained`
/// summary. Returns the lifetime counters.
///
/// Events from concurrent jobs interleave on the writer, but each line
/// is written atomically and every job's `accepted` event precedes its
/// terminal event.
pub fn serve_lines<R: BufRead, W: Write + Send>(
    reader: R,
    writer: W,
    config: ServerConfig,
) -> std::io::Result<ServerStats> {
    let server = Server::start(config);
    let (tx, rx) = mpsc::channel::<String>();

    std::thread::scope(|scope| {
        let pump = scope.spawn(move || -> std::io::Result<W> {
            let mut writer = writer;
            for line in rx {
                writeln!(writer, "{line}")?;
                writer.flush()?;
            }
            Ok(writer)
        });

        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            server.submit_line(&line, &tx);
        }

        let stats = server.drain();
        let _ = tx.send(stats.drained_event());
        drop(tx);
        match pump.join() {
            Ok(result) => result.map(|_| stats),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}
