//! Minimal JSON value, parser, and writer for the line-delimited wire
//! protocol. The workspace carries no serde; the protocol needs exactly
//! this much: objects, arrays, strings, finite numbers, booleans, null.
//!
//! The parser is strict where it matters for robustness (no trailing
//! garbage, depth-limited nesting, UTF-8 handled by `&str` input) and
//! deliberately small. Numbers parse as `f64`; non-finite numbers cannot
//! be produced (the writer emits `null` for them, matching `serde_json`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Sorted keys give deterministic output.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer content, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// Array content, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize to a compact single-line string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a trailing ".0" so
                    // ids and counts round-trip as JSON integers.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Arr(items.into_iter().map(Into::into).collect())
    }
}

/// Build an object from key/value pairs (keys sort on output).
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        at: 0,
        input,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.at));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    input: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.input[self.at..].starts_with(lit) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(Value::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    map.insert(key, self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Value::Obj(map));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        self.input[start..self.at]
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.at;
            // Fast path: copy the unescaped run in one slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.at += 1;
                // Skip over the continuation bytes of a multi-byte char.
                while self.bytes.get(self.at).is_some_and(|&b| (b & 0xc0) == 0x80) {
                    self.at += 1;
                }
            }
            out.push_str(&self.input[start..self.at]);
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates collapse to the replacement
                            // char; the protocol never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let src = r#"{"id":"job-1","n":3,"ok":true,"xs":[1,2.5,-3e2],"sub":{"a":null}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("job-1"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(
            v.get("xs").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        let echoed = parse(&v.to_json()).unwrap();
        assert_eq!(v, echoed);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}f — π".to_string());
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"open",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(8.0).to_json(), "8");
        assert_eq!(Value::Num(0.5).to_json(), "0.5");
    }
}
