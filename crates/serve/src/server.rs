//! The server core: supervised workers, admission control, deadline
//! supervision, and graceful drain.
//!
//! Every admitted job runs inside `catch_unwind` on a worker thread, so
//! a panicking job — a poisoned model, an injected chaos fault —
//! terminates as a structured [`JobError::Panicked`] while the worker
//! and every co-tenant job keep running. Deadlines are supervised by a
//! dedicated watcher thread that fires the job's [`CancelToken`]; the
//! solvers observe it at step boundaries and unwind cleanly, so a
//! blown deadline costs at most one integration step, not a stuck
//! worker. Compiles go through the process-wide artifact cache in
//! `rms-driver`, so concurrent tenants submitting the same model at the
//! same options compile it exactly once.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rms_driver::{cache, CompilerSession, OptLevel, SessionOptions};
use rms_parallel::{
    EstimatorConfig, EstimatorError, ExperimentFile, FailurePolicy, FaultPlan, FaultySimulator,
    ParallelEstimator, RetryPolicy, Simulator,
};
use rms_solver::CancelToken;
use rms_workload::TapeSimulator;

use crate::json::{obj, Value};
use crate::protocol::{accepted_event, JobError, JobKind, JobRequest};
use crate::queue::FairQueue;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission-queue bound; a full queue rejects immediately.
    pub queue_capacity: usize,
    /// On-disk artifact cache directory shared by every job.
    pub cache_dir: Option<PathBuf>,
    /// In-memory artifact cache budget in bytes (`None` = unlimited).
    /// Applied process-wide when the server starts.
    pub memory_budget: Option<u64>,
    /// Retry policy for transient solver failures, shared with the
    /// parallel estimator (`delay_for` gives backoff + seeded jitter).
    pub retry: RetryPolicy,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Chaos-injection plan: jobs are keyed by admission sequence
    /// number, so `panic_file(n)`/`stall_file(n)` target the n-th
    /// admitted job deterministically. `None` in production.
    pub faults: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            cache_dir: None,
            memory_budget: None,
            retry: RetryPolicy::default(),
            default_deadline_ms: None,
            faults: None,
        }
    }
}

/// Counters accumulated over a server's lifetime; snapshot via
/// [`Server::stats`] or returned by [`Server::drain`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs admitted to the queue.
    pub admitted: usize,
    /// Jobs that produced a `result` event.
    pub succeeded: usize,
    /// Jobs that produced an `error` event (any kind).
    pub failed: usize,
    /// Submissions rejected at admission (queue full or draining).
    pub rejected: usize,
    /// Failures classified as contained worker panics.
    pub panicked: usize,
    /// Failures classified as blown deadlines.
    pub deadlines: usize,
}

impl ServerStats {
    /// The final `drained` summary event.
    pub fn drained_event(&self) -> String {
        obj([
            ("event", "drained".into()),
            ("admitted", self.admitted.into()),
            ("succeeded", self.succeeded.into()),
            ("failed", self.failed.into()),
            ("rejected", self.rejected.into()),
            ("panicked", self.panicked.into()),
            ("deadlines", self.deadlines.into()),
        ])
        .to_json()
    }
}

/// An admitted job waiting for (or on) a worker.
struct Job {
    req: JobRequest,
    /// Admission sequence number; doubles as the fault-plan file index.
    seq: u64,
    /// Cancellation shared with the solvers; fired by the deadline
    /// watcher.
    token: CancelToken,
    /// Effective deadline (request's, else the server default).
    deadline_ms: Option<u64>,
    /// Where this job's events go.
    reply: Sender<String>,
}

struct QueueState {
    queue: FairQueue<Job>,
    /// Draining: admission closed, workers exit once the queue empties.
    closed: bool,
}

/// A deadline the watcher is supervising.
struct DeadlineEntry {
    at: Instant,
    token: CancelToken,
    seq: u64,
}

struct Inner {
    state: Mutex<QueueState>,
    work_ready: Condvar,
    deadlines: Mutex<Vec<DeadlineEntry>>,
    watcher_stop: AtomicBool,
    seq: AtomicU64,
    stats: Mutex<ServerStats>,
    cache_dir: Option<PathBuf>,
    retry: RetryPolicy,
    faults: Option<FaultPlan>,
}

/// A running server: worker pool + deadline watcher around a fair
/// admission queue. Submit with [`Server::submit`] (parsed requests) or
/// [`Server::submit_line`] (wire lines); stop with [`Server::drain`].
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
    queue_capacity: usize,
    default_deadline_ms: Option<u64>,
}

/// Prefix naming worker threads, used to suppress the default panic
/// hook's backtrace spew for *contained* panics: a supervised job's
/// panic is reported exactly once, as its structured `error` event, not
/// also as stderr noise. Panics on any other thread print as usual.
const WORKER_THREAD_PREFIX: &str = "rms-serve-worker-";

fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let contained = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_THREAD_PREFIX));
            if !contained {
                previous(info);
            }
        }));
    });
}

impl Server {
    /// Start the worker pool and deadline watcher.
    pub fn start(config: ServerConfig) -> Server {
        install_quiet_panic_hook();
        if config.memory_budget.is_some() {
            cache::set_memory_budget(config.memory_budget);
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                queue: FairQueue::new(config.queue_capacity),
                closed: false,
            }),
            work_ready: Condvar::new(),
            deadlines: Mutex::new(Vec::new()),
            watcher_stop: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            stats: Mutex::new(ServerStats::default()),
            cache_dir: config.cache_dir.clone(),
            retry: config.retry,
            faults: config.faults.clone(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("{WORKER_THREAD_PREFIX}{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        let watcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("rms-serve-deadline".to_string())
                .spawn(move || watcher_loop(&inner))
                .expect("spawn watcher thread")
        };
        Server {
            inner,
            workers,
            watcher: Some(watcher),
            queue_capacity: config.queue_capacity.max(1),
            default_deadline_ms: config.default_deadline_ms,
        }
    }

    /// Admit a parsed request. On success the `accepted` event has
    /// already been sent to `reply` (before any worker can touch the
    /// job, so it always precedes the terminal event) and the job will
    /// produce exactly one terminal `result`/`error` event later. On
    /// failure nothing was enqueued and nothing was sent — the caller
    /// routes the returned [`JobError`].
    pub fn submit(&self, req: JobRequest, reply: Sender<String>) -> Result<(), JobError> {
        let mut state = lock(&self.inner.state);
        if state.closed {
            let mut stats = lock(&self.inner.stats);
            stats.rejected += 1;
            return Err(JobError::Shutdown);
        }
        let job = Job {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            token: CancelToken::new(),
            deadline_ms: req.deadline_ms.or(self.default_deadline_ms),
            reply,
            req,
        };
        let id = job.req.id.clone();
        let accepted = {
            let tenant = job.req.tenant.clone();
            let reply = job.reply.clone();
            if state.queue.push(&tenant, job).is_err() {
                let mut stats = lock(&self.inner.stats);
                stats.rejected += 1;
                return Err(JobError::Rejected {
                    capacity: self.queue_capacity,
                });
            }
            reply
        };
        // Send `accepted` while still holding the queue lock: a worker
        // cannot pop (and terminate) this job until we release it.
        let _ = accepted.send(accepted_event(&id, state.queue.len()));
        lock(&self.inner.stats).admitted += 1;
        drop(state);
        self.inner.work_ready.notify_one();
        Ok(())
    }

    /// Parse and admit one wire line. All failures — parse errors,
    /// rejection, shutdown — are sent to `reply` as structured `error`
    /// events (with a best-effort id for unparseable lines), so a
    /// transport can forward lines without inspecting them.
    pub fn submit_line(&self, line: &str, reply: &Sender<String>) {
        match JobRequest::parse(line) {
            Ok(req) => {
                let id = req.id.clone();
                if let Err(e) = self.submit(req, reply.clone()) {
                    let _ = reply.send(e.event(&id));
                }
            }
            Err(e) => {
                let id = crate::json::parse(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Value::as_str).map(str::to_string))
                    .unwrap_or_default();
                let _ = reply.send(e.event(&id));
            }
        }
    }

    /// Snapshot the lifetime counters.
    pub fn stats(&self) -> ServerStats {
        *lock(&self.inner.stats)
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        lock(&self.inner.state).queue.len()
    }

    /// Close admission without waiting: subsequent submissions fail
    /// with [`JobError::Shutdown`]; already-admitted jobs keep running.
    pub fn close(&self) {
        lock(&self.inner.state).closed = true;
        self.inner.work_ready.notify_all();
    }

    /// Graceful drain: close admission, let workers finish every
    /// already-admitted job, join them, and return the final counters
    /// (from which the caller can emit [`ServerStats::drained_event`]).
    pub fn drain(mut self) -> ServerStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.inner.watcher_stop.store(true, Ordering::Relaxed);
        if let Some(watcher) = self.watcher.take() {
            watcher.thread().unpark();
            let _ = watcher.join();
        }
    }
}

impl Drop for Server {
    /// Dropping without [`Server::drain`] still drains gracefully.
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Lock a mutex, riding through poisoning: a panicking job must never
/// wedge the server, and every guarded structure is valid at each
/// await-free critical section boundary.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut state = lock(&inner.state);
            loop {
                if let Some(job) = state.queue.pop() {
                    break job;
                }
                if state.closed {
                    return;
                }
                state = inner
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        process(inner, job);
    }
}

/// Poll-and-fire deadline supervision. Polling (2 ms) keeps the watcher
/// free of per-job wakeup bookkeeping; deadline precision is bounded by
/// solver step granularity anyway.
fn watcher_loop(inner: &Arc<Inner>) {
    while !inner.watcher_stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        lock(&inner.deadlines).retain(|entry| {
            if now >= entry.at {
                entry.token.cancel();
                false
            } else {
                true
            }
        });
        std::thread::park_timeout(Duration::from_millis(2));
    }
}

/// Run one job start to finish: supervise its deadline, contain its
/// panics, classify its outcome, and send the terminal event.
fn process(inner: &Arc<Inner>, job: Job) {
    let started = Instant::now();
    if let Some(ms) = job.deadline_ms {
        lock(&inner.deadlines).push(DeadlineEntry {
            at: started + Duration::from_millis(ms),
            token: job.token.clone(),
            seq: job.seq,
        });
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| run_job(inner, &job)));
    lock(&inner.deadlines).retain(|entry| entry.seq != job.seq);

    let outcome = match outcome {
        Ok(done) => done,
        Err(payload) => Err(JobError::Panicked {
            // `&*`: downcast the payload itself, not the box around it.
            message: panic_message(&*payload),
        }),
    };
    // A fired deadline surfaces as whatever error the cancelled solve
    // happened to produce (a solver error, an estimator abort, even a
    // panic racing the cancel). Classify all of those as the deadline —
    // pre-queue failures (invalid, compile diagnostics) keep their kind.
    let outcome = match outcome {
        Err(e)
            if job.token.is_cancelled()
                && matches!(e, JobError::Solver { .. } | JobError::Panicked { .. }) =>
        {
            Err(JobError::Deadline {
                deadline_ms: job.deadline_ms.unwrap_or(0),
            })
        }
        other => other,
    };

    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let line = match outcome {
        Ok(mut result) => {
            lock(&inner.stats).succeeded += 1;
            if let Value::Obj(map) = &mut result {
                map.insert("elapsed_ms".to_string(), elapsed_ms.into());
            }
            result.to_json()
        }
        Err(e) => {
            {
                let mut stats = lock(&inner.stats);
                stats.failed += 1;
                match e {
                    JobError::Panicked { .. } => stats.panicked += 1,
                    JobError::Deadline { .. } => stats.deadlines += 1,
                    _ => {}
                }
            }
            e.event(&job.req.id)
        }
    };
    // A disconnected client discards its events; the job still ran.
    let _ = job.reply.send(line);
}

/// Extract a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn parse_level(name: &str) -> Option<OptLevel> {
    match name {
        "none" => Some(OptLevel::None),
        "simplify" => Some(OptLevel::Simplify),
        "algebraic" => Some(OptLevel::Algebraic),
        "full" => Some(OptLevel::Full),
        _ => None,
    }
}

/// Compile and execute one job. Every failure returns a structured
/// [`JobError`]; deadline/panic classification happens in [`process`].
fn run_job(inner: &Arc<Inner>, job: &Job) -> Result<Value, JobError> {
    let level = parse_level(&job.req.level).ok_or_else(|| JobError::Invalid {
        message: format!(
            "unknown level '{}' (expected none|simplify|algebraic|full)",
            job.req.level
        ),
    })?;
    let mut options = SessionOptions::new(level);
    options.deriv = true;
    options.cache_dir = inner.cache_dir.clone();
    // Same source + same options → same content address: concurrent
    // tenants share one compile through the process-wide cache.
    let compiled = CompilerSession::with_options(options)
        .compile_source("<job>", &job.req.source)
        .map_err(|d| JobError::Compile {
            message: d.render("<job>", &job.req.source),
        })?;
    let cache_status = compiled.status;
    let artifact = compiled.artifact;

    let n = artifact.system.len();
    let mut observable = vec![0.0; n];
    if job.req.observe.is_empty() {
        observable.iter_mut().for_each(|w| *w = 1.0);
    } else {
        for name in &job.req.observe {
            let idx = artifact
                .network
                .species_by_name(name)
                .map(|id| id.0 as usize)
                .ok_or_else(|| JobError::Invalid {
                    message: format!("unknown species '{name}'"),
                })?;
            observable[idx] = 1.0;
        }
    }
    let mut simulator = TapeSimulator::from_artifact(&artifact, observable);
    simulator.set_cancel_token(job.token.clone());
    let rates = &artifact.system.rate_values;

    match &inner.faults {
        Some(plan) => {
            let faulty = FaultySimulator::new(simulator, plan.clone());
            let result = execute(inner, job, &faulty, rates)?;
            finish(job, result, cache_status.name(), faulty.inner())
        }
        None => {
            let result = execute(inner, job, &simulator, rates)?;
            finish(job, result, cache_status.name(), &simulator)
        }
    }
}

/// Kind-independent execution result, before the event is assembled.
enum Executed {
    Simulated {
        values: Vec<f64>,
        retries: usize,
    },
    Estimated {
        objective: f64,
        records: usize,
        health: rms_parallel::HealthReport,
    },
}

fn execute<S: Simulator>(
    inner: &Arc<Inner>,
    job: &Job,
    simulator: &S,
    rates: &[f64],
) -> Result<Executed, JobError> {
    match &job.req.kind {
        JobKind::Simulate { times } => {
            let (values, retries) = simulate_with_retry(inner, job, simulator, rates, times)?;
            Ok(Executed::Simulated { values, retries })
        }
        JobKind::Estimate { files, workers } => {
            let files: Vec<ExperimentFile> = files
                .iter()
                .map(|(label, times, values)| ExperimentFile {
                    label: label.clone(),
                    times: times.clone(),
                    values: values.clone(),
                })
                .collect();
            let config = EstimatorConfig {
                dynamic_lb: true,
                retry: inner.retry,
                on_failure: FailurePolicy::Penalize,
                ..EstimatorConfig::default()
            };
            let estimator = ParallelEstimator::with_config(simulator, files, *workers, config);
            let out = estimator.objective(rates).map_err(|e| match e {
                EstimatorError::RankPanic(p) => JobError::Panicked {
                    message: p.to_string(),
                },
                other => JobError::Solver {
                    message: other.to_string(),
                },
            })?;
            // Under `Penalize` a deadline-cancelled file contributes a
            // penalty residual instead of aborting; do not let that pass
            // as a success.
            if job.token.is_cancelled() {
                return Err(JobError::Solver {
                    message: "objective evaluation cancelled".to_string(),
                });
            }
            Ok(Executed::Estimated {
                objective: out.error_vector.iter().map(|r| r * r).sum(),
                records: out.error_vector.len(),
                health: out.health,
            })
        }
    }
}

/// Retry transient solver failures under the server's [`RetryPolicy`]
/// (exponential backoff, seeded jitter keyed by the job's sequence
/// number). Cancellation aborts immediately — no retries past a blown
/// deadline.
fn simulate_with_retry<S: Simulator>(
    inner: &Arc<Inner>,
    job: &Job,
    simulator: &S,
    rates: &[f64],
    times: &[f64],
) -> Result<(Vec<f64>, usize), JobError> {
    let mut attempt = 0usize;
    loop {
        match simulator.simulate(rates, job.seq as usize, times) {
            Ok(values) => return Ok((values, attempt)),
            Err(message) => {
                if job.token.is_cancelled() || attempt >= inner.retry.max_retries {
                    return Err(JobError::Solver { message });
                }
                attempt += 1;
                let delay = inner.retry.delay_for(attempt, job.seq);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

/// Assemble the terminal `result` event (sans `elapsed_ms`, which
/// [`process`] stamps).
fn finish(
    job: &Job,
    result: Executed,
    cache_status: &str,
    simulator: &TapeSimulator,
) -> Result<Value, JobError> {
    let fallback = simulator.fallback_stats();
    Ok(match result {
        Executed::Simulated { values, retries } => obj([
            ("event", "result".into()),
            ("id", job.req.id.as_str().into()),
            ("kind", "simulate".into()),
            ("cache", cache_status.into()),
            ("values", values.into()),
            (
                "health",
                obj([
                    ("retries", retries.into()),
                    ("bdf_failures", fallback.bdf_failures.into()),
                    ("tightened_recoveries", fallback.tightened_recoveries.into()),
                    ("rk45_recoveries", fallback.rk45_recoveries.into()),
                ]),
            ),
        ]),
        Executed::Estimated {
            objective,
            records,
            health,
        } => obj([
            ("event", "result".into()),
            ("id", job.req.id.as_str().into()),
            ("kind", "estimate".into()),
            ("cache", cache_status.into()),
            ("objective", objective.into()),
            ("records", records.into()),
            (
                "health",
                obj([
                    ("healthy", health.is_healthy().into()),
                    ("retries", health.retries.into()),
                    ("recovered", health.recovered.into()),
                    ("file_failures", health.file_failures.len().into()),
                    ("rank_panics", health.rank_panics.len().into()),
                    ("comm_errors", health.comm_errors.len().into()),
                    ("bdf_failures", fallback.bdf_failures.into()),
                    ("tightened_recoveries", fallback.tightened_recoveries.into()),
                    ("rk45_recoveries", fallback.rk45_recoveries.into()),
                ]),
            ),
        ]),
    })
}
