//! `rms-serve` — a fault-isolated, admission-controlled estimation
//! service over the compiled simulation pipeline.
//!
//! The paper's toolchain compiles a reaction model once and then spends
//! its life answering simulate/estimate queries; this crate turns that
//! pipeline into a long-running multi-tenant service with an explicit
//! failure model:
//!
//! * **Fault isolation** — every job runs under `catch_unwind` on a
//!   supervised worker; a panicking job becomes a structured
//!   [`JobError::Panicked`] event and never takes down the server or a
//!   co-tenant's job.
//! * **Deadlines** — each job may carry `deadline_ms`; a watcher thread
//!   fires the job's [`CancelToken`](rms_solver::CancelToken), which
//!   the BDF/RK45 solvers observe at step boundaries, so cancellation
//!   is clean and prompt ([`JobError::Deadline`]).
//! * **Admission control** — a bounded queue with per-tenant
//!   round-robin fairness; a full queue rejects immediately with
//!   [`JobError::Rejected`] instead of queueing without bound.
//! * **Shared artifact cache** — compiles go through the process-wide
//!   content-addressed cache in `rms-driver`: concurrent tenants
//!   submitting the same model at the same options compile exactly
//!   once, and an optional memory budget bounds the cache with LRU
//!   eviction.
//! * **Graceful drain** — EOF (or [`Server::drain`]) closes admission,
//!   lets every admitted job finish, and emits a final `drained`
//!   summary.
//!
//! The wire protocol is line-delimited JSON in both directions (see
//! [`protocol`]); no HTTP stack, no serde — [`json`] is a small strict
//! parser/writer. Chaos testing hooks in via
//! [`ServerConfig::faults`]: a deterministic
//! [`FaultPlan`](rms_parallel::FaultPlan) keyed by admission sequence
//! number injects panics and stalls into chosen jobs.

pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod transport;

pub use protocol::{JobError, JobKind, JobRequest};
pub use server::{Server, ServerConfig, ServerStats};
pub use transport::serve_lines;
