//! The line-delimited JSON wire protocol: job requests in, streamed
//! events out.
//!
//! One request per line:
//!
//! ```json
//! {"id":"j1","tenant":"acme","kind":"simulate","source":"<rdl>",
//!  "observe":["X"],"times":[0.5,1.0],"deadline_ms":2000,"level":"full"}
//! ```
//!
//! Responses are one event per line: `accepted` on admission, then
//! exactly one terminal `result` or `error` per accepted job, and a
//! final `drained` summary when the server shuts down. Every error is
//! structured — a [`JobError`] kind plus a message — so clients can
//! dispatch on failure class without parsing prose.

use crate::json::{self, obj, Value};

/// What a job asks the pipeline to do.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Compile the model and integrate, returning the observable at the
    /// requested times.
    Simulate {
        /// Output times (strictly positive, ascending).
        times: Vec<f64>,
    },
    /// Compile the model and evaluate the parallel estimation objective
    /// against inline experiment files, returning the objective norm and
    /// the estimator's health report.
    Estimate {
        /// Inline experiment files: `(label, times, values)`.
        files: Vec<(String, Vec<f64>, Vec<f64>)>,
        /// SPMD ranks for the objective evaluation.
        workers: usize,
    },
}

/// A parsed, validated job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen id, echoed on every event for this job.
    pub id: String,
    /// Tenant for fair queueing; defaults to `"default"`.
    pub tenant: String,
    /// RDL model source.
    pub source: String,
    /// Species names summed into the observable.
    pub observe: Vec<String>,
    /// What to run.
    pub kind: JobKind,
    /// Per-job deadline in milliseconds; `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Optimization level name (`none|simplify|algebraic|full`).
    pub level: String,
}

impl JobRequest {
    /// Parse one request line. Errors are [`JobError::Invalid`] —
    /// malformed JSON or missing/ill-typed fields never reach a worker.
    pub fn parse(line: &str) -> Result<JobRequest, JobError> {
        let v = json::parse(line).map_err(|e| JobError::Invalid {
            message: format!("malformed JSON: {e}"),
        })?;
        let invalid = |message: String| JobError::Invalid { message };
        let str_field = |key: &str| -> Result<String, JobError> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| invalid(format!("missing or non-string field '{key}'")))
        };
        let id = str_field("id")?;
        let source = str_field("source")?;
        let tenant = v
            .get("tenant")
            .and_then(Value::as_str)
            .unwrap_or("default")
            .to_string();
        let level = v
            .get("level")
            .and_then(Value::as_str)
            .unwrap_or("full")
            .to_string();
        let observe = match v.get("observe") {
            None => Vec::new(),
            Some(o) => o
                .as_arr()
                .ok_or_else(|| invalid("'observe' must be an array of species names".into()))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| invalid("'observe' entries must be strings".into()))
                })
                .collect::<Result<_, _>>()?,
        };
        let deadline_ms =
            match v.get("deadline_ms") {
                None | Some(Value::Null) => None,
                Some(d) => Some(d.as_u64().ok_or_else(|| {
                    invalid("'deadline_ms' must be a non-negative integer".into())
                })?),
            };
        let numbers = |val: &Value, key: &str| -> Result<Vec<f64>, JobError> {
            val.as_arr()
                .ok_or_else(|| invalid(format!("'{key}' must be an array of numbers")))?
                .iter()
                .map(|n| {
                    n.as_f64()
                        .filter(|x| x.is_finite())
                        .ok_or_else(|| invalid(format!("'{key}' entries must be finite numbers")))
                })
                .collect()
        };
        let kind = match v.get("kind").and_then(Value::as_str).unwrap_or("simulate") {
            "simulate" => {
                let times = numbers(
                    v.get("times")
                        .ok_or_else(|| invalid("simulate jobs need 'times'".into()))?,
                    "times",
                )?;
                if times.is_empty() || times.windows(2).any(|w| w[0] >= w[1]) || times[0] <= 0.0 {
                    return Err(invalid(
                        "'times' must be positive and strictly ascending".into(),
                    ));
                }
                JobKind::Simulate { times }
            }
            "estimate" => {
                let files_val = v
                    .get("files")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| invalid("estimate jobs need a 'files' array".into()))?;
                if files_val.is_empty() {
                    return Err(invalid("estimate jobs need at least one file".into()));
                }
                let mut files = Vec::with_capacity(files_val.len());
                for (i, f) in files_val.iter().enumerate() {
                    let label = f
                        .get("label")
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("file{i}"));
                    let times = numbers(
                        f.get("times")
                            .ok_or_else(|| invalid(format!("file {i} needs 'times'")))?,
                        "times",
                    )?;
                    let values = numbers(
                        f.get("values")
                            .ok_or_else(|| invalid(format!("file {i} needs 'values'")))?,
                        "values",
                    )?;
                    if times.len() != values.len() || times.is_empty() {
                        return Err(invalid(format!(
                            "file {i}: 'times' and 'values' must be equal-length and non-empty"
                        )));
                    }
                    files.push((label, times, values));
                }
                let workers = v
                    .get("workers")
                    .map(|w| {
                        w.as_u64()
                            .filter(|&w| w >= 1)
                            .ok_or_else(|| invalid("'workers' must be a positive integer".into()))
                    })
                    .transpose()?
                    .unwrap_or(2) as usize;
                JobKind::Estimate { files, workers }
            }
            other => {
                return Err(invalid(format!(
                    "unknown kind '{other}' (expected simulate or estimate)"
                )))
            }
        };
        Ok(JobRequest {
            id,
            tenant,
            source,
            observe,
            kind,
            deadline_ms,
            level,
        })
    }
}

/// Structured per-job failures. Exactly one of these kinds terminates
/// every admitted-but-unsuccessful job; none of them take the server or
/// a co-tenant down with them.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The admission queue was full; the job was never enqueued. Retry
    /// later (backoff recommended) — nothing was computed.
    Rejected {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request line failed parsing or validation; never enqueued.
    Invalid {
        /// What was malformed.
        message: String,
    },
    /// The model failed to compile (diagnostic text included).
    Compile {
        /// The compiler diagnostic.
        message: String,
    },
    /// Every solver in the fallback chain failed on a numerical ground.
    Solver {
        /// The combined fallback-chain error.
        message: String,
    },
    /// The per-job deadline fired; the solve was cancelled at a step
    /// boundary. Partial work is discarded.
    Deadline {
        /// The deadline that was exceeded.
        deadline_ms: u64,
    },
    /// The job's worker panicked; the panic was contained and the
    /// worker kept serving other jobs.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The server is draining and no longer admits jobs.
    Shutdown,
}

impl JobError {
    /// Stable lowercase kind tag for the wire and for tests.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Rejected { .. } => "rejected",
            JobError::Invalid { .. } => "invalid",
            JobError::Compile { .. } => "compile",
            JobError::Solver { .. } => "solver",
            JobError::Deadline { .. } => "deadline",
            JobError::Panicked { .. } => "panicked",
            JobError::Shutdown => "shutdown",
        }
    }

    /// Human-readable detail line.
    pub fn message(&self) -> String {
        match self {
            JobError::Rejected { capacity } => {
                format!("admission queue full (capacity {capacity})")
            }
            JobError::Invalid { message }
            | JobError::Compile { message }
            | JobError::Solver { message }
            | JobError::Panicked { message } => message.clone(),
            JobError::Deadline { deadline_ms } => {
                format!("deadline of {deadline_ms} ms exceeded")
            }
            JobError::Shutdown => "server is draining; no new jobs admitted".to_string(),
        }
    }

    /// The `error` event line for this failure.
    pub fn event(&self, id: &str) -> String {
        obj([
            ("event", "error".into()),
            ("id", id.into()),
            (
                "error",
                obj([
                    ("kind", self.kind().into()),
                    ("message", self.message().into()),
                ]),
            ),
        ])
        .to_json()
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for JobError {}

/// The `accepted` admission event.
pub fn accepted_event(id: &str, queue_depth: usize) -> String {
    obj([
        ("event", "accepted".into()),
        ("id", id.into()),
        ("queue_depth", queue_depth.into()),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_simulate_request() {
        let req = JobRequest::parse(
            r#"{"id":"j1","source":"rate K = 1;","times":[0.5,1.0],"observe":["X"]}"#,
        )
        .unwrap();
        assert_eq!(req.id, "j1");
        assert_eq!(req.tenant, "default");
        assert_eq!(req.level, "full");
        assert_eq!(
            req.kind,
            JobKind::Simulate {
                times: vec![0.5, 1.0]
            }
        );
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn parses_an_estimate_request() {
        let req = JobRequest::parse(
            r#"{"id":"e1","tenant":"acme","kind":"estimate","source":"s","workers":3,
                "files":[{"label":"a","times":[0.1,0.2],"values":[1.0,2.0]}]}"#,
        )
        .unwrap();
        match req.kind {
            JobKind::Estimate { files, workers } => {
                assert_eq!(workers, 3);
                assert_eq!(files.len(), 1);
                assert_eq!(files[0].0, "a");
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests_as_invalid() {
        for bad in [
            "not json",
            r#"{"id":"x"}"#,
            r#"{"id":"x","source":"s","times":[]}"#,
            r#"{"id":"x","source":"s","times":[2.0,1.0]}"#,
            r#"{"id":"x","source":"s","times":[0.5],"deadline_ms":-3}"#,
            r#"{"id":"x","source":"s","kind":"teleport"}"#,
            r#"{"id":"x","source":"s","kind":"estimate","files":[]}"#,
        ] {
            let err = JobRequest::parse(bad).unwrap_err();
            assert_eq!(err.kind(), "invalid", "{bad}");
        }
    }

    #[test]
    fn error_events_are_structured() {
        let e = JobError::Deadline { deadline_ms: 50 };
        let line = e.event("j9");
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("id").and_then(Value::as_str), Some("j9"));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Value::as_str), Some("deadline"));
    }
}
