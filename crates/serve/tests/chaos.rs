//! Chaos-harness integration tests: the server under deterministic
//! fault injection.
//!
//! Every fault here is scripted through the [`FaultPlan`] keyed by
//! admission sequence number, so the same test run always injects the
//! same faults into the same jobs. The invariants under test are the
//! service's contract: a misbehaving job terminates as exactly one
//! structured `error` event, co-tenant jobs are untouched (bit-identical
//! to a fault-free run), admission rejections are immediate, and a
//! graceful drain completes every admitted job.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

use rms_parallel::{FaultPlan, RetryPolicy};
use rms_serve::json::{self, Value};
use rms_serve::{serve_lines, JobKind, JobRequest, Server, ServerConfig};

/// A tiny disulfide scission model; `salt` makes the content address
/// unique per test so parallel tests never share cache slots.
fn model(salt: &str) -> String {
    format!(
        r#"
        rate K_{salt} = 2;
        molecule DiS = "CSSC" init 1.0;
        rule scission {{
            site bond S ~ S order single;
            action disconnect;
            rate K_{salt};
        }}
        "#
    )
}

fn simulate_request(id: &str, tenant: &str, source: &str, deadline_ms: Option<u64>) -> JobRequest {
    JobRequest {
        id: id.to_string(),
        tenant: tenant.to_string(),
        source: source.to_string(),
        observe: Vec::new(),
        kind: JobKind::Simulate {
            times: vec![0.2, 0.5],
        },
        deadline_ms,
        level: "full".to_string(),
    }
}

/// Drain the event channel into parsed JSON values.
fn events(rx: &Receiver<String>) -> Vec<Value> {
    rx.try_iter()
        .map(|line| json::parse(&line).expect("well-formed event"))
        .collect()
}

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get(key)
        .unwrap_or_else(|| panic!("event missing '{key}'"))
}

fn str_field<'v>(v: &'v Value, key: &str) -> &'v str {
    field(v, key)
        .as_str()
        .unwrap_or_else(|| panic!("'{key}' not a string"))
}

/// The terminal (`result`/`error`) event for a job id.
fn terminal<'v>(evs: &'v [Value], id: &str) -> &'v Value {
    let mut found = evs.iter().filter(|e| {
        matches!(str_field(e, "event"), "result" | "error")
            && e.get("id").and_then(Value::as_str) == Some(id)
    });
    let first = found
        .next()
        .unwrap_or_else(|| panic!("no terminal event for job '{id}'"));
    assert!(
        found.next().is_none(),
        "job '{id}' produced more than one terminal event"
    );
    first
}

fn error_kind(ev: &Value) -> &str {
    assert_eq!(str_field(ev, "event"), "error");
    str_field(field(ev, "error"), "kind")
}

fn values_of(ev: &Value) -> Vec<f64> {
    field(ev, "values")
        .as_arr()
        .expect("values array")
        .iter()
        .map(|v| v.as_f64().expect("numeric value"))
        .collect()
}

#[test]
fn panicking_job_is_contained_and_co_tenants_are_unaffected() {
    let source = model("panic");
    // Reference run with no faults: what the healthy jobs must produce.
    let reference = {
        let server = Server::start(ServerConfig::default());
        let (tx, rx) = channel();
        server
            .submit(simulate_request("ref", "t", &source, None), tx)
            .unwrap();
        server.drain();
        values_of(terminal(&events(&rx), "ref"))
    };

    // Same jobs, but admission sequence number 1 panics on every call.
    let server = Server::start(ServerConfig {
        workers: 2,
        faults: Some(FaultPlan::new().panic_file(1)),
        ..ServerConfig::default()
    });
    let (tx, rx) = channel();
    for (i, tenant) in [(0, "alice"), (1, "mallory"), (2, "bob")] {
        let req = simulate_request(&format!("j{i}"), tenant, &source, None);
        server.submit(req, tx.clone()).unwrap();
    }
    // The server keeps serving after the panic: a job admitted later
    // (sequence 3) still succeeds.
    std::thread::sleep(Duration::from_millis(50));
    server
        .submit(simulate_request("late", "carol", &source, None), tx.clone())
        .unwrap();
    let stats = server.drain();

    let evs = events(&rx);
    let panic_ev = terminal(&evs, "j1");
    assert_eq!(error_kind(panic_ev), "panicked");
    // The panic payload text survives into the structured event.
    assert!(
        str_field(field(panic_ev, "error"), "message").contains("injected panic"),
        "panic message not propagated"
    );
    for id in ["j0", "j2", "late"] {
        let ev = terminal(&evs, id);
        assert_eq!(str_field(ev, "event"), "result", "{id}");
        // Zero cross-job contamination: bit-identical to the
        // fault-free run.
        assert_eq!(values_of(ev), reference, "{id}");
    }
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.succeeded, 3);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.panicked, 1);
}

#[test]
fn blown_deadline_cancels_cleanly_as_a_structured_error() {
    let source = model("deadline");
    let server = Server::start(ServerConfig {
        workers: 1,
        // Sequence 0 stalls well past its deadline before the solve
        // starts; the watcher fires the cancel token during the stall
        // and the solver unwinds at its first step boundary.
        faults: Some(FaultPlan::new().stall_file(0, Duration::from_millis(120))),
        ..ServerConfig::default()
    });
    let (tx, rx) = channel();
    server
        .submit(simulate_request("slow", "t", &source, Some(30)), tx.clone())
        .unwrap();
    server
        .submit(simulate_request("ok", "t", &source, Some(30_000)), tx)
        .unwrap();
    let stats = server.drain();

    let evs = events(&rx);
    assert_eq!(error_kind(terminal(&evs, "slow")), "deadline");
    assert_eq!(str_field(terminal(&evs, "ok"), "event"), "result");
    assert_eq!(stats.deadlines, 1);
    assert_eq!(stats.succeeded, 1);
}

#[test]
fn full_queue_rejects_immediately_without_losing_admitted_jobs() {
    let source = model("reject");
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        // Hold the single worker on the first job so the queue stays
        // full deterministically.
        faults: Some(FaultPlan::new().stall_file(0, Duration::from_millis(300))),
        ..ServerConfig::default()
    });
    let (tx, rx) = channel();
    server
        .submit(simulate_request("held", "t", &source, None), tx.clone())
        .unwrap();
    // Wait for the worker to take the held job off the queue.
    while server.queue_depth() > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    server
        .submit(simulate_request("q1", "t", &source, None), tx.clone())
        .unwrap();
    server
        .submit(simulate_request("q2", "t", &source, None), tx.clone())
        .unwrap();
    let rejected = server
        .submit(simulate_request("q3", "t", &source, None), tx.clone())
        .unwrap_err();
    assert_eq!(rejected.kind(), "rejected");

    let stats = server.drain();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.succeeded, 3, "admitted jobs all completed");
    let evs = events(&rx);
    for id in ["held", "q1", "q2"] {
        assert_eq!(str_field(terminal(&evs, id), "event"), "result", "{id}");
    }
    // A draining server rejects new work as `shutdown`.
    let server2 = Server::start(ServerConfig::default());
    let (tx2, _rx2) = channel::<String>();
    server2.close();
    let shutdown = server2
        .submit(simulate_request("late", "t", &source, None), tx2)
        .unwrap_err();
    assert_eq!(shutdown.kind(), "shutdown");
    assert_eq!(server2.drain().admitted, 0);
}

#[test]
fn concurrent_tenants_share_exactly_one_compile() {
    let source = model("shared_compile");
    let server = Server::start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let (tx, rx) = channel();
    for (i, tenant) in ["alice", "bob", "carol", "dave"].iter().enumerate() {
        let req = simulate_request(&format!("c{i}"), tenant, &source, None);
        server.submit(req, tx.clone()).unwrap();
    }
    server.drain();

    let evs = events(&rx);
    let mut cold = 0;
    let mut reference: Option<Vec<f64>> = None;
    for i in 0..4 {
        let ev = terminal(&evs, &format!("c{i}"));
        assert_eq!(str_field(ev, "event"), "result");
        match str_field(ev, "cache") {
            "cold" => cold += 1,
            "memory" => {}
            other => panic!("unexpected cache status {other}"),
        }
        // Shared artifact, identical dynamics for every tenant.
        let values = values_of(ev);
        match &reference {
            Some(r) => assert_eq!(&values, r),
            None => reference = Some(values),
        }
    }
    // The compile happened exactly once; the three concurrent
    // same-model submissions waited on the in-flight build and hit the
    // memory cache.
    assert_eq!(cold, 1);
}

#[test]
fn graceful_drain_completes_every_admitted_job() {
    let source = model("drain");
    let server = Server::start(ServerConfig {
        workers: 2,
        retry: RetryPolicy::with_max_retries(1),
        ..ServerConfig::default()
    });
    let (tx, rx) = channel();
    for i in 0..6 {
        let req = simulate_request(&format!("d{i}"), &format!("t{}", i % 3), &source, None);
        server.submit(req, tx.clone()).unwrap();
    }
    // Drain immediately: jobs are still queued, none may be dropped.
    let stats = server.drain();
    assert_eq!(stats.admitted, 6);
    assert_eq!(stats.succeeded + stats.failed, 6);

    let evs = events(&rx);
    for i in 0..6 {
        let id = format!("d{i}");
        let accepted = evs
            .iter()
            .any(|e| str_field(e, "event") == "accepted" && str_field(e, "id") == id);
        assert!(accepted, "missing accepted event for {id}");
        terminal(&evs, &id);
    }
}

#[test]
fn estimate_jobs_report_objective_and_health() {
    let source = model("estimate");
    let server = Server::start(ServerConfig::default());
    let (tx, rx) = channel();
    let req = JobRequest {
        id: "e0".to_string(),
        tenant: "acme".to_string(),
        source,
        observe: Vec::new(),
        kind: JobKind::Estimate {
            files: vec![
                ("f0".to_string(), vec![0.2, 0.5], vec![1.0, 1.2]),
                ("f1".to_string(), vec![0.3, 0.6], vec![0.9, 1.1]),
            ],
            workers: 2,
        },
        deadline_ms: None,
        level: "full".to_string(),
    };
    server.submit(req, tx).unwrap();
    server.drain();

    let evs = events(&rx);
    let ev = terminal(&evs, "e0");
    assert_eq!(str_field(ev, "event"), "result");
    assert_eq!(str_field(ev, "kind"), "estimate");
    let objective = field(ev, "objective").as_f64().unwrap();
    assert!(objective.is_finite() && objective > 0.0);
    let health = field(ev, "health");
    assert_eq!(health.get("healthy").and_then(Value::as_bool), Some(true));
    assert_eq!(health.get("file_failures").and_then(Value::as_u64), Some(0));
}

#[test]
fn corrupt_disk_cache_entries_do_not_poison_jobs() {
    let dir = std::env::temp_dir().join(format!("rms-serve-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let source = model("corrupt_cache");

    let run_once = |expect_id: &str| -> String {
        let server = Server::start(ServerConfig {
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        });
        let (tx, rx) = channel();
        server
            .submit(simulate_request(expect_id, "t", &source, None), tx)
            .unwrap();
        server.drain();
        let evs = events(&rx);
        let ev = terminal(&evs, expect_id);
        assert_eq!(str_field(ev, "event"), "result", "{expect_id}");
        str_field(ev, "cache").to_string()
    };

    assert_eq!(run_once("first"), "cold");

    // Corrupt every on-disk artifact, then force the next job through
    // the disk path by clearing the memory layer. The job must still
    // succeed — quarantine + cold recompile, not an error.
    for entry in std::fs::read_dir(&dir).expect("cache dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|x| x == "rmsc") {
            let mut bytes = std::fs::read(&path).expect("readable");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, &bytes).expect("rewrite");
        }
    }
    rms_driver::cache::clear_memory();
    assert_eq!(run_once("after-corruption"), "cold");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn line_transport_streams_structured_events_for_a_mixed_batch() {
    let source = model("transport").replace('\n', " ");
    let good = format!(
        r#"{{"id":"g1","tenant":"a","source":"{}","times":[0.2,0.5]}}"#,
        source.replace('"', "\\\"")
    );
    let invalid_json = "{not json";
    let bad_species = format!(
        r#"{{"id":"g2","source":"{}","times":[0.5],"observe":["NoSuchSpecies"]}}"#,
        source.replace('"', "\\\"")
    );
    let input = format!("{good}\n{invalid_json}\n{bad_species}\n");

    let mut out: Vec<u8> = Vec::new();
    let stats =
        serve_lines(input.as_bytes(), &mut out, ServerConfig::default()).expect("transport io");

    let text = String::from_utf8(out).expect("utf8 events");
    let evs: Vec<Value> = text
        .lines()
        .map(|l| json::parse(l).expect("event line"))
        .collect();
    assert_eq!(str_field(terminal(&evs, "g1"), "event"), "result");
    assert_eq!(error_kind(terminal(&evs, "g2")), "invalid");
    // The unparseable line still produced a structured error (empty id).
    assert!(evs
        .iter()
        .any(|e| str_field(e, "event") == "error" && str_field(e, "id").is_empty()));
    // The stream ends with the drained summary.
    let last = evs.last().unwrap();
    assert_eq!(str_field(last, "event"), "drained");
    // g1 and g2 were both admitted (the unknown species only surfaces
    // in the worker); the unparseable line never was.
    assert_eq!(field(last, "admitted").as_u64(), Some(2));
    assert_eq!(stats.succeeded, 1);
}

/// `Sender` must be usable from many client threads at once; exercise
/// the full concurrent path: 8 clients, mixed tenants, one shared
/// server.
#[test]
fn eight_concurrent_clients_all_get_their_results() {
    let source = model("concurrent");
    let server = std::sync::Arc::new(Server::start(ServerConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServerConfig::default()
    }));
    let mut clients = Vec::new();
    for c in 0..8 {
        let server = std::sync::Arc::clone(&server);
        let source = source.clone();
        clients.push(std::thread::spawn(move || {
            let (tx, rx): (Sender<String>, Receiver<String>) = channel();
            for j in 0..3 {
                let req =
                    simulate_request(&format!("c{c}-{j}"), &format!("tenant{c}"), &source, None);
                server.submit(req, tx.clone()).unwrap();
            }
            drop(tx);
            let mut results = 0;
            for line in rx {
                let ev = json::parse(&line).expect("event");
                if ev.get("event").and_then(Value::as_str) == Some("result") {
                    results += 1;
                }
                if results == 3 {
                    break;
                }
            }
            results
        }));
    }
    for client in clients {
        assert_eq!(client.join().expect("client thread"), 3);
    }
    let server = std::sync::Arc::into_inner(server).expect("sole owner");
    let stats = server.drain();
    assert_eq!(stats.admitted, 24);
    assert_eq!(stats.succeeded, 24);
}
