//! Statistical analysis of a completed fit.
//!
//! The paper's Figure 1 workflow ends with "statistically analyzing the
//! results", and Figure 2 shows a *Statistical Information* component the
//! paper leaves unimplemented (dashed box). This module supplies it:
//! goodness-of-fit measures and linearized parameter uncertainties from
//! the Jacobian at the optimum — the numbers a chemist needs to decide
//! whether "a tight correlation exists between the runtime result and the
//! experimental results" (§4).

use rms_solver::{Lu, Matrix};

use crate::lm::NloptError;
use crate::residual::Residual;

/// Goodness-of-fit and parameter-uncertainty summary.
#[derive(Debug, Clone)]
pub struct FitStatistics {
    /// Sum of squared residuals.
    pub sse: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Coefficient of determination R² (1 − SSE/SS_tot), when the
    /// observed values were supplied.
    pub r_squared: Option<f64>,
    /// Reduced chi-square `SSE / (m − n)` (σ² estimate).
    pub reduced_chi_square: f64,
    /// Degrees of freedom `m − n`.
    pub degrees_of_freedom: usize,
    /// Per-parameter standard errors `sqrt(diag(σ²(JᵀJ)⁻¹))`.
    pub standard_errors: Vec<f64>,
    /// 95 % confidence half-widths per parameter.
    pub confidence_95: Vec<f64>,
    /// Parameter correlation matrix (symmetric, unit diagonal).
    pub correlation: Matrix,
}

impl FitStatistics {
    /// Compute fit statistics at the optimum `params`.
    ///
    /// `observed` (the experimental values) enables R²; pass `None` when
    /// the residual is not of the simple `model − observed` form.
    /// `fd_step` should match the step used during optimization (see
    /// [`crate::LmOptions::fd_step`]).
    ///
    /// Unbounded shorthand for [`evaluate_bounded`]; when the optimum may
    /// sit on a bound, pass the real box so the Jacobian never evaluates
    /// the residual outside it.
    ///
    /// [`evaluate_bounded`]: FitStatistics::evaluate_bounded
    pub fn evaluate<R: Residual>(
        residual: &R,
        params: &[f64],
        observed: Option<&[f64]>,
        fd_step: f64,
    ) -> Result<FitStatistics, NloptError> {
        let n = residual.n_params();
        let unbounded = vec![f64::NEG_INFINITY; n];
        let unbounded_hi = vec![f64::INFINITY; n];
        FitStatistics::evaluate_bounded(
            residual,
            params,
            observed,
            &unbounded,
            &unbounded_hi,
            fd_step,
        )
    }

    /// [`evaluate`](FitStatistics::evaluate) with the optimizer's bound
    /// box: the Jacobian at the optimum is obtained through
    /// [`Residual::jacobian`], so it is analytic when the residual
    /// provides sensitivities and a *bound-aware* finite difference
    /// otherwise — post-fit statistics at a bound-pinned optimum no
    /// longer evaluate the residual outside `[lo, hi]`.
    pub fn evaluate_bounded<R: Residual>(
        residual: &R,
        params: &[f64],
        observed: Option<&[f64]>,
        lo: &[f64],
        hi: &[f64],
        fd_step: f64,
    ) -> Result<FitStatistics, NloptError> {
        let n = residual.n_params();
        let m = residual.n_residuals();
        if params.len() != n || lo.len() != n || hi.len() != n {
            return Err(NloptError::BadInput(format!(
                "expected {n} parameters, got params={}, lo={}, hi={}",
                params.len(),
                lo.len(),
                hi.len()
            )));
        }
        if m <= n {
            return Err(NloptError::BadInput(format!(
                "need more residuals ({m}) than parameters ({n}) for statistics"
            )));
        }
        let mut r = vec![0.0; m];
        residual
            .eval(params, &mut r)
            .map_err(NloptError::InitialEvalFailed)?;
        let sse: f64 = r.iter().map(|v| v * v).sum();
        let dof = m - n;
        let sigma2 = sse / dof as f64;

        // Jacobian at the optimum (analytic override or bound-aware FD).
        let mut jac = Matrix::zeros(m, n);
        residual
            .jacobian(params, &r, lo, hi, fd_step, jac.data_mut())
            .map_err(NloptError::InitialEvalFailed)?;

        // Covariance = σ² (JᵀJ)⁻¹.
        let mut jtj = Matrix::zeros(n, n);
        for a in 0..n {
            for b in a..n {
                let mut sum = 0.0;
                for i in 0..m {
                    sum += jac[(i, a)] * jac[(i, b)];
                }
                jtj[(a, b)] = sum;
                jtj[(b, a)] = sum;
            }
        }
        let cov = Lu::factor(&jtj)
            .and_then(|lu| lu.inverse())
            .map_err(|_| NloptError::Singular)?;

        let standard_errors: Vec<f64> = (0..n)
            .map(|j| (sigma2 * cov[(j, j)]).max(0.0).sqrt())
            .collect();
        let t = student_t_975(dof);
        let confidence_95: Vec<f64> = standard_errors.iter().map(|se| t * se).collect();

        let mut correlation = Matrix::identity(n);
        for a in 0..n {
            for b in 0..n {
                let denom = (cov[(a, a)] * cov[(b, b)]).sqrt();
                correlation[(a, b)] = if denom > 0.0 {
                    cov[(a, b)] / denom
                } else {
                    0.0
                };
            }
        }

        let r_squared = observed.map(|obs| {
            let mean = obs.iter().sum::<f64>() / obs.len() as f64;
            let ss_tot: f64 = obs.iter().map(|v| (v - mean) * (v - mean)).sum();
            if ss_tot > 0.0 {
                1.0 - sse / ss_tot
            } else {
                f64::NAN
            }
        });

        Ok(FitStatistics {
            sse,
            rmse: (sse / m as f64).sqrt(),
            r_squared,
            reduced_chi_square: sigma2,
            degrees_of_freedom: dof,
            standard_errors,
            confidence_95,
            correlation,
        })
    }

    /// A terse human-readable report.
    pub fn report(&self, parameter_names: &[&str]) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "SSE = {:.4e}, RMSE = {:.4e}", self.sse, self.rmse);
        if let Some(r2) = self.r_squared {
            let _ = writeln!(out, "R^2 = {r2:.6}");
        }
        let _ = writeln!(
            out,
            "reduced chi^2 = {:.4e} ({} degrees of freedom)",
            self.reduced_chi_square, self.degrees_of_freedom
        );
        for (j, se) in self.standard_errors.iter().enumerate() {
            let name = parameter_names.get(j).copied().unwrap_or("?");
            let _ = writeln!(
                out,
                "  {name:<12} +/- {se:.3e} (95% half-width {:.3e})",
                self.confidence_95[j]
            );
        }
        out
    }
}

/// 97.5 % quantile of Student's t with `dof` degrees of freedom
/// (two-sided 95 % interval). Table for small dof, normal limit above.
fn student_t_975(dof: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match dof {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[d - 1],
        d if d <= 60 => 2.00,
        d if d <= 120 => 1.98,
        _ => 1.96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::{optimize, LmOptions};
    use crate::residual::FnResidual;

    /// Linear model y = a + b x against noisy data with known answer.
    fn linear_fixture() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.5 + 0.8 * x + rng.gen_range(-0.05..0.05))
            .collect();
        let fitted = {
            let xs = xs.clone();
            let ys = ys.clone();
            let r = FnResidual::new(2, 40, move |p: &[f64], out: &mut [f64]| {
                for (i, x) in xs.iter().enumerate() {
                    out[i] = p[0] + p[1] * x - ys[i];
                }
                Ok(())
            });
            optimize(
                &r,
                &[0.0, 0.0],
                &[-1e6, -1e6],
                &[1e6, 1e6],
                LmOptions::default(),
            )
            .unwrap()
            .params
        };
        (xs, ys, fitted)
    }

    #[test]
    fn linear_fit_statistics() {
        let (xs, ys, fitted) = linear_fixture();
        let xs2 = xs.clone();
        let ys2 = ys.clone();
        let r = FnResidual::new(2, 40, move |p: &[f64], out: &mut [f64]| {
            for (i, x) in xs2.iter().enumerate() {
                out[i] = p[0] + p[1] * x - ys2[i];
            }
            Ok(())
        });
        let stats =
            FitStatistics::evaluate(&r, &fitted, Some(&ys), LmOptions::default().fd_step).unwrap();
        assert!(stats.r_squared.unwrap() > 0.99, "{:?}", stats.r_squared);
        assert_eq!(stats.degrees_of_freedom, 38);
        // Truth inside the 95% interval for both parameters.
        assert!((fitted[0] - 1.5).abs() < stats.confidence_95[0] * 2.0);
        assert!((fitted[1] - 0.8).abs() < stats.confidence_95[1] * 2.0);
        // Intercept/slope of a line are negatively correlated.
        assert!(stats.correlation[(0, 1)] < 0.0);
        assert!((stats.correlation[(0, 0)] - 1.0).abs() < 1e-12);
        let report = stats.report(&["a", "b"]);
        assert!(report.contains("R^2"), "{report}");
    }

    #[test]
    fn perfect_fit_zero_errors() {
        let r = FnResidual::new(1, 5, |p: &[f64], out: &mut [f64]| {
            for (i, o) in out.iter_mut().enumerate() {
                *o = p[0] - 2.0 + 0.0 * i as f64;
            }
            Ok(())
        });
        let stats = FitStatistics::evaluate(&r, &[2.0], None, 1e-8).unwrap();
        assert!(stats.sse < 1e-20);
        assert!(stats.standard_errors[0] < 1e-10);
        assert!(stats.r_squared.is_none());
    }

    #[test]
    fn bound_pinned_statistics_stay_feasible() {
        // Optimum pinned at the upper bound; the residual fails outside
        // [lo, hi] (an ODE residual at invalid parameters). The old
        // unbounded FD stepped past `hi` and errored; the bounded path
        // must produce finite standard errors.
        let lo = [0.0];
        let hi = [2.0];
        let r = FnResidual::new(1, 5, move |p: &[f64], out: &mut [f64]| {
            if p[0] < 0.0 || p[0] > 2.0 {
                return Err(format!("outside bounds: {}", p[0]));
            }
            for (i, o) in out.iter_mut().enumerate() {
                *o = p[0] - 5.0 + 0.01 * i as f64;
            }
            Ok(())
        });
        let result = optimize(&r, &[1.0], &lo, &hi, LmOptions::default()).unwrap();
        assert!((result.params[0] - 2.0).abs() < 1e-9);
        // Unbounded evaluation at the pinned optimum fails...
        assert!(matches!(
            FitStatistics::evaluate(&r, &result.params, None, 1e-3),
            Err(NloptError::InitialEvalFailed(_))
        ));
        // ...the bounded one succeeds.
        let stats =
            FitStatistics::evaluate_bounded(&r, &result.params, None, &lo, &hi, 1e-3).unwrap();
        assert!(stats.standard_errors[0].is_finite());
        assert!(stats.standard_errors[0] > 0.0);
    }

    #[test]
    fn underdetermined_rejected() {
        let r = FnResidual::new(3, 2, |_p: &[f64], out: &mut [f64]| {
            out[0] = 0.0;
            out[1] = 0.0;
            Ok(())
        });
        assert!(matches!(
            FitStatistics::evaluate(&r, &[0.0, 0.0, 0.0], None, 1e-8),
            Err(NloptError::BadInput(_))
        ));
    }

    #[test]
    fn t_quantiles_monotone() {
        assert!(student_t_975(1) > student_t_975(5));
        assert!(student_t_975(5) > student_t_975(30));
        assert!(student_t_975(30) > student_t_975(1000));
        assert!((student_t_975(1000) - 1.96).abs() < 1e-9);
    }
}
