//! The residual-vector interface the optimizer minimizes.

/// A residual function `r(p)`: the optimizer minimizes `‖r(p)‖²`.
///
/// In the Reaction Modeling Suite the parameters are kinetic rate
/// constants and the residuals are `simulated − experimental` property
/// values across all records of all data files (paper §4.3's
/// `error_vector[]`). Evaluation may fail (e.g. the ODE solver diverges
/// for an extreme parameter guess); the optimizer treats a failure as an
/// unacceptable step and backs off.
pub trait Residual {
    /// Number of parameters.
    fn n_params(&self) -> usize;

    /// Number of residual components.
    fn n_residuals(&self) -> usize;

    /// Evaluate the residual vector at `params` into `out`
    /// (`out.len() == n_residuals()`).
    fn eval(&self, params: &[f64], out: &mut [f64]) -> Result<(), String>;
}

/// Wrap a closure as a [`Residual`].
pub struct FnResidual<F: Fn(&[f64], &mut [f64]) -> Result<(), String>> {
    n_params: usize,
    n_residuals: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64]) -> Result<(), String>> FnResidual<F> {
    /// Create from the two dimensions and a closure.
    pub fn new(n_params: usize, n_residuals: usize, f: F) -> FnResidual<F> {
        FnResidual {
            n_params,
            n_residuals,
            f,
        }
    }
}

impl<F: Fn(&[f64], &mut [f64]) -> Result<(), String>> Residual for FnResidual<F> {
    fn n_params(&self) -> usize {
        self.n_params
    }

    fn n_residuals(&self) -> usize {
        self.n_residuals
    }

    fn eval(&self, params: &[f64], out: &mut [f64]) -> Result<(), String> {
        (self.f)(params, out)
    }
}

impl<T: Residual + ?Sized> Residual for &T {
    fn n_params(&self) -> usize {
        (**self).n_params()
    }

    fn n_residuals(&self) -> usize {
        (**self).n_residuals()
    }

    fn eval(&self, params: &[f64], out: &mut [f64]) -> Result<(), String> {
        (**self).eval(params, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_wrapper() {
        let r = FnResidual::new(2, 3, |p: &[f64], out: &mut [f64]| {
            out[0] = p[0] - 1.0;
            out[1] = p[1] - 2.0;
            out[2] = p[0] * p[1] - 2.0;
            Ok(())
        });
        assert_eq!(r.n_params(), 2);
        assert_eq!(r.n_residuals(), 3);
        let mut out = vec![0.0; 3];
        r.eval(&[1.0, 2.0], &mut out).unwrap();
        assert_eq!(out, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn failure_propagates() {
        let r = FnResidual::new(1, 1, |_p: &[f64], _out: &mut [f64]| {
            Err("solver blew up".to_string())
        });
        let mut out = vec![0.0];
        assert!(r.eval(&[1.0], &mut out).is_err());
    }
}
