//! The residual-vector interface the optimizer minimizes.

/// A bound-aware finite-difference step for parameter `p ∈ [lo, hi]`:
/// MINPACK-style magnitude (`rel` relative to `|p|`, absolute at 0),
/// pointed into the feasible interval. Prefers the forward direction,
/// flips backward at the upper bound, and when *neither* full step fits
/// (a bound interval narrower than the step) clamps to the wider side —
/// never evaluating outside `[lo, hi]`, where an ODE residual may
/// diverge or see physically invalid (negative) rate constants.
///
/// Errors only on a degenerate interval (`lo == hi == p`), where no
/// derivative information is obtainable.
pub fn bounded_fd_step(p: f64, lo: f64, hi: f64, rel: f64) -> Result<f64, String> {
    let scale = if p != 0.0 { p.abs() } else { 1.0 };
    let h = rel * scale;
    if p + h <= hi {
        return Ok(h);
    }
    if p - h >= lo {
        return Ok(-h);
    }
    let room_up = hi - p;
    let room_down = p - lo;
    if room_up <= 0.0 && room_down <= 0.0 {
        return Err(format!(
            "bound interval [{lo}, {hi}] too narrow for a finite-difference step at p = {p}"
        ));
    }
    Ok(if room_up >= room_down {
        room_up
    } else {
        -room_down
    })
}

/// A residual function `r(p)`: the optimizer minimizes `‖r(p)‖²`.
///
/// In the Reaction Modeling Suite the parameters are kinetic rate
/// constants and the residuals are `simulated − experimental` property
/// values across all records of all data files (paper §4.3's
/// `error_vector[]`). Evaluation may fail (e.g. the ODE solver diverges
/// for an extreme parameter guess); the optimizer treats a failure as an
/// unacceptable step and backs off.
pub trait Residual {
    /// Number of parameters.
    fn n_params(&self) -> usize;

    /// Number of residual components.
    fn n_residuals(&self) -> usize;

    /// Evaluate the residual vector at `params` into `out`
    /// (`out.len() == n_residuals()`).
    fn eval(&self, params: &[f64], out: &mut [f64]) -> Result<(), String>;

    /// Fill `jac` (row-major, `n_residuals() × n_params()`) with
    /// `∂r_i/∂p_j` at `params`, returning the number of residual
    /// evaluations consumed.
    ///
    /// `base` is `r(params)`, already evaluated by the caller; `lo`/`hi`
    /// bound the feasible box and **must** be respected by any point the
    /// implementation evaluates at. The default is a bound-aware forward
    /// difference via [`bounded_fd_step`] — one `eval` per parameter,
    /// i.e. one full ODE solve per parameter when the residual wraps a
    /// simulation. Implementations with analytic sensitivities override
    /// this to fill the exact Jacobian in O(1) solves (and return the
    /// count of solves they spent, typically 1).
    fn jacobian(
        &self,
        params: &[f64],
        base: &[f64],
        lo: &[f64],
        hi: &[f64],
        fd_step: f64,
        jac: &mut [f64],
    ) -> Result<usize, String> {
        fd_residual_jacobian(self, params, base, lo, hi, fd_step, jac)
    }
}

/// The bound-aware forward-difference residual Jacobian — the body of the
/// default [`Residual::jacobian`], exposed so implementations that
/// override it with an analytic path can still fall back to finite
/// differences explicitly (e.g. when no sensitivities are available for
/// the current configuration).
pub fn fd_residual_jacobian<R: Residual + ?Sized>(
    residual: &R,
    params: &[f64],
    base: &[f64],
    lo: &[f64],
    hi: &[f64],
    fd_step: f64,
    jac: &mut [f64],
) -> Result<usize, String> {
    let n = residual.n_params();
    let m = residual.n_residuals();
    debug_assert_eq!(jac.len(), m * n);
    let mut p = params.to_vec();
    let mut r_pert = vec![0.0; m];
    let mut evals = 0usize;
    for j in 0..n {
        // A degenerate interval (lo == hi) pins the parameter: it can
        // never move, so its Jacobian column is irrelevant — zero it
        // rather than failing the whole Jacobian.
        let Ok(h) = bounded_fd_step(p[j], lo[j], hi[j], fd_step) else {
            for i in 0..m {
                jac[i * n + j] = 0.0;
            }
            continue;
        };
        let saved = p[j];
        p[j] += h;
        let h_actual = p[j] - saved;
        residual.eval(&p, &mut r_pert)?;
        evals += 1;
        for i in 0..m {
            jac[i * n + j] = (r_pert[i] - base[i]) / h_actual;
        }
        p[j] = saved;
    }
    Ok(evals)
}

/// Wrap a closure as a [`Residual`].
pub struct FnResidual<F: Fn(&[f64], &mut [f64]) -> Result<(), String>> {
    n_params: usize,
    n_residuals: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64]) -> Result<(), String>> FnResidual<F> {
    /// Create from the two dimensions and a closure.
    pub fn new(n_params: usize, n_residuals: usize, f: F) -> FnResidual<F> {
        FnResidual {
            n_params,
            n_residuals,
            f,
        }
    }
}

impl<F: Fn(&[f64], &mut [f64]) -> Result<(), String>> Residual for FnResidual<F> {
    fn n_params(&self) -> usize {
        self.n_params
    }

    fn n_residuals(&self) -> usize {
        self.n_residuals
    }

    fn eval(&self, params: &[f64], out: &mut [f64]) -> Result<(), String> {
        (self.f)(params, out)
    }
}

impl<T: Residual + ?Sized> Residual for &T {
    fn n_params(&self) -> usize {
        (**self).n_params()
    }

    fn n_residuals(&self) -> usize {
        (**self).n_residuals()
    }

    fn eval(&self, params: &[f64], out: &mut [f64]) -> Result<(), String> {
        (**self).eval(params, out)
    }

    fn jacobian(
        &self,
        params: &[f64],
        base: &[f64],
        lo: &[f64],
        hi: &[f64],
        fd_step: f64,
        jac: &mut [f64],
    ) -> Result<usize, String> {
        (**self).jacobian(params, base, lo, hi, fd_step, jac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_wrapper() {
        let r = FnResidual::new(2, 3, |p: &[f64], out: &mut [f64]| {
            out[0] = p[0] - 1.0;
            out[1] = p[1] - 2.0;
            out[2] = p[0] * p[1] - 2.0;
            Ok(())
        });
        assert_eq!(r.n_params(), 2);
        assert_eq!(r.n_residuals(), 3);
        let mut out = vec![0.0; 3];
        r.eval(&[1.0, 2.0], &mut out).unwrap();
        assert_eq!(out, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn failure_propagates() {
        let r = FnResidual::new(1, 1, |_p: &[f64], _out: &mut [f64]| {
            Err("solver blew up".to_string())
        });
        let mut out = vec![0.0];
        assert!(r.eval(&[1.0], &mut out).is_err());
    }

    #[test]
    fn bounded_step_respects_both_bounds() {
        let inf = f64::INFINITY;
        // Unconstrained: forward step.
        assert_eq!(bounded_fd_step(2.0, -inf, inf, 1e-3).unwrap(), 2e-3);
        // Pinned at the upper bound: flips backward.
        assert_eq!(bounded_fd_step(2.0, 0.0, 2.0, 1e-3).unwrap(), -2e-3);
        // Interval narrower than the step on both sides: clamps to the
        // wider side instead of stepping below `lo` (the old bug).
        let h = bounded_fd_step(2.0, 2.0 - 1e-4, 2.0 + 3e-4, 1e-3).unwrap();
        assert!((h - 3e-4).abs() < 1e-12, "h = {h}");
        let h = bounded_fd_step(2.0, 2.0 - 3e-4, 2.0 + 1e-4, 1e-3).unwrap();
        assert!((h + 3e-4).abs() < 1e-12, "h = {h}");
        // Degenerate interval: no step exists.
        assert!(bounded_fd_step(1.0, 1.0, 1.0, 1e-3).is_err());
        // Step at zero uses the absolute scale.
        assert_eq!(bounded_fd_step(0.0, -1.0, 1.0, 1e-3).unwrap(), 1e-3);
    }

    #[test]
    fn default_jacobian_matches_hand_derivatives() {
        let r = FnResidual::new(2, 3, |p: &[f64], out: &mut [f64]| {
            out[0] = p[0] * p[0];
            out[1] = p[0] * p[1];
            out[2] = 3.0 * p[1];
            Ok(())
        });
        let p = [2.0, 5.0];
        let mut base = vec![0.0; 3];
        r.eval(&p, &mut base).unwrap();
        let mut jac = vec![0.0; 6];
        let inf = f64::INFINITY;
        let evals = r
            .jacobian(&p, &base, &[-inf, -inf], &[inf, inf], 1e-7, &mut jac)
            .unwrap();
        assert_eq!(evals, 2);
        let expect = [4.0, 0.0, 5.0, 2.0, 0.0, 3.0];
        for (got, want) in jac.iter().zip(expect) {
            assert!((got - want).abs() < 1e-4, "{jac:?}");
        }
    }

    #[test]
    fn default_jacobian_never_leaves_bounds() {
        // Residual errors outside [lo, hi]; the default FD must stay in.
        let lo = [1.999];
        let hi = [2.0005];
        let (l, h) = (lo[0], hi[0]);
        let r = FnResidual::new(1, 1, move |p: &[f64], out: &mut [f64]| {
            if p[0] < l || p[0] > h {
                return Err(format!("evaluated outside bounds: {}", p[0]));
            }
            out[0] = p[0] - 2.0;
            Ok(())
        });
        let p = [2.0];
        let mut base = vec![0.0];
        r.eval(&p, &mut base).unwrap();
        let mut jac = vec![0.0];
        r.jacobian(&p, &base, &lo, &hi, 1e-3, &mut jac).unwrap();
        assert!((jac[0] - 1.0).abs() < 1e-6, "{jac:?}");
    }
}
