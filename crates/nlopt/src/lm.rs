//! Modified Levenberg–Marquardt with simple bounds (active set by
//! gradient projection), mirroring the IMSL routine's role in Fig. 8.

use rms_solver::{Lu, Matrix};

use crate::residual::Residual;

/// Optimizer configuration.
#[derive(Debug, Clone, Copy)]
pub struct LmOptions {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop when the scaled gradient infinity-norm falls below this.
    pub gtol: f64,
    /// Stop when the relative cost reduction falls below this.
    pub ftol: f64,
    /// Stop when the step infinity-norm falls below this.
    pub xtol: f64,
    /// Initial damping parameter λ.
    pub lambda_init: f64,
    /// Relative finite-difference step for the Jacobian. The default
    /// `sqrt(machine epsilon)` suits analytically smooth residuals; when
    /// the residual comes from an adaptive ODE solver its noise floor is
    /// near the solver tolerance, and the step must sit well above it
    /// (`1e-3`–`1e-4` is typical, cf. ODRPACK / MINPACK guidance).
    pub fd_step: f64,
}

impl Default for LmOptions {
    fn default() -> LmOptions {
        LmOptions {
            max_iters: 100,
            gtol: 1e-10,
            ftol: 1e-12,
            xtol: 1e-12,
            lambda_init: 1e-3,
            fd_step: f64::EPSILON.sqrt(),
        }
    }
}

/// Why the optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Gradient tolerance reached (first-order optimality, modulo bounds).
    GradientTolerance,
    /// Cost stopped improving.
    CostTolerance,
    /// Step became negligible.
    StepTolerance,
    /// Iteration budget exhausted.
    MaxIterations,
}

/// Optimizer failures.
#[derive(Debug, Clone, PartialEq)]
pub enum NloptError {
    /// Mismatched array lengths or empty bounds.
    BadInput(String),
    /// The residual failed at the *initial* point (nothing to recover).
    InitialEvalFailed(String),
    /// The damped normal equations stayed singular even with large λ.
    Singular,
}

impl std::fmt::Display for NloptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NloptError::BadInput(msg) => write!(f, "bad input: {msg}"),
            NloptError::InitialEvalFailed(msg) => {
                write!(f, "residual evaluation failed at the initial point: {msg}")
            }
            NloptError::Singular => write!(f, "damped normal equations singular"),
        }
    }
}

impl std::error::Error for NloptError {}

/// Optimization outcome.
#[derive(Debug, Clone)]
pub struct LmResult {
    /// Optimized parameters (within bounds).
    pub params: Vec<f64>,
    /// Final cost `½‖r‖²`.
    pub cost: f64,
    /// Final residual vector.
    pub residuals: Vec<f64>,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Residual evaluations.
    pub fevals: usize,
    /// Jacobian evaluations.
    pub jevals: usize,
    /// Why iteration stopped.
    pub stop: StopReason,
}

/// Minimize `½‖r(p)‖²` subject to `lo ≤ p ≤ hi`.
pub fn optimize<R: Residual>(
    residual: &R,
    p0: &[f64],
    lo: &[f64],
    hi: &[f64],
    options: LmOptions,
) -> Result<LmResult, NloptError> {
    let n = residual.n_params();
    let m = residual.n_residuals();
    if p0.len() != n || lo.len() != n || hi.len() != n {
        return Err(NloptError::BadInput(format!(
            "expected {n} parameters, got p0={}, lo={}, hi={}",
            p0.len(),
            lo.len(),
            hi.len()
        )));
    }
    if lo.iter().zip(hi).any(|(l, h)| l > h) {
        return Err(NloptError::BadInput("empty bound interval".to_string()));
    }

    let clamp = |p: &mut [f64]| {
        for ((v, l), h) in p.iter_mut().zip(lo).zip(hi) {
            *v = v.clamp(*l, *h);
        }
    };

    let mut p = p0.to_vec();
    clamp(&mut p);

    let mut r = vec![0.0; m];
    let mut fevals = 0usize;
    let mut jevals = 0usize;
    residual
        .eval(&p, &mut r)
        .map_err(NloptError::InitialEvalFailed)?;
    fevals += 1;
    let mut cost = 0.5 * r.iter().map(|v| v * v).sum::<f64>();

    let mut lambda = options.lambda_init;
    let mut stop = StopReason::MaxIterations;
    let mut iterations = 0usize;

    let mut jac = Matrix::zeros(m, n);

    'outer: for iter in 0..options.max_iters {
        iterations = iter + 1;

        // Residual Jacobian: analytic when the residual provides one
        // (O(1) solves), else the bound-aware FD default (one eval per
        // parameter, never stepping outside [lo, hi]).
        match residual.jacobian(&p, &r, lo, hi, options.fd_step, jac.data_mut()) {
            Ok(evals) => fevals += evals,
            Err(_) => {
                // Can't linearize here; treat as a failed step region.
                lambda *= 10.0;
                if lambda > 1e12 {
                    stop = StopReason::StepTolerance;
                    break;
                }
                continue;
            }
        }
        jevals += 1;

        // g = Jᵀ r ; H = JᵀJ (normal equations).
        let mut g = vec![0.0; n];
        for j in 0..n {
            for i in 0..m {
                g[j] += jac[(i, j)] * r[i];
            }
        }
        // Active set on the bounds: a variable pinned at a bound with the
        // gradient pushing further outside is frozen this iteration.
        let active: Vec<bool> = (0..n)
            .map(|j| (p[j] == lo[j] && g[j] > 0.0) || (p[j] == hi[j] && g[j] < 0.0))
            .collect();

        let g_norm = g
            .iter()
            .zip(&active)
            .filter(|(_, &a)| !a)
            .map(|(v, _)| v.abs())
            .fold(0.0, f64::max);
        if g_norm < options.gtol {
            stop = StopReason::GradientTolerance;
            break;
        }

        let mut h_mat = Matrix::zeros(n, n);
        for a in 0..n {
            for b in a..n {
                let mut sum = 0.0;
                for i in 0..m {
                    sum += jac[(i, a)] * jac[(i, b)];
                }
                h_mat[(a, b)] = sum;
                h_mat[(b, a)] = sum;
            }
        }

        // Inner loop: adjust λ until a step reduces the cost.
        loop {
            // Damped system with frozen actives.
            let mut damped = h_mat.clone();
            let mut rhs = vec![0.0; n];
            for j in 0..n {
                if active[j] {
                    for k2 in 0..n {
                        damped[(j, k2)] = 0.0;
                        damped[(k2, j)] = 0.0;
                    }
                    damped[(j, j)] = 1.0;
                    rhs[j] = 0.0;
                } else {
                    let diag = damped[(j, j)];
                    damped[(j, j)] = diag + lambda * diag.max(1e-12);
                    rhs[j] = -g[j];
                }
            }
            let Ok(lu) = Lu::factor(&damped) else {
                lambda *= 10.0;
                if lambda > 1e14 {
                    return Err(NloptError::Singular);
                }
                continue;
            };
            let Ok(delta) = lu.solve(&rhs) else {
                // Same escape as the factor-failure branch above: without
                // the cap, a NaN-producing residual spins this loop
                // forever.
                lambda *= 10.0;
                if lambda > 1e14 {
                    return Err(NloptError::Singular);
                }
                continue;
            };

            let mut p_new = p.clone();
            for j in 0..n {
                p_new[j] += delta[j];
            }
            clamp(&mut p_new);
            let step_norm = p_new
                .iter()
                .zip(&p)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            if step_norm < options.xtol {
                stop = StopReason::StepTolerance;
                break 'outer;
            }

            let mut r_new = vec![0.0; m];
            let ok = residual.eval(&p_new, &mut r_new).is_ok();
            if ok {
                fevals += 1;
            }
            let cost_new = if ok {
                0.5 * r_new.iter().map(|v| v * v).sum::<f64>()
            } else {
                f64::INFINITY
            };
            if cost_new < cost {
                let improvement = (cost - cost_new) / cost.max(1e-300);
                p = p_new;
                r = r_new;
                cost = cost_new;
                lambda = (lambda / 3.0).max(1e-12);
                if improvement < options.ftol {
                    stop = StopReason::CostTolerance;
                    break 'outer;
                }
                break;
            }
            lambda *= 4.0;
            if lambda > 1e14 {
                stop = StopReason::StepTolerance;
                break 'outer;
            }
        }
    }

    Ok(LmResult {
        params: p,
        cost,
        residuals: r,
        iterations,
        fevals,
        jevals,
        stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residual::FnResidual;

    const INF: f64 = f64::INFINITY;

    #[test]
    fn linear_least_squares_exact() {
        // r = A p - b with tall A: unique minimizer.
        let r = FnResidual::new(2, 3, |p: &[f64], out: &mut [f64]| {
            out[0] = p[0] + p[1] - 3.0;
            out[1] = p[0] - p[1] - 1.0;
            out[2] = 2.0 * p[0] + p[1] - 5.0;
            Ok(())
        });
        let result = optimize(
            &r,
            &[0.0, 0.0],
            &[-INF, -INF],
            &[INF, INF],
            LmOptions::default(),
        )
        .unwrap();
        // Exact solution p = (2, 1), residual 0.
        assert!((result.params[0] - 2.0).abs() < 1e-6, "{:?}", result.params);
        assert!((result.params[1] - 1.0).abs() < 1e-6);
        assert!(result.cost < 1e-12);
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        // Data from y = exp(-k t) with k = 1.7; fit k.
        let ts: Vec<f64> = (0..20).map(|i| i as f64 * 0.2).collect();
        let data: Vec<f64> = ts.iter().map(|t| (-1.7 * t).exp()).collect();
        let ts2 = ts.clone();
        let r = FnResidual::new(1, 20, move |p: &[f64], out: &mut [f64]| {
            for (i, t) in ts2.iter().enumerate() {
                out[i] = (-p[0] * t).exp() - data[i];
            }
            Ok(())
        });
        let result = optimize(&r, &[0.5], &[0.0], &[10.0], LmOptions::default()).unwrap();
        assert!((result.params[0] - 1.7).abs() < 1e-6, "{:?}", result.params);
    }

    #[test]
    fn bounds_pin_solution() {
        // Minimize (p - 5)^2 subject to p <= 2: optimum at the bound.
        let r = FnResidual::new(1, 1, |p: &[f64], out: &mut [f64]| {
            out[0] = p[0] - 5.0;
            Ok(())
        });
        let result = optimize(&r, &[0.0], &[0.0], &[2.0], LmOptions::default()).unwrap();
        assert!((result.params[0] - 2.0).abs() < 1e-9, "{:?}", result.params);
    }

    #[test]
    fn rosenbrock_valley() {
        // Classic: r = (1-p0, 10(p1 - p0^2)).
        let r = FnResidual::new(2, 2, |p: &[f64], out: &mut [f64]| {
            out[0] = 1.0 - p[0];
            out[1] = 10.0 * (p[1] - p[0] * p[0]);
            Ok(())
        });
        let options = LmOptions {
            max_iters: 500,
            ..LmOptions::default()
        };
        let result = optimize(&r, &[-1.2, 1.0], &[-INF, -INF], &[INF, INF], options).unwrap();
        assert!((result.params[0] - 1.0).abs() < 1e-6, "{:?}", result.params);
        assert!((result.params[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_multi_parameter_fit() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(9);
        // y = a exp(-b t) + c, a=2, b=0.8, c=0.5 with small noise.
        let ts: Vec<f64> = (0..60).map(|i| i as f64 * 0.1).collect();
        let data: Vec<f64> = ts
            .iter()
            .map(|t| 2.0 * (-0.8 * t).exp() + 0.5 + rng.gen_range(-1e-4..1e-4))
            .collect();
        let ts2 = ts.clone();
        let r = FnResidual::new(3, 60, move |p: &[f64], out: &mut [f64]| {
            for (i, t) in ts2.iter().enumerate() {
                out[i] = p[0] * (-p[1] * t).exp() + p[2] - data[i];
            }
            Ok(())
        });
        let result = optimize(
            &r,
            &[1.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[10.0, 10.0, 10.0],
            LmOptions::default(),
        )
        .unwrap();
        assert!((result.params[0] - 2.0).abs() < 1e-2, "{:?}", result.params);
        assert!((result.params[1] - 0.8).abs() < 1e-2);
        assert!((result.params[2] - 0.5).abs() < 1e-2);
    }

    #[test]
    fn eval_failure_at_start_is_error() {
        let r = FnResidual::new(1, 1, |_p: &[f64], _out: &mut [f64]| Err("boom".to_string()));
        assert!(matches!(
            optimize(&r, &[1.0], &[0.0], &[2.0], LmOptions::default()),
            Err(NloptError::InitialEvalFailed(_))
        ));
    }

    #[test]
    fn partial_eval_failures_recoverable() {
        // Residual fails for p > 3 (like an ODE solver diverging); the
        // optimizer must still find the minimum at p = 2.
        let r = FnResidual::new(1, 1, |p: &[f64], out: &mut [f64]| {
            if p[0] > 3.0 {
                return Err("diverged".to_string());
            }
            out[0] = p[0] - 2.0;
            Ok(())
        });
        let result = optimize(&r, &[1.0], &[0.0], &[10.0], LmOptions::default()).unwrap();
        assert!((result.params[0] - 2.0).abs() < 1e-6, "{:?}", result.params);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let r = FnResidual::new(2, 2, |_p: &[f64], out: &mut [f64]| {
            out[0] = 0.0;
            out[1] = 0.0;
            Ok(())
        });
        assert!(matches!(
            optimize(&r, &[1.0], &[0.0, 0.0], &[1.0, 1.0], LmOptions::default()),
            Err(NloptError::BadInput(_))
        ));
        assert!(matches!(
            optimize(
                &r,
                &[1.0, 1.0],
                &[2.0, 0.0],
                &[1.0, 1.0],
                LmOptions::default()
            ),
            Err(NloptError::BadInput(_))
        ));
    }

    #[test]
    fn tight_bounds_fd_stays_feasible() {
        // Regression for the bound-aware FD step: with a bound interval
        // narrower than the step, the old logic flipped `h` negative at
        // the upper bound without checking `lo` and evaluated below it —
        // where this residual (like an ODE residual at a physically
        // invalid rate constant) fails. The fixed step clamps into the
        // interval, so the fit must converge to the interior optimum.
        let lo = [1.9995];
        let hi = [2.0005];
        let (l, h) = (lo[0], hi[0]);
        let r = FnResidual::new(1, 2, move |p: &[f64], out: &mut [f64]| {
            if p[0] < l || p[0] > h {
                return Err(format!("diverged outside [{l}, {h}]: {}", p[0]));
            }
            out[0] = p[0] - 2.0;
            out[1] = 2.0 * (p[0] - 2.0);
            Ok(())
        });
        // Start close to the upper bound so the forward step doesn't fit
        // and the naive backward flip lands below `lo`.
        let options = LmOptions {
            fd_step: 1e-3,
            ..LmOptions::default()
        };
        let result = optimize(&r, &[2.0003], &lo, &hi, options).unwrap();
        assert!(
            (result.params[0] - 2.0).abs() < 1e-7,
            "{:?} ({:?})",
            result.params,
            result.stop
        );
        // And the old logic indeed fails here: stepping 2.0003 - 2e-3
        // lands at 1.9983 < lo.
        assert!(2.0003 - options.fd_step * 2.0003 < lo[0]);
    }

    #[test]
    fn nan_residual_terminates() {
        // A residual that returns NaNs (rather than Err) must not spin
        // the inner λ loop forever — every λ-growth branch is capped, so
        // the optimizer returns (with whatever stop reason the NaNs
        // trip) instead of hanging.
        let r = FnResidual::new(1, 2, |p: &[f64], out: &mut [f64]| {
            out[0] = f64::NAN * p[0];
            out[1] = f64::NAN;
            Ok(())
        });
        let outcome = optimize(&r, &[1.0], &[0.0], &[2.0], LmOptions::default());
        match outcome {
            Ok(result) => assert!(result.iterations <= LmOptions::default().max_iters),
            Err(e) => assert_eq!(e, NloptError::Singular),
        }

        // NaNs appearing mid-fit (after a clean start) exercise the
        // accept-test path: cost_new is never < NaN cost, so λ must grow
        // to its cap rather than loop.
        let r = FnResidual::new(1, 2, |p: &[f64], out: &mut [f64]| {
            if p[0] > 1.5 {
                out[0] = f64::NAN;
                out[1] = f64::NAN;
            } else {
                out[0] = p[0] - 4.0;
                out[1] = 0.5 * (p[0] - 4.0);
            }
            Ok(())
        });
        let outcome = optimize(&r, &[1.0], &[0.0], &[10.0], LmOptions::default());
        assert!(outcome.is_ok() || matches!(outcome, Err(NloptError::Singular)));
    }

    #[test]
    fn analytic_jacobian_override_is_used() {
        // A residual with an exact Jacobian override: optimize must call
        // it (0 extra residual evals per iteration) and still converge.
        struct WithJac;
        impl Residual for WithJac {
            fn n_params(&self) -> usize {
                1
            }
            fn n_residuals(&self) -> usize {
                2
            }
            fn eval(&self, p: &[f64], out: &mut [f64]) -> Result<(), String> {
                out[0] = p[0] - 3.0;
                out[1] = 0.5 * (p[0] - 3.0);
                Ok(())
            }
            fn jacobian(
                &self,
                _params: &[f64],
                _base: &[f64],
                _lo: &[f64],
                _hi: &[f64],
                _fd_step: f64,
                jac: &mut [f64],
            ) -> Result<usize, String> {
                jac[0] = 1.0;
                jac[1] = 0.5;
                Ok(0)
            }
        }
        let result = optimize(&WithJac, &[0.0], &[-10.0], &[10.0], LmOptions::default()).unwrap();
        assert!((result.params[0] - 3.0).abs() < 1e-8, "{:?}", result.params);
        // fevals counts only the accept-test evaluations: with an O(1)
        // Jacobian there is no per-parameter FD sweep.
        assert!(
            result.fevals <= result.iterations + 2,
            "fevals {} iterations {}",
            result.fevals,
            result.iterations
        );
    }

    #[test]
    fn start_outside_bounds_is_clamped() {
        let r = FnResidual::new(1, 1, |p: &[f64], out: &mut [f64]| {
            out[0] = p[0] - 1.0;
            Ok(())
        });
        let result = optimize(&r, &[100.0], &[0.0], &[5.0], LmOptions::default()).unwrap();
        assert!((result.params[0] - 1.0).abs() < 1e-8);
    }
}
