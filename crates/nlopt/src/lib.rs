//! # rms-nlopt — bounded nonlinear least squares
//!
//! Replacement for IMSL's `imsl_f_bounded_least_squares` (paper §4.2):
//! "a modified Levenberg–Marquardt method and an active set strategy to
//! solve the non-linear least squares problems subject to simple bounds
//! on the variables." The kinetic rate constants are the parameters, the
//! chemist's bounds constrain them, and the residual vector is the
//! difference between simulated and experimental property values.

#![warn(missing_docs)]

pub mod lm;
pub mod residual;
pub mod stats;

pub use lm::{optimize, LmOptions, LmResult, NloptError, StopReason};
pub use residual::{bounded_fd_step, fd_residual_jacobian, FnResidual, Residual};
pub use stats::FitStatistics;
