//! RHS-evaluation throughput: the legacy tape interpreter against the
//! pre-decoded execution engine (scalar and SIMD-batched), at the
//! (scaled) Table 1 case sizes. Prints a comparison table and writes a
//! machine-readable `BENCH_throughput.json`.
//!
//! The right-hand side is the hot loop of everything downstream — every
//! solver step, Newton iteration and finite-difference Jacobian column
//! is RHS evaluations — so evals/sec here is the lever on end-to-end
//! estimation time.
//!
//! Usage:
//!   throughput [--scale K] [--cases 1,2,3] [--iters N] [--out FILE] [--smoke]
//!
//! `--smoke` shrinks everything for CI: the two smallest cases at a deep
//! scale with a few iterations — enough to validate the measurement and
//! the JSON artifact, not to produce stable timings.

use std::fmt::Write as _;
use std::time::Instant;

use rms_bench::{compile_case, fmt_secs, parse_or_exit, run_bench, write_artifact};
use rms_core::{ExecFrame, ExecTape, OptLevel, LANES};
use rms_workload::{scaled_case, TABLE1};

const USAGE: &str = "\
throughput — RHS evals/sec: interpreter vs execution engine vs batched

USAGE:
  throughput [--scale K] [--cases 1,2,3] [--iters N] [--out FILE] [--smoke] [--force]

  --scale K     divide the Table 1 equation counts by K (default 25)
  --cases LIST  comma-separated Table 1 case ids (default 1,2,3,4,5)
  --iters N     RHS evaluations per engine measurement (default 400)
  --out FILE    JSON artifact path (default BENCH_throughput.json)
  --smoke       CI preset: --scale 500 --cases 1,2 --iters 16
  --force       let a --smoke run overwrite a full-run JSON artifact
";

struct CaseResult {
    case: usize,
    equations: usize,
    tape_instrs: usize,
    exec_instrs: usize,
    interp_secs: f64,
    exec_secs: f64,
    batched_secs: f64,
}

struct Config {
    smoke: bool,
    force: bool,
    scale: usize,
    iters: usize,
    cases: Vec<usize>,
    out_path: String,
}

fn main() {
    let args = parse_or_exit(
        USAGE,
        &["--scale", "--cases", "--iters", "--out"],
        &["--smoke", "--force"],
    );
    run_bench(USAGE, args, parse, run);
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let smoke = args.switch("--smoke");
    let default_cases: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let config = Config {
        smoke,
        force: args.switch("--force"),
        scale: args.num("--scale", if smoke { 500 } else { 25 })?,
        iters: args.num("--iters", if smoke { 16 } else { 400 })?,
        cases: args.num_list("--cases", default_cases)?,
        out_path: args
            .value("--out")
            .unwrap_or("BENCH_throughput.json")
            .to_string(),
    };
    if config.cases.is_empty() || config.cases.iter().any(|&c| c == 0 || c > TABLE1.len()) {
        return Err(format!("--cases takes ids in 1..={}", TABLE1.len()));
    }
    if config.iters == 0 {
        return Err("--iters must be at least 1".to_string());
    }
    Ok(config)
}

/// Seconds per scalar RHS evaluation on the legacy interpreter.
fn time_interp(
    tape: &rms_core::Tape,
    rates: &[f64],
    y: &mut [f64],
    ydot: &mut [f64],
    iters: usize,
) -> f64 {
    let mut scratch = Vec::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        tape.eval_with_scratch(rates, y, ydot, &mut scratch);
        // Feed a little of the output back so the work is not dead code.
        y[0] = 0.1 + ydot[0].abs().min(1.0) * 1e-9;
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Seconds per scalar RHS evaluation on the execution engine.
fn time_exec(exec: &ExecTape, rates: &[f64], y: &mut [f64], ydot: &mut [f64], iters: usize) -> f64 {
    let mut frame = ExecFrame::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        exec.eval(rates, y, ydot, &mut frame);
        y[0] = 0.1 + ydot[0].abs().min(1.0) * 1e-9;
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Seconds per state on the batched engine, evaluating `4 * LANES`
/// states per call (the colored-FD sweep shape).
fn time_batched(exec: &ExecTape, rates: &[f64], y: &[f64], iters: usize) -> f64 {
    let n = exec.n_species();
    let n_states = 4 * LANES;
    let mut ys = Vec::with_capacity(n_states * n);
    for s in 0..n_states {
        ys.extend(y.iter().map(|v| v + 1e-6 * s as f64));
    }
    let mut ydots = vec![0.0; n_states * exec.n_outputs()];
    let mut frame = ExecFrame::new();
    let rounds = (iters / n_states).max(1);
    let t0 = Instant::now();
    for _ in 0..rounds {
        exec.eval_batch(rates, &ys, &mut ydots, &mut frame);
        ys[0] = 0.1 + ydots[0].abs().min(1.0) * 1e-9;
    }
    t0.elapsed().as_secs_f64() / (rounds * n_states) as f64
}

fn run(config: Config) -> Result<(), String> {
    let Config {
        smoke,
        force,
        scale,
        iters,
        cases,
        out_path,
    } = config;
    let out_path = out_path.as_str();

    println!("RHS throughput benchmark (scale 1/{scale}, {iters} evals per engine)");
    println!(
        "{:>5} {:>6} {:>8} {:>8} | {:>10} {:>10} {:>10} | {:>9} {:>9}",
        "case", "eqs", "instrs", "fused", "interp", "exec", "batched", "exec/x", "batch/x"
    );

    let mut results = Vec::new();
    for &case in &cases {
        let model = scaled_case(case, scale);
        // Compile through the session; the ExecDecode stage already
        // produced the decoded tape the engine measurements need.
        let suite = compile_case(&model, OptLevel::Full);
        let system = &suite.system;
        let tape = &suite.compiled.tape;
        let exec: ExecTape = suite
            .exec
            .clone()
            .unwrap_or_else(|| ExecTape::compile(tape));
        let n = system.len();
        let rates = &system.rate_values;
        let y0: Vec<f64> = (0..n).map(|i| 0.1 + (i % 7) as f64 * 0.1).collect();
        let mut ydot = vec![0.0; n];

        let mut y = y0.clone();
        let interp_secs = time_interp(tape, rates, &mut y, &mut ydot, iters);
        let mut y = y0.clone();
        let exec_secs = time_exec(&exec, rates, &mut y, &mut ydot, iters);
        let batched_secs = time_batched(&exec, rates, &y0, iters);

        println!(
            "{case:>5} {n:>6} {:>8} {:>8} | {:>10} {:>10} {:>10} | {:>8.2}x {:>8.2}x",
            tape.len(),
            exec.len(),
            fmt_secs(interp_secs),
            fmt_secs(exec_secs),
            fmt_secs(batched_secs),
            interp_secs / exec_secs,
            interp_secs / batched_secs
        );
        results.push(CaseResult {
            case,
            equations: n,
            tape_instrs: tape.len(),
            exec_instrs: exec.len(),
            interp_secs,
            exec_secs,
            batched_secs,
        });
    }

    let largest = results
        .iter()
        .max_by_key(|r| r.equations)
        .expect("at least one case");
    println!(
        "\nlargest case ({} equations): exec {:.2}x, batched {:.2}x the interpreter's throughput",
        largest.equations,
        largest.interp_secs / largest.exec_secs,
        largest.interp_secs / largest.batched_secs
    );

    let json = render_json(scale, iters, smoke, &results, largest);
    write_artifact(out_path, &json, smoke, force)?;
    println!("wrote {out_path}");
    Ok(())
}

/// Hand-rolled JSON (the workspace has no serde): flat and line-oriented
/// so `python3 -m json.tool` and jq both take it.
fn render_json(
    scale: usize,
    iters: usize,
    smoke: bool,
    results: &[CaseResult],
    largest: &CaseResult,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"throughput\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"lanes\": {LANES},");
    let _ = writeln!(out, "  \"cases\": [");
    for (k, r) in results.iter().enumerate() {
        let comma = if k + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"case\": {},", r.case);
        let _ = writeln!(out, "      \"equations\": {},", r.equations);
        let _ = writeln!(out, "      \"tape_instrs\": {},", r.tape_instrs);
        let _ = writeln!(out, "      \"exec_instrs\": {},", r.exec_instrs);
        let _ = writeln!(
            out,
            "      \"interp_evals_per_sec\": {:.1},",
            1.0 / r.interp_secs
        );
        let _ = writeln!(
            out,
            "      \"exec_evals_per_sec\": {:.1},",
            1.0 / r.exec_secs
        );
        let _ = writeln!(
            out,
            "      \"batched_evals_per_sec\": {:.1},",
            1.0 / r.batched_secs
        );
        let _ = writeln!(
            out,
            "      \"exec_speedup_vs_interp\": {:.3},",
            r.interp_secs / r.exec_secs
        );
        let _ = writeln!(
            out,
            "      \"batched_speedup_vs_interp\": {:.3}",
            r.interp_secs / r.batched_secs
        );
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"largest_case\": {},", largest.case);
    let _ = writeln!(out, "  \"largest_equations\": {},", largest.equations);
    let _ = writeln!(
        out,
        "  \"largest_exec_speedup_vs_interp\": {:.3},",
        largest.interp_secs / largest.exec_secs
    );
    let _ = writeln!(
        out,
        "  \"largest_batched_speedup_vs_interp\": {:.3}",
        largest.interp_secs / largest.batched_secs
    );
    let _ = writeln!(out, "}}");
    out
}
