//! Compile-pipeline benchmark: cold compiles against in-memory and
//! on-disk cache hits at the (scaled) Table 1 case sizes. Prints a
//! comparison table and writes a machine-readable `BENCH_compile.json`.
//!
//! This is the pipeline-driver claim: a process that re-requests a model
//! it has already compiled (estimator sweeps, repeated CLI invocations
//! against a warm `.rms-cache/`) pays content hashing, not
//! recompilation. The headline number is the largest case's cached
//! recompile speedup, which should be well beyond 10x.
//!
//! Usage:
//!   compile [--scale K] [--cases 1,2,3] [--reps N] [--out FILE] [--smoke] [--force]
//!
//! `--smoke` shrinks everything for CI: the two smallest cases at a deep
//! scale — enough to validate the measurement and the JSON artifact, not
//! to produce stable timings.

use std::fmt::Write as _;
use std::time::Instant;

use rms_bench::{fmt_secs, parse_or_exit, run_bench, write_artifact};
use rms_core::OptLevel;
use rms_suite::{cache, CacheMode, CacheStatus, CompilerSession, SessionOptions};
use rms_workload::{scaled_case, VulcanizationModel, TABLE1};

const USAGE: &str = "\
compile — pipeline compile times: cold vs memory-cached vs disk-cached

USAGE:
  compile [--scale K] [--cases 1,2,3] [--reps N] [--out FILE] [--smoke] [--force]

  --scale K     divide the Table 1 equation counts by K (default 25)
  --cases LIST  comma-separated Table 1 case ids (default 1,2,3,4,5)
  --reps N      repetitions per cached measurement, best-of (default 5)
  --out FILE    JSON artifact path (default BENCH_compile.json)
  --smoke       CI preset: --scale 500 --cases 1,2 --reps 3
  --force       let a --smoke run overwrite a full-run JSON artifact
";

struct CaseResult {
    case: usize,
    equations: usize,
    reactions: usize,
    cold_secs: f64,
    memory_secs: f64,
    disk_secs: f64,
}

struct Config {
    smoke: bool,
    force: bool,
    scale: usize,
    reps: usize,
    cases: Vec<usize>,
    out_path: String,
}

fn main() {
    let args = parse_or_exit(
        USAGE,
        &["--scale", "--cases", "--reps", "--out"],
        &["--smoke", "--force"],
    );
    run_bench(USAGE, args, parse, run);
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let smoke = args.switch("--smoke");
    let default_cases: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let config = Config {
        smoke,
        force: args.switch("--force"),
        scale: args.num("--scale", if smoke { 500 } else { 25 })?,
        reps: args.num("--reps", if smoke { 3 } else { 5 })?,
        cases: args.num_list("--cases", default_cases)?,
        out_path: args
            .value("--out")
            .unwrap_or("BENCH_compile.json")
            .to_string(),
    };
    if config.cases.is_empty() || config.cases.iter().any(|&c| c == 0 || c > TABLE1.len()) {
        return Err(format!("--cases takes ids in 1..={}", TABLE1.len()));
    }
    if config.reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    Ok(config)
}

/// One timed compile through the session, optionally asserting how the
/// cache satisfied it. The clock covers exactly the session call —
/// content fingerprinting included, workload cloning excluded.
fn timed_compile(
    model: &VulcanizationModel,
    options: SessionOptions,
    expect: Option<CacheStatus>,
) -> Result<f64, String> {
    let network = model.network.clone();
    let rates = model.rates.clone();
    let session = CompilerSession::with_options(options);
    let t0 = Instant::now();
    let compiled = session
        .compile_network("workload", network, rates)
        .map_err(|d| d.to_string())?;
    let secs = t0.elapsed().as_secs_f64();
    if let Some(expect) = expect {
        if compiled.status != expect {
            return Err(format!(
                "expected a {} compile, observed {}",
                expect.name(),
                compiled.status.name()
            ));
        }
    }
    Ok(secs)
}

fn run(config: Config) -> Result<(), String> {
    let Config {
        smoke,
        force,
        scale,
        reps,
        cases,
        out_path,
    } = config;
    let out_path = out_path.as_str();

    let cache_root = std::env::temp_dir().join(format!("rms-bench-compile-{}", std::process::id()));

    println!("Compile-pipeline benchmark (scale 1/{scale}, best of {reps} cached reps)");
    println!(
        "{:>5} {:>6} {:>6} | {:>10} {:>10} {:>10} | {:>9} {:>9}",
        "case", "eqs", "rxns", "cold", "memory", "disk", "mem/cold", "disk/cold"
    );

    let mut results = Vec::new();
    for &case in &cases {
        let model = scaled_case(case, scale);
        let equations = model.network.species_count();
        let reactions = model.network.reaction_count();

        // Cold baseline: cache bypassed, the full pipeline runs.
        let mut bypass = SessionOptions::new(OptLevel::Full);
        bypass.cache = CacheMode::Bypass;
        let cold_secs = timed_compile(&model, bypass, Some(CacheStatus::Cold))?;

        // Populate both cache layers, then measure in-memory hits. At
        // deep scales two cases can collapse to the same fingerprint, so
        // the populate's own status is not asserted (the shared cache
        // directory still holds the artifact either way).
        let mut cached = SessionOptions::new(OptLevel::Full);
        cached.cache_dir = Some(cache_root.clone());
        timed_compile(&model, cached.clone(), None)?;
        let mut memory_secs = f64::INFINITY;
        for _ in 0..reps {
            memory_secs = memory_secs.min(timed_compile(
                &model,
                cached.clone(),
                Some(CacheStatus::Memory),
            )?);
        }

        // Disk revivals: drop the in-memory layer before each rep so the
        // artifact really comes back through deserialization.
        let mut disk_secs = f64::INFINITY;
        for _ in 0..reps {
            cache::clear_memory();
            disk_secs = disk_secs.min(timed_compile(
                &model,
                cached.clone(),
                Some(CacheStatus::Disk),
            )?);
        }

        println!(
            "{case:>5} {equations:>6} {reactions:>6} | {:>10} {:>10} {:>10} | {:>8.0}x {:>8.1}x",
            fmt_secs(cold_secs),
            fmt_secs(memory_secs),
            fmt_secs(disk_secs),
            cold_secs / memory_secs,
            cold_secs / disk_secs
        );
        results.push(CaseResult {
            case,
            equations,
            reactions,
            cold_secs,
            memory_secs,
            disk_secs,
        });
    }
    let _ = std::fs::remove_dir_all(&cache_root);

    let largest = results
        .iter()
        .max_by_key(|r| r.equations)
        .expect("at least one case");
    let speedup = largest.cold_secs / largest.memory_secs;
    println!(
        "\nlargest case ({} equations): cached recompile {speedup:.0}x faster than cold",
        largest.equations
    );
    if speedup < 10.0 {
        println!("warning: cached speedup below the 10x claim (timing noise at tiny scales?)");
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"compile\",\"scale\":{scale},\"reps\":{reps},\"smoke\": {smoke},\"cases\":["
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"case\":{},\"equations\":{},\"reactions\":{},\"cold_seconds\":{:.9},\
             \"memory_seconds\":{:.9},\"disk_seconds\":{:.9},\"memory_speedup\":{:.3},\
             \"disk_speedup\":{:.3}}}",
            r.case,
            r.equations,
            r.reactions,
            r.cold_secs,
            r.memory_secs,
            r.disk_secs,
            r.cold_secs / r.memory_secs,
            r.cold_secs / r.disk_secs
        );
    }
    let _ = writeln!(
        json,
        "],\"largest\":{{\"case\":{},\"equations\":{},\"cold_seconds\":{:.9},\
         \"memory_seconds\":{:.9},\"memory_speedup\":{:.3}}}}}",
        largest.case, largest.equations, largest.cold_secs, largest.memory_secs, speedup
    );
    write_artifact(out_path, &json, smoke, force)?;
    println!("wrote {out_path}");
    Ok(())
}
