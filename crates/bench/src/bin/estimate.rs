//! Parameter-estimation Jacobian benchmark: analytic forward
//! sensitivities against the finite-difference residual Jacobian they
//! replace. Prints a comparison and writes a machine-readable
//! `BENCH_estimate.json`.
//!
//! Each Levenberg–Marquardt iteration needs the residual Jacobian
//! `∂(simulated − experimental)/∂p`. The FD path re-integrates the whole
//! ODE system once per free parameter (O(p) solves per iteration); the
//! analytic path integrates the forward sensitivity system
//! `ṡ_k = J·s_k + ∂f/∂p_k` alongside the state, reusing the BDF Newton
//! factorization of `I − hβJ` — one augmented solve per file per
//! iteration, O(1) in the parameter count.
//!
//! Usage:
//!   estimate [--files N] [--records N] [--workers N] [--iters N]
//!            [--out FILE] [--smoke] [--force]
//!
//! `--smoke` shrinks everything for CI: a tiny network and a short fit —
//! enough to validate the solve-count direction and the JSON artifact,
//! not to produce stable timings.

use std::fmt::Write as _;
use std::time::Instant;

use rms_bench::{compile_case_sens, fmt_secs, parse_or_exit, run_bench, write_artifact};
use rms_core::OptLevel;
use rms_nlopt::{LmOptions, LmResult};
use rms_parallel::{ParallelEstimator, ResidualJacobianMode};
use rms_workload::{
    generate_model, synthesize, ExpDataSpec, TapeSimulator, VulcanizationSpec, TRUE_RATES,
};

const USAGE: &str = "\
estimate — LM residual Jacobians: analytic forward sensitivities vs FD

USAGE:
  estimate [--files N] [--records N] [--workers N] [--iters N] [--out FILE] [--smoke] [--force]

  --files N    synthetic experiment files (default 4)
  --records N  records per file (default 40)
  --workers N  estimator ranks (default: available cores, at most 4)
  --iters N    LM iteration cap per fit (default 15)
  --out FILE   JSON artifact path (default BENCH_estimate.json)
  --smoke      CI preset: tiny network, --files 2 --records 10 --iters 6
  --force      let a --smoke run overwrite a full-run JSON artifact
";

struct Config {
    smoke: bool,
    force: bool,
    files: usize,
    records: usize,
    workers: usize,
    iters: usize,
    out_path: String,
}

struct FitResult {
    seconds: f64,
    result: LmResult,
}

fn main() {
    let args = parse_or_exit(
        USAGE,
        &["--files", "--records", "--workers", "--iters", "--out"],
        &["--smoke", "--force"],
    );
    run_bench(USAGE, args, parse, run);
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let smoke = args.switch("--smoke");
    let config = Config {
        smoke,
        force: args.switch("--force"),
        files: args.num("--files", if smoke { 2 } else { 4 })?,
        records: args.num("--records", if smoke { 10 } else { 40 })?,
        // Ranks are real threads: more of them than cores only adds
        // scheduling overhead to the timings, so follow the machine.
        workers: args.num("--workers", if smoke { 2 } else { default_workers() })?,
        // Capped so both fits stay in the productive phase: once a fit
        // converges, LM's terminal lambda-escalation rejections skew the
        // per-iteration average of whichever mode got there first.
        iters: args.num("--iters", if smoke { 6 } else { 15 })?,
        out_path: args
            .value("--out")
            .unwrap_or("BENCH_estimate.json")
            .to_string(),
    };
    if config.files == 0 || config.records == 0 || config.workers == 0 || config.iters == 0 {
        return Err("--files, --records, --workers and --iters must be at least 1".to_string());
    }
    Ok(config)
}

fn run(config: Config) -> Result<(), String> {
    let Config {
        smoke,
        force,
        files,
        records,
        workers,
        iters,
        out_path,
    } = config;
    let out_path = out_path.as_str();

    let spec = if smoke {
        VulcanizationSpec {
            sites: 3,
            max_chain: 3,
            neighbourhood: 1,
        }
    } else {
        // Large enough (146 equations) that the per-step factorization
        // and tape work dominate: the p extra triangular solves of the
        // augmented sweep then amortize and the analytic path shows its
        // asymptotic advantage. Small models understate it — the
        // augmented/plain sweep ratio is ~3x at 31 equations but ~1.4x
        // here.
        VulcanizationSpec {
            sites: 10,
            max_chain: 10,
            neighbourhood: 3,
        }
    };
    let model = generate_model(spec);
    let crosslinks = model.crosslink_species.clone();
    let (lo, hi) = model.rates.bounds_vectors();
    let suite = compile_case_sens(&model, OptLevel::Full);
    let n = suite.system.len();
    let mut observable = vec![0.0; n];
    for x in &crosslinks {
        observable[x.0 as usize] = 1.0;
    }
    let simulator = TapeSimulator::from_artifact(suite.artifact(), observable);
    assert!(
        simulator.has_sensitivities(),
        "sensitivity tapes must ride the artifact"
    );

    let data = synthesize(
        &simulator,
        &TRUE_RATES,
        ExpDataSpec {
            n_files: files,
            records,
            base_horizon: 1.2,
            horizon_skew: 0.2,
            noise: 0.0,
            seed: 42,
        },
    )?;
    let estimator = ParallelEstimator::new(&simulator, data, workers, true);
    let n_params = TRUE_RATES.len();

    // Deterministic all-parameters-free starting point inside the bounds.
    let start: Vec<f64> = TRUE_RATES
        .iter()
        .enumerate()
        .map(|(k, &p)| (p * if k % 2 == 0 { 1.3 } else { 0.75 }).clamp(lo[k], hi[k]))
        .collect();

    println!(
        "Estimation Jacobian benchmark: {n} equations, {n_params} parameters, \
         {files} files x {records} records, {workers} ranks"
    );

    // --- Jacobian kernel: one build at the starting point. -------------
    let t0 = Instant::now();
    let analytic_jac = estimator
        .objective_jacobian(&start)
        .map_err(|e| format!("analytic Jacobian: {e}"))?;
    let kernel_analytic_secs = t0.elapsed().as_secs_f64();

    let base = estimator
        .objective(&start)
        .map_err(|e| format!("objective: {e}"))?
        .error_vector;
    let m = base.len();
    let mut fd_jac = vec![0.0; m * n_params];
    let t0 = Instant::now();
    for j in 0..n_params {
        let h = 1e-3 * start[j].abs().max(1e-12);
        let mut p = start.clone();
        p[j] += h;
        let pert = estimator
            .objective(&p)
            .map_err(|e| format!("FD objective: {e}"))?
            .error_vector;
        for i in 0..m {
            fd_jac[i * n_params + j] = (pert[i] - base[i]) / h;
        }
    }
    let kernel_fd_secs = t0.elapsed().as_secs_f64();

    let jac_scale = fd_jac.iter().fold(1e-300f64, |s, v| s.max(v.abs()));
    let jac_rel_diff = analytic_jac
        .iter()
        .zip(&fd_jac)
        .fold(0.0f64, |s, (a, b)| s.max((a - b).abs()))
        / jac_scale;
    println!(
        "Jacobian build:  analytic {} (1 augmented sweep)  fd {} ({n_params} sweeps)  \
         speedup {:.1}x  rel-diff {jac_rel_diff:.1e}",
        fmt_secs(kernel_analytic_secs),
        fmt_secs(kernel_fd_secs),
        kernel_fd_secs / kernel_analytic_secs,
    );

    // --- Full fits: every parameter free, both Jacobian modes. ---------
    let options = LmOptions {
        max_iters: iters,
        fd_step: 1e-3,
        ..LmOptions::default()
    };
    let fit = |mode: ResidualJacobianMode,
               start: &[f64],
               lo: &[f64],
               hi: &[f64]|
     -> Result<FitResult, String> {
        let t0 = Instant::now();
        let result = estimator
            .estimate_with_jacobian(start, lo, hi, options, mode)
            .map_err(|e| format!("{mode} fit: {e}"))?;
        Ok(FitResult {
            seconds: t0.elapsed().as_secs_f64(),
            result,
        })
    };
    let analytic = fit(ResidualJacobianMode::Analytic, &start, &lo, &hi)?;
    let fd = fit(ResidualJacobianMode::Fd, &start, &lo, &hi)?;

    let per_iter = |f: &FitResult| f.seconds / f.result.iterations.max(1) as f64;
    for (label, f) in [("analytic", &analytic), ("fd", &fd)] {
        println!(
            "{label:>8} fit: {} total, {}/iter, {} iters, {} residual evals, \
             {} Jacobian builds, cost {:.3e} ({:?})",
            fmt_secs(f.seconds),
            fmt_secs(per_iter(f)),
            f.result.iterations,
            f.result.fevals,
            f.result.jevals,
            f.result.cost,
            f.result.stop,
        );
    }
    println!(
        "per-iteration speedup {:.1}x",
        per_iter(&fd) / per_iter(&analytic),
    );

    // --- Recovery agreement: a well-posed two-parameter fit. -----------
    // With every rate free the noiseless single-observable problem is
    // ill-posed (the paper's chemists pin most rates), so parameter-level
    // agreement between the modes is only meaningful on the identifiable
    // subproblem: perturb two influential rates and pin the rest.
    let mut rec_start = TRUE_RATES.to_vec();
    rec_start[1] *= 1.6;
    rec_start[8] *= 0.5;
    let mut rec_lo = TRUE_RATES.to_vec();
    let mut rec_hi = TRUE_RATES.to_vec();
    for k in [1usize, 8] {
        rec_lo[k] = lo[k];
        rec_hi[k] = hi[k];
    }
    let rec_analytic = fit(ResidualJacobianMode::Analytic, &rec_start, &rec_lo, &rec_hi)?;
    let rec_fd = fit(ResidualJacobianMode::Fd, &rec_start, &rec_lo, &rec_hi)?;
    let params_rel_diff = rec_analytic
        .result
        .params
        .iter()
        .zip(&rec_fd.result.params)
        .zip(TRUE_RATES.iter())
        .fold(0.0f64, |s, ((a, b), t)| s.max((a - b).abs() / t));
    let truth_rel_diff = rec_analytic
        .result
        .params
        .iter()
        .zip(TRUE_RATES.iter())
        .fold(0.0f64, |s, (a, t)| s.max((a - t).abs() / t));
    println!(
        "recovery (2 free params): analytic vs fd rel-diff {params_rel_diff:.1e}, \
         analytic vs truth rel-diff {truth_rel_diff:.1e}"
    );

    let json = render_json(
        smoke,
        n,
        n_params,
        files,
        records,
        workers,
        (kernel_analytic_secs, kernel_fd_secs, jac_rel_diff),
        &analytic,
        &fd,
        params_rel_diff,
        truth_rel_diff,
    );
    write_artifact(out_path, &json, smoke, force)?;
    println!("wrote {out_path}");
    Ok(())
}

/// Hand-rolled JSON (the workspace has no serde): flat and line-oriented
/// so `python3 -m json.tool` and jq both take it.
#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    equations: usize,
    n_params: usize,
    files: usize,
    records: usize,
    workers: usize,
    (kernel_analytic_secs, kernel_fd_secs, jac_rel_diff): (f64, f64, f64),
    analytic: &FitResult,
    fd: &FitResult,
    params_rel_diff: f64,
    truth_rel_diff: f64,
) -> String {
    let per_iter = |f: &FitResult| f.seconds / f.result.iterations.max(1) as f64;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"estimate\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"equations\": {equations},");
    let _ = writeln!(out, "  \"n_params\": {n_params},");
    let _ = writeln!(out, "  \"files\": {files},");
    let _ = writeln!(out, "  \"records\": {records},");
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"jacobian_kernel\": {{");
    let _ = writeln!(out, "    \"analytic_seconds\": {kernel_analytic_secs:.9},");
    let _ = writeln!(out, "    \"fd_seconds\": {kernel_fd_secs:.9},");
    let _ = writeln!(
        out,
        "    \"speedup\": {:.3},",
        kernel_fd_secs / kernel_analytic_secs
    );
    let _ = writeln!(out, "    \"analytic_ode_sweeps\": 1,");
    let _ = writeln!(out, "    \"fd_ode_sweeps\": {n_params},");
    let _ = writeln!(out, "    \"max_rel_diff\": {jac_rel_diff:.3e}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"fit\": {{");
    for (label, f, comma) in [("analytic", analytic, ","), ("fd", fd, ",")] {
        let _ = writeln!(out, "    \"{label}\": {{");
        let _ = writeln!(out, "      \"seconds\": {:.9},", f.seconds);
        let _ = writeln!(out, "      \"seconds_per_iteration\": {:.9},", per_iter(f));
        let _ = writeln!(out, "      \"iterations\": {},", f.result.iterations);
        let _ = writeln!(out, "      \"residual_evals\": {},", f.result.fevals);
        let _ = writeln!(out, "      \"jacobian_builds\": {},", f.result.jevals);
        let _ = writeln!(
            out,
            "      \"residual_evals_per_jacobian\": {:.3},",
            f.result.fevals as f64 / f.result.jevals.max(1) as f64
        );
        let _ = writeln!(out, "      \"cost\": {:.6e},", f.result.cost);
        let _ = writeln!(out, "      \"stop\": \"{:?}\"", f.result.stop);
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(
        out,
        "    \"per_iteration_speedup\": {:.3}",
        per_iter(fd) / per_iter(analytic)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"recovery\": {{");
    let _ = writeln!(out, "    \"free_params\": [1, 8],");
    let _ = writeln!(
        out,
        "    \"analytic_vs_fd_max_rel_diff\": {params_rel_diff:.3e},"
    );
    let _ = writeln!(
        out,
        "    \"analytic_vs_truth_max_rel_diff\": {truth_rel_diff:.3e}"
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}
