//! Jacobian-assembly benchmark: the compiler-emitted analytic sparse
//! tapes against colored and dense finite differences, at the (scaled)
//! Table 1 case sizes. Prints a comparison table and writes a
//! machine-readable `BENCH_jacobian.json`.
//!
//! Usage:
//!   jacobian [--scale K] [--cases 1,2,3] [--iters N] [--out FILE] [--smoke] [--force]
//!
//! `--smoke` shrinks everything for CI: the two smallest cases at a deep
//! scale with a couple of iterations — enough to validate the measurement
//! and the JSON artifact, not to produce stable timings.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

use rms_bench::{compile_case_deriv, fmt_secs, parse_or_exit, run_bench, write_artifact};
use rms_core::OptLevel;
use rms_solver::{fd_jacobian, fd_jacobian_colored, AnalyticJacobian, FnRhs, OdeRhs};
use rms_workload::{scaled_case, TapeJacobian, TABLE1};

const USAGE: &str = "\
jacobian — Jacobian assembly: analytic tapes vs colored vs dense FD

USAGE:
  jacobian [--scale K] [--cases 1,2,3] [--iters N] [--out FILE] [--smoke] [--force]

  --scale K     divide the Table 1 equation counts by K (default 25)
  --cases LIST  comma-separated Table 1 case ids (default 1,2,3,4,5)
  --iters N     timing repetitions for the sparse sources (default 20)
  --out FILE    JSON artifact path (default BENCH_jacobian.json)
  --smoke       CI preset: --scale 500 --cases 1,2 --iters 3
  --force       let a --smoke run overwrite a full-run JSON artifact
";

struct CaseResult {
    case: usize,
    equations: usize,
    nnz: usize,
    n_colors: usize,
    analytic_secs: f64,
    colored_secs: f64,
    dense_secs: f64,
    max_rel_err: f64,
}

fn time_reps(mut f: impl FnMut(), reps: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

struct Config {
    smoke: bool,
    force: bool,
    scale: usize,
    iters: usize,
    cases: Vec<usize>,
    out_path: String,
}

fn main() {
    let args = parse_or_exit(
        USAGE,
        &["--scale", "--cases", "--iters", "--out"],
        &["--smoke", "--force"],
    );
    run_bench(USAGE, args, parse, run);
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let smoke = args.switch("--smoke");
    let default_cases: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let config = Config {
        smoke,
        force: args.switch("--force"),
        scale: args.num("--scale", if smoke { 500 } else { 25 })?,
        iters: args.num("--iters", if smoke { 3 } else { 20 })?,
        cases: args.num_list("--cases", default_cases)?,
        out_path: args
            .value("--out")
            .unwrap_or("BENCH_jacobian.json")
            .to_string(),
    };
    if config.cases.is_empty() || config.cases.iter().any(|&c| c == 0 || c > TABLE1.len()) {
        return Err(format!("--cases takes ids in 1..={}", TABLE1.len()));
    }
    if config.iters == 0 {
        return Err("--iters must be at least 1".to_string());
    }
    Ok(config)
}

fn run(config: Config) -> Result<(), String> {
    let Config {
        smoke,
        force,
        scale,
        iters,
        cases,
        out_path,
    } = config;
    let out_path = out_path.as_str();

    println!("Jacobian assembly benchmark (scale 1/{scale}, {iters} iters)");
    println!(
        "{:>5} {:>6} {:>8} {:>7} | {:>10} {:>10} {:>10} | {:>9} {:>9} {:>10}",
        "case",
        "eqs",
        "nnz",
        "colors",
        "analytic",
        "colored",
        "dense",
        "an/dense",
        "col/dense",
        "max rel err"
    );

    let mut results = Vec::new();
    for &case in &cases {
        let model = scaled_case(case, scale);
        // Compile through the session with the Deriv stage on: the
        // artifact carries the analytic tapes the benchmark measures.
        let suite = compile_case_deriv(&model, OptLevel::Full);
        let (system, compiled) = (&suite.system, &suite.compiled);
        let tapes = suite.jacobian();
        let provider = TapeJacobian::new(&tapes, &system.rate_values);
        let n = system.len();
        let y: Vec<f64> = (0..n).map(|i| 0.2 + 0.05 * (i % 7) as f64).collect();
        let tape = &compiled.tape;
        let scratch = RefCell::new(Vec::new());
        let rhs = FnRhs::new(n, |_t, yv: &[f64], ydot: &mut [f64]| {
            tape.eval_with_scratch(&system.rate_values, yv, ydot, &mut scratch.borrow_mut());
        });
        let mut f = vec![0.0; n];
        rhs.eval(0.0, &y, &mut f);

        // Analytic: one fused RHS+Jacobian tape pass per assembly.
        let mut vals = vec![0.0; tapes.nnz()];
        let analytic_secs = time_reps(|| provider.eval_values(0.0, &y, &mut vals), iters);

        // Colored FD over the exact analytic pattern. Like dense below,
        // one assembly costs many RHS evaluations, so fewer repetitions.
        let pattern = provider.pattern();
        let (colors, n_colors) = pattern.color_columns();
        let colored_reps = (iters / 8).max(1);
        let colored_secs = time_reps(
            || {
                std::hint::black_box(fd_jacobian_colored(
                    &rhs, 0.0, &y, &f, pattern, &colors, n_colors,
                ));
            },
            colored_reps,
        );

        // Dense FD: n RHS evaluations and an n x n matrix per assembly —
        // timed with fewer repetitions since it dwarfs the others.
        let dense_reps = (iters / 8).max(1);
        let dense_secs = time_reps(
            || {
                std::hint::black_box(fd_jacobian(&rhs, 0.0, &y, &f));
            },
            dense_reps,
        );

        // Accuracy: analytic entries against one dense FD evaluation.
        let (dense, _) = fd_jacobian(&rhs, 0.0, &y, &f);
        let mut max_rel_err = 0.0f64;
        for (&(i, j), &a) in tapes.entries.iter().zip(&vals) {
            let b = dense[(i as usize, j as usize)];
            max_rel_err = max_rel_err.max((a - b).abs() / a.abs().max(1.0));
        }

        println!(
            "{case:>5} {n:>6} {:>8} {n_colors:>7} | {:>10} {:>10} {:>10} | {:>8.1}x {:>8.1}x {:>10.2e}",
            tapes.nnz(),
            fmt_secs(analytic_secs),
            fmt_secs(colored_secs),
            fmt_secs(dense_secs),
            dense_secs / analytic_secs,
            dense_secs / colored_secs,
            max_rel_err
        );
        results.push(CaseResult {
            case,
            equations: n,
            nnz: tapes.nnz(),
            n_colors,
            analytic_secs,
            colored_secs,
            dense_secs,
            max_rel_err,
        });
    }

    let largest = results
        .iter()
        .max_by_key(|r| r.equations)
        .expect("at least one case");
    println!(
        "\nlargest case ({} equations): analytic assembly {:.1}x faster than dense FD",
        largest.equations,
        largest.dense_secs / largest.analytic_secs
    );

    let json = render_json(scale, iters, smoke, &results, largest);
    write_artifact(out_path, &json, smoke, force)?;
    println!("wrote {out_path}");
    Ok(())
}

/// Hand-rolled JSON (the workspace has no serde): flat and line-oriented
/// so `python3 -m json.tool` and jq both take it.
fn render_json(
    scale: usize,
    iters: usize,
    smoke: bool,
    results: &[CaseResult],
    largest: &CaseResult,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"jacobian\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"cases\": [");
    for (k, r) in results.iter().enumerate() {
        let comma = if k + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"case\": {},", r.case);
        let _ = writeln!(out, "      \"equations\": {},", r.equations);
        let _ = writeln!(out, "      \"nnz\": {},", r.nnz);
        let _ = writeln!(out, "      \"n_colors\": {},", r.n_colors);
        let _ = writeln!(out, "      \"analytic_secs\": {:e},", r.analytic_secs);
        let _ = writeln!(out, "      \"colored_secs\": {:e},", r.colored_secs);
        let _ = writeln!(out, "      \"dense_secs\": {:e},", r.dense_secs);
        let _ = writeln!(
            out,
            "      \"analytic_speedup_vs_dense\": {:.3},",
            r.dense_secs / r.analytic_secs
        );
        let _ = writeln!(
            out,
            "      \"colored_speedup_vs_dense\": {:.3},",
            r.dense_secs / r.colored_secs
        );
        let _ = writeln!(out, "      \"max_rel_err\": {:e}", r.max_rel_err);
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"largest_case\": {},", largest.case);
    let _ = writeln!(out, "  \"largest_equations\": {},", largest.equations);
    let _ = writeln!(
        out,
        "  \"largest_analytic_speedup_vs_dense\": {:.3}",
        largest.dense_secs / largest.analytic_secs
    );
    let _ = writeln!(out, "}}");
    out
}
