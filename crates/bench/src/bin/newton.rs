//! Newton iteration-matrix kernels: fill-reducing sparse LU against the
//! dense LU baseline, at the (scaled) Table 1 case sizes. Prints a
//! comparison table and writes a machine-readable `BENCH_newton.json`.
//!
//! The BDF corrector refactors and solves `I − hβJ` every time the step
//! or order changes; at the paper's ~10,000-ODE vulcanization networks
//! that linear algebra — not the RHS tape — dominates the integration.
//! The sparse path exploits the compiler's exact structural sparsity: a
//! minimum-degree ordering and symbolic factorization computed once,
//! then O(nnz(L+U)) numeric refactorizations.
//!
//! Usage:
//!   newton [--scale K] [--cases 1,2,3] [--iters N] [--traj-limit N]
//!          [--out FILE] [--smoke] [--force]
//!
//! `--smoke` shrinks everything for CI: two small cases at a deep scale —
//! enough to validate the measurement, the speedup direction and the
//! JSON artifact, not to produce stable timings.

use std::fmt::Write as _;
use std::time::Instant;

use rms_bench::{compile_case_deriv, fmt_secs, parse_or_exit, run_bench, write_artifact};
use rms_core::OptLevel;
use rms_solver::{AnalyticJacobian, CsrMatrix, LinearSolver, Lu, SolverOptions, SparseNewton};
use rms_workload::{scaled_case, EngineMode, JacobianMode, TapeJacobian, TABLE1};

const USAGE: &str = "\
newton — BDF iteration-matrix kernels: sparse LU vs dense LU

USAGE:
  newton [--scale K] [--cases 1,2,3] [--iters N] [--traj-limit N] [--out FILE] [--smoke] [--force]

  --scale K       divide the Table 1 equation counts by K (default 25)
  --cases LIST    comma-separated Table 1 case ids (default 1,2,3,4,5)
  --iters N       refactor+solve repetitions per method (default 5; the
                  dense factorization runs once above 2000 equations)
  --traj-limit N  max equations for the full sparse-vs-dense BDF
                  trajectory comparison (default 1000)
  --out FILE      JSON artifact path (default BENCH_newton.json)
  --smoke         CI preset: --scale 100 --cases 2,3 --iters 2
  --force         let a --smoke run overwrite a full-run JSON artifact
";

/// `hβ` used for the kernel measurements: a representative stiff-solver
/// step (the timings are scale-independent; only the values change).
const KERNEL_SCALE: f64 = 1e-3;

struct CaseResult {
    case: usize,
    equations: usize,
    jac_nnz: usize,
    fill_nnz: usize,
    symbolic_secs: f64,
    dense_secs: f64,
    sparse_secs: f64,
    dense_bytes: usize,
    sparse_bytes: usize,
    solve_rel_diff: f64,
    /// Max norm-relative state difference between full sparse and dense
    /// BDF trajectories; `None` when the case is above `--traj-limit`.
    traj_rel_diff: Option<f64>,
}

struct Config {
    smoke: bool,
    force: bool,
    scale: usize,
    iters: usize,
    traj_limit: usize,
    cases: Vec<usize>,
    out_path: String,
}

fn main() {
    let args = parse_or_exit(
        USAGE,
        &["--scale", "--cases", "--iters", "--traj-limit", "--out"],
        &["--smoke", "--force"],
    );
    run_bench(USAGE, args, parse, run);
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let smoke = args.switch("--smoke");
    let default_cases: &[usize] = if smoke { &[2, 3] } else { &[1, 2, 3, 4, 5] };
    let config = Config {
        smoke,
        force: args.switch("--force"),
        scale: args.num("--scale", if smoke { 100 } else { 25 })?,
        iters: args.num("--iters", if smoke { 2 } else { 5 })?,
        traj_limit: args.num("--traj-limit", if smoke { 300 } else { 1000 })?,
        cases: args.num_list("--cases", default_cases)?,
        out_path: args
            .value("--out")
            .unwrap_or("BENCH_newton.json")
            .to_string(),
    };
    if config.cases.is_empty() || config.cases.iter().any(|&c| c == 0 || c > TABLE1.len()) {
        return Err(format!("--cases takes ids in 1..={}", TABLE1.len()));
    }
    if config.iters == 0 {
        return Err("--iters must be at least 1".to_string());
    }
    Ok(config)
}

/// Max norm-relative difference between two stacked trajectories:
/// `max_t ||a_t − b_t||_inf / ||a_t||_inf`. Concentrations span many
/// decades, so the per-time solution norm (not each tiny component) is
/// the denominator.
fn trajectory_rel_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(ya, yb)| {
            let norm = ya.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
            let diff = ya
                .iter()
                .zip(yb)
                .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()));
            diff / norm
        })
        .fold(0.0, f64::max)
}

fn run(config: Config) -> Result<(), String> {
    let Config {
        smoke,
        force,
        scale,
        iters,
        traj_limit,
        cases,
        out_path,
    } = config;
    let out_path = out_path.as_str();

    println!("Newton iteration-matrix benchmark (scale 1/{scale}, {iters} refactor+solve reps)");
    println!(
        "{:>5} {:>6} {:>8} {:>9} | {:>10} {:>10} {:>8} | {:>8} {:>10}",
        "case", "eqs", "nnz", "fill", "dense", "sparse", "speedup", "mem/x", "traj-diff"
    );

    let mut results = Vec::new();
    for &case in &cases {
        let model = scaled_case(case, scale);
        let suite = compile_case_deriv(&model, OptLevel::Full);
        let system = &suite.system;
        let n = system.len();
        let tapes = suite.jacobian();
        let provider = TapeJacobian::new(&tapes, &system.rate_values);
        let pattern = provider.pattern();

        // One Jacobian evaluation at the initial state feeds both kernels
        // (values in row-major entry order, exactly as the tapes emit).
        let mut jac = CsrMatrix::from_rows(
            (0..pattern.n_rows()).map(|i| pattern.row(i)),
            pattern.n_cols(),
        )
        .map_err(|e| format!("case {case}: bad Jacobian pattern: {e}"))?;
        provider.eval_values(0.0, &system.initial, jac.vals_mut());
        let b: Vec<f64> = (0..n).map(|i| 0.25 + (i % 9) as f64 * 0.1).collect();

        // Dense baseline: sparsity-aware assembly into a dense matrix,
        // then LU with partial pivoting. One rep above 2000 equations —
        // the O(n³) factorization is tens of seconds there, which is the
        // point of this benchmark.
        let dense_reps = if n > 2000 { 1 } else { iters };
        let mut x_dense = Vec::new();
        let t0 = Instant::now();
        for _ in 0..dense_reps {
            let m = jac.assemble_iteration_matrix(KERNEL_SCALE);
            let lu = Lu::factor(&m).map_err(|e| format!("case {case}: dense LU: {e}"))?;
            x_dense = b.clone();
            lu.solve_in_place(&mut x_dense)
                .map_err(|e| format!("case {case}: dense solve: {e}"))?;
        }
        let dense_secs = t0.elapsed().as_secs_f64() / dense_reps as f64;
        let dense_bytes = 2 * n * n * std::mem::size_of::<f64>();

        // Sparse path: symbolic analysis once (reported separately), then
        // numeric refactorizations over the fixed structure.
        let t0 = Instant::now();
        let mut kernel =
            SparseNewton::new(pattern).map_err(|e| format!("case {case}: symbolic: {e}"))?;
        let symbolic_secs = t0.elapsed().as_secs_f64();
        let mut x_sparse = Vec::new();
        let t0 = Instant::now();
        for _ in 0..iters {
            kernel
                .factor_from_csr(&jac, KERNEL_SCALE)
                .map_err(|e| format!("case {case}: sparse refactor: {e}"))?;
            x_sparse = b.clone();
            kernel
                .solve_in_place(&mut x_sparse)
                .map_err(|e| format!("case {case}: sparse solve: {e}"))?;
        }
        let sparse_secs = t0.elapsed().as_secs_f64() / iters as f64;

        let x_norm = x_dense
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-300);
        let solve_rel_diff = x_dense
            .iter()
            .zip(&x_sparse)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
            / x_norm;

        // Full-trajectory agreement, where the dense integration is
        // affordable: the whole BDF solve under each linear solver. Run
        // tight — at loose tolerances the step controller amplifies
        // last-bit solve differences into tolerance-level trajectory
        // noise; near roundoff both paths converge to the same solution
        // and the comparison isolates the linear algebra.
        let traj_rel_diff = if n <= traj_limit {
            let times = [0.005, 0.01, 0.015, 0.02];
            let solve = |solver: LinearSolver| {
                let options = SolverOptions {
                    linear_solver: solver,
                    rtol: 1e-11,
                    atol: 1e-14,
                    max_steps: 4_000_000,
                    ..SolverOptions::default()
                };
                suite.simulate_configured(&times, options, JacobianMode::Analytic, EngineMode::Exec)
            };
            let dense_traj =
                solve(LinearSolver::Dense).map_err(|e| format!("case {case}: dense BDF: {e}"))?;
            let sparse_traj =
                solve(LinearSolver::Sparse).map_err(|e| format!("case {case}: sparse BDF: {e}"))?;
            Some(trajectory_rel_diff(&dense_traj, &sparse_traj))
        } else {
            None
        };

        println!(
            "{case:>5} {n:>6} {:>8} {:>9} | {:>10} {:>10} {:>7.1}x | {:>7.1}x {:>10}",
            jac.nnz(),
            kernel.fill_nnz(),
            fmt_secs(dense_secs),
            fmt_secs(sparse_secs),
            dense_secs / sparse_secs,
            dense_bytes as f64 / kernel.memory_bytes() as f64,
            traj_rel_diff.map_or("-".to_string(), |d| format!("{d:.1e}")),
        );
        results.push(CaseResult {
            case,
            equations: n,
            jac_nnz: jac.nnz(),
            fill_nnz: kernel.fill_nnz(),
            symbolic_secs,
            dense_secs,
            sparse_secs,
            dense_bytes,
            sparse_bytes: kernel.memory_bytes(),
            solve_rel_diff,
            traj_rel_diff,
        });
    }

    let largest = results
        .iter()
        .max_by_key(|r| r.equations)
        .expect("at least one case");
    println!(
        "\nlargest case ({} equations): sparse {:.1}x the dense factorize+solve, \
         {:.1}x less iteration-matrix memory, fill {:.2}% of n²",
        largest.equations,
        largest.dense_secs / largest.sparse_secs,
        largest.dense_bytes as f64 / largest.sparse_bytes as f64,
        100.0 * largest.fill_nnz as f64 / (largest.equations as f64 * largest.equations as f64),
    );

    let json = render_json(scale, iters, smoke, &results, largest);
    write_artifact(out_path, &json, smoke, force)?;
    println!("wrote {out_path}");
    Ok(())
}

/// Hand-rolled JSON (the workspace has no serde): flat and line-oriented
/// so `python3 -m json.tool` and jq both take it.
fn render_json(
    scale: usize,
    iters: usize,
    smoke: bool,
    results: &[CaseResult],
    largest: &CaseResult,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"newton\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"cases\": [");
    for (k, r) in results.iter().enumerate() {
        let comma = if k + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"case\": {},", r.case);
        let _ = writeln!(out, "      \"equations\": {},", r.equations);
        let _ = writeln!(out, "      \"jac_nnz\": {},", r.jac_nnz);
        let _ = writeln!(out, "      \"fill_nnz\": {},", r.fill_nnz);
        let _ = writeln!(
            out,
            "      \"fill_fraction_of_dense\": {:.6},",
            r.fill_nnz as f64 / (r.equations as f64 * r.equations as f64)
        );
        let _ = writeln!(out, "      \"symbolic_seconds\": {:.9},", r.symbolic_secs);
        let _ = writeln!(
            out,
            "      \"dense_factor_solve_seconds\": {:.9},",
            r.dense_secs
        );
        let _ = writeln!(
            out,
            "      \"sparse_factor_solve_seconds\": {:.9},",
            r.sparse_secs
        );
        let _ = writeln!(
            out,
            "      \"sparse_speedup_vs_dense\": {:.3},",
            r.dense_secs / r.sparse_secs
        );
        let _ = writeln!(out, "      \"dense_matrix_bytes\": {},", r.dense_bytes);
        let _ = writeln!(out, "      \"sparse_matrix_bytes\": {},", r.sparse_bytes);
        let _ = writeln!(
            out,
            "      \"memory_ratio_dense_over_sparse\": {:.3},",
            r.dense_bytes as f64 / r.sparse_bytes as f64
        );
        let _ = writeln!(out, "      \"solve_rel_diff\": {:.3e},", r.solve_rel_diff);
        match r.traj_rel_diff {
            Some(d) => {
                let _ = writeln!(out, "      \"trajectory_rel_diff\": {d:.3e}");
            }
            None => {
                let _ = writeln!(out, "      \"trajectory_rel_diff\": null");
            }
        }
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"largest_case\": {},", largest.case);
    let _ = writeln!(out, "  \"largest_equations\": {},", largest.equations);
    let _ = writeln!(
        out,
        "  \"largest_sparse_speedup_vs_dense\": {:.3},",
        largest.dense_secs / largest.sparse_secs
    );
    let _ = writeln!(
        out,
        "  \"largest_memory_ratio\": {:.3},",
        largest.dense_bytes as f64 / largest.sparse_bytes as f64
    );
    let max_traj = results
        .iter()
        .filter_map(|r| r.traj_rel_diff)
        .fold(0.0, f64::max);
    let _ = writeln!(out, "  \"max_trajectory_rel_diff\": {max_traj:.3e}");
    let _ = writeln!(out, "}}");
    out
}
