//! Native codegen backend against the execution engine: RHS evals/sec
//! for the dlopened kernel (scalar and lane-batched) versus the decoded
//! exec tape, at the (scaled) Table 1 case sizes. Prints a comparison
//! table and writes a machine-readable `BENCH_codegen.json`.
//!
//! The native backend removes the execution engine's last per-instruction
//! dispatch: the optimized tape is emitted as straight-line C, compiled
//! by the system compiler with `-O2 -ffp-contract=off`, and dlopened.
//! Because the emitted code replays the tape's exact association order
//! without FMA contraction, the trajectories are expected to be
//! bit-compatible with the exec engine — the benchmark integrates the
//! largest case on both engines and reports the norm-relative deviation.
//!
//! Usage:
//!   codegen [--scale K] [--cases 1,2,3] [--iters N] [--out FILE] [--smoke]
//!
//! `--smoke` shrinks everything for CI: the two smallest cases at a deep
//! scale with a few iterations — enough to validate the toolchain probe,
//! the differential trajectory and the JSON artifact, not timings.

use std::fmt::Write as _;
use std::time::Instant;

use rms_bench::{compile_case_native, fmt_secs, parse_or_exit, run_bench, write_artifact};
use rms_core::{ExecFrame, ExecTape, NativeKernel, OptLevel, LANES};
use rms_suite::{EngineMode, JacobianMode, SolverOptions, Stage};
use rms_workload::{scaled_case, TABLE1};

const USAGE: &str = "\
codegen — RHS evals/sec: execution engine vs compiled native kernel

USAGE:
  codegen [--scale K] [--cases 1,2,3] [--iters N] [--out FILE] [--smoke] [--force]

  --scale K     divide the Table 1 equation counts by K (default 150)
  --cases LIST  comma-separated Table 1 case ids (default 1,2,3,4,5)
  --iters N     RHS evaluations per engine measurement (default 800)
  --out FILE    JSON artifact path (default BENCH_codegen.json)
  --smoke       CI preset: --scale 500 --cases 1,2 --iters 16
  --force       let a --smoke run overwrite a full-run JSON artifact
";

struct CaseResult {
    case: usize,
    equations: usize,
    tape_instrs: usize,
    source_bytes: usize,
    render_secs: f64,
    cc_secs: f64,
    exec_secs: f64,
    exec_batched_secs: f64,
    native_secs: f64,
    native_batched_secs: f64,
}

struct Config {
    smoke: bool,
    force: bool,
    scale: usize,
    iters: usize,
    cases: Vec<usize>,
    out_path: String,
}

fn main() {
    let args = parse_or_exit(
        USAGE,
        &["--scale", "--cases", "--iters", "--out"],
        &["--smoke", "--force"],
    );
    run_bench(USAGE, args, parse, run);
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let smoke = args.switch("--smoke");
    let default_cases: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let config = Config {
        smoke,
        force: args.switch("--force"),
        scale: args.num("--scale", if smoke { 500 } else { 150 })?,
        iters: args.num("--iters", if smoke { 16 } else { 800 })?,
        cases: args.num_list("--cases", default_cases)?,
        out_path: args
            .value("--out")
            .unwrap_or("BENCH_codegen.json")
            .to_string(),
    };
    if config.cases.is_empty() || config.cases.iter().any(|&c| c == 0 || c > TABLE1.len()) {
        return Err(format!("--cases takes ids in 1..={}", TABLE1.len()));
    }
    if config.iters == 0 {
        return Err("--iters must be at least 1".to_string());
    }
    Ok(config)
}

/// Timing repetitions per measurement; the minimum is reported. The
/// first rep doubles as warm-up, and the min discards scheduler and
/// frequency-transition noise that a single sample would bake in.
const REPS: usize = 3;

/// Best-of-[`REPS`] wrapper around one timed measurement.
fn best_of(mut measure: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| measure()).fold(f64::INFINITY, f64::min)
}

/// Seconds per scalar RHS evaluation on the execution engine.
fn time_exec(exec: &ExecTape, rates: &[f64], y: &mut [f64], ydot: &mut [f64], iters: usize) -> f64 {
    let mut frame = ExecFrame::new();
    best_of(|| {
        let t0 = Instant::now();
        for _ in 0..iters {
            exec.eval(rates, y, ydot, &mut frame);
            // Feed a little of the output back so the work is not dead code.
            y[0] = 0.1 + ydot[0].abs().min(1.0) * 1e-9;
        }
        t0.elapsed().as_secs_f64() / iters as f64
    })
}

/// Seconds per state on the batched execution engine (`4 * LANES` states
/// per call, the colored-FD sweep shape).
fn time_exec_batched(exec: &ExecTape, rates: &[f64], y: &[f64], iters: usize) -> f64 {
    let n = exec.n_species();
    let n_states = 4 * LANES;
    let mut ys = Vec::with_capacity(n_states * n);
    for s in 0..n_states {
        ys.extend(y.iter().map(|v| v + 1e-6 * s as f64));
    }
    let mut ydots = vec![0.0; n_states * exec.n_outputs()];
    let mut frame = ExecFrame::new();
    let rounds = (iters / n_states).max(1);
    best_of(|| {
        let t0 = Instant::now();
        for _ in 0..rounds {
            exec.eval_batch(rates, &ys, &mut ydots, &mut frame);
            ys[0] = 0.1 + ydots[0].abs().min(1.0) * 1e-9;
        }
        t0.elapsed().as_secs_f64() / (rounds * n_states) as f64
    })
}

/// Seconds per scalar RHS evaluation on the native kernel.
fn time_native(
    kernel: &NativeKernel,
    rates: &[f64],
    y: &mut [f64],
    ydot: &mut [f64],
    iters: usize,
) -> f64 {
    best_of(|| {
        let t0 = Instant::now();
        for _ in 0..iters {
            kernel.eval(rates, y, ydot);
            y[0] = 0.1 + ydot[0].abs().min(1.0) * 1e-9;
        }
        t0.elapsed().as_secs_f64() / iters as f64
    })
}

/// Seconds per state on the native batched entry point, mirroring the
/// exec measurement shape.
fn time_native_batched(kernel: &NativeKernel, rates: &[f64], y: &[f64], iters: usize) -> f64 {
    let n = kernel.n_species();
    let n_states = 4 * LANES;
    let mut ys = Vec::with_capacity(n_states * n);
    for s in 0..n_states {
        ys.extend(y.iter().map(|v| v + 1e-6 * s as f64));
    }
    let mut ydots = vec![0.0; n_states * n];
    let rounds = (iters / n_states).max(1);
    best_of(|| {
        let t0 = Instant::now();
        for _ in 0..rounds {
            kernel.eval_batch(rates, &ys, &mut ydots);
            ys[0] = 0.1 + ydots[0].abs().min(1.0) * 1e-9;
        }
        t0.elapsed().as_secs_f64() / (rounds * n_states) as f64
    })
}

fn run(config: Config) -> Result<(), String> {
    let Config {
        smoke,
        force,
        scale,
        iters,
        cases,
        out_path,
    } = config;
    let out_path = out_path.as_str();

    let toolchain = rms_suite::probe_toolchain()
        .map_err(|e| format!("codegen bench needs a C toolchain: {e}"))?;
    println!(
        "native codegen benchmark (scale 1/{scale}, {iters} evals per engine, cc: {})",
        toolchain.version
    );
    println!(
        "{:>5} {:>6} {:>8} {:>8} {:>8} | {:>10} {:>10} {:>10} {:>10} | {:>9} {:>9}",
        "case",
        "eqs",
        "instrs",
        "render",
        "cc",
        "exec",
        "batched",
        "native",
        "nbatched",
        "nat/ex",
        "nb/bat"
    );

    let mut results = Vec::new();
    for &case in &cases {
        let model = scaled_case(case, scale);
        let suite = compile_case_native(&model, OptLevel::Full);
        let kernel = match suite.artifact().native.as_ref() {
            Some(kernel) => kernel.clone(),
            None => {
                let why = suite
                    .artifact()
                    .native_diag
                    .as_deref()
                    .unwrap_or("unknown codegen failure");
                return Err(format!("case {case}: no native kernel: {why}"));
            }
        };
        let record = suite.report.stage(Stage::Codegen);
        let render_secs = record.and_then(|r| r.get("render_seconds")).unwrap_or(0.0);
        let cc_secs = record.and_then(|r| r.get("cc_seconds")).unwrap_or(0.0);
        let source_bytes = record.and_then(|r| r.get("source_bytes")).unwrap_or(0.0) as usize;

        let system = &suite.system;
        let tape = &suite.compiled.tape;
        let exec: ExecTape = suite
            .exec
            .clone()
            .unwrap_or_else(|| ExecTape::compile(tape));
        let n = system.len();
        let rates = &system.rate_values;
        let y0: Vec<f64> = (0..n).map(|i| 0.1 + (i % 7) as f64 * 0.1).collect();
        let mut ydot = vec![0.0; n];

        let mut y = y0.clone();
        let exec_secs = time_exec(&exec, rates, &mut y, &mut ydot, iters);
        let exec_batched_secs = time_exec_batched(&exec, rates, &y0, iters);
        let mut y = y0.clone();
        let native_secs = time_native(&kernel, rates, &mut y, &mut ydot, iters);
        let native_batched_secs = time_native_batched(&kernel, rates, &y0, iters);

        println!(
            "{case:>5} {n:>6} {:>8} {:>8} {:>8} | {:>10} {:>10} {:>10} {:>10} | {:>8.2}x {:>8.2}x",
            tape.len(),
            fmt_secs(render_secs),
            fmt_secs(cc_secs),
            fmt_secs(exec_secs),
            fmt_secs(exec_batched_secs),
            fmt_secs(native_secs),
            fmt_secs(native_batched_secs),
            exec_secs / native_secs,
            exec_batched_secs / native_batched_secs
        );
        results.push(CaseResult {
            case,
            equations: n,
            tape_instrs: tape.len(),
            source_bytes,
            render_secs,
            cc_secs,
            exec_secs,
            exec_batched_secs,
            native_secs,
            native_batched_secs,
        });
    }

    let largest_case = *cases
        .iter()
        .max_by_key(|&&c| {
            results
                .iter()
                .find(|r| r.case == c)
                .map(|r| r.equations)
                .unwrap_or(0)
        })
        .expect("at least one case");

    // Differential integration on the largest case: full BDF solves on
    // the exec and native engines must tell the same story. Without FMA
    // contraction both replay the tape's association order exactly, so
    // the deviation is expected to be 0.0.
    let model = scaled_case(largest_case, scale);
    let suite = compile_case_native(&model, OptLevel::Full);
    let times: Vec<f64> = (1..=8).map(|i| 0.25 * i as f64).collect();
    let options = SolverOptions::default();
    let reference = suite
        .simulate_configured(&times, options, JacobianMode::FdColored, EngineMode::Exec)
        .map_err(|e| format!("exec integration failed: {e}"))?;
    let native_traj = suite
        .simulate_configured(&times, options, JacobianMode::FdColored, EngineMode::Native)
        .map_err(|e| format!("native integration failed: {e}"))?;
    let mut traj_diff: f64 = 0.0;
    for (a, b) in reference.iter().flatten().zip(native_traj.iter().flatten()) {
        traj_diff = traj_diff.max((a - b).abs() / a.abs().max(1.0));
    }

    let largest = results
        .iter()
        .find(|r| r.case == largest_case)
        .expect("largest case measured");
    println!(
        "\nlargest case ({} equations): native {:.2}x scalar exec, {:.2}x batched exec; \
         trajectory deviation {traj_diff:.3e}",
        largest.equations,
        largest.exec_secs / largest.native_secs,
        largest.exec_batched_secs / largest.native_batched_secs
    );

    let json = render_json(
        scale,
        iters,
        smoke,
        &toolchain.version,
        &results,
        largest,
        traj_diff,
    );
    write_artifact(out_path, &json, smoke, force)?;
    println!("wrote {out_path}");
    Ok(())
}

/// Hand-rolled JSON (the workspace has no serde): flat and line-oriented
/// so `python3 -m json.tool` and jq both take it.
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: usize,
    iters: usize,
    smoke: bool,
    cc: &str,
    results: &[CaseResult],
    largest: &CaseResult,
    traj_diff: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"codegen\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"lanes\": {LANES},");
    let _ = writeln!(out, "  \"cc\": {},", rms_driver_json_string(cc));
    let _ = writeln!(out, "  \"cases\": [");
    for (k, r) in results.iter().enumerate() {
        let comma = if k + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"case\": {},", r.case);
        let _ = writeln!(out, "      \"equations\": {},", r.equations);
        let _ = writeln!(out, "      \"tape_instrs\": {},", r.tape_instrs);
        let _ = writeln!(out, "      \"source_bytes\": {},", r.source_bytes);
        let _ = writeln!(out, "      \"render_seconds\": {:.6},", r.render_secs);
        let _ = writeln!(out, "      \"cc_seconds\": {:.6},", r.cc_secs);
        let _ = writeln!(
            out,
            "      \"exec_evals_per_sec\": {:.1},",
            1.0 / r.exec_secs
        );
        let _ = writeln!(
            out,
            "      \"exec_batched_evals_per_sec\": {:.1},",
            1.0 / r.exec_batched_secs
        );
        let _ = writeln!(
            out,
            "      \"native_evals_per_sec\": {:.1},",
            1.0 / r.native_secs
        );
        let _ = writeln!(
            out,
            "      \"native_batched_evals_per_sec\": {:.1},",
            1.0 / r.native_batched_secs
        );
        let _ = writeln!(
            out,
            "      \"native_speedup_vs_exec\": {:.3},",
            r.exec_secs / r.native_secs
        );
        let _ = writeln!(
            out,
            "      \"native_batched_speedup_vs_batched_exec\": {:.3}",
            r.exec_batched_secs / r.native_batched_secs
        );
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"largest_case\": {},", largest.case);
    let _ = writeln!(out, "  \"largest_equations\": {},", largest.equations);
    let _ = writeln!(
        out,
        "  \"largest_native_speedup_vs_exec\": {:.3},",
        largest.exec_secs / largest.native_secs
    );
    let _ = writeln!(
        out,
        "  \"largest_native_batched_speedup_vs_batched_exec\": {:.3},",
        largest.exec_batched_secs / largest.native_batched_secs
    );
    let _ = writeln!(out, "  \"largest_trajectory_deviation\": {traj_diff:.3e}");
    let _ = writeln!(out, "}}");
    out
}

/// Minimal JSON string quoting for the compiler-version banner.
fn rms_driver_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
