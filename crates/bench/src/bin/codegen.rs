//! Native codegen backend against the execution engine: RHS evals/sec
//! for the dlopened kernel (scalar and lane-batched) versus the decoded
//! exec tape, at the (scaled) Table 1 case sizes, with the reroll pass
//! both on and off. Prints a comparison table and writes a
//! machine-readable `BENCH_codegen.json`.
//!
//! The straight-line (unrolled) backend removes the execution engine's
//! per-instruction dispatch but emits code that grows linearly with the
//! tape, so past the I-cache it loses to the batched interpreter. The
//! reroll pass collapses runs of structurally identical reaction stanzas
//! into data-driven C `for` loops over static stride/index tables,
//! shrinking the kernel superlinearly while replaying the exact same
//! rounding sequence (`-ffp-contract=off`), so trajectories stay
//! bit-compatible with the exec engine. The benchmark measures both
//! kernel shapes per case and integrates the largest case on the interp,
//! exec and rerolled-native engines, asserting the crossover acceptance:
//! at a ≥250k-instruction case the rerolled kernel must beat batched
//! exec with a ≥5x smaller source than unrolled emission.
//!
//! Usage:
//!   codegen [--scale K] [--cases 1,2,3] [--iters N] [--out FILE] [--smoke]
//!
//! `--smoke` shrinks everything for CI: the two smallest cases at a deep
//! scale with a few iterations — enough to validate the toolchain probe,
//! the reroll differential trajectory and the JSON artifact, not timings.

use std::fmt::Write as _;
use std::time::Instant;

use rms_bench::{compile_case_native_opt, fmt_secs, parse_or_exit, run_bench, write_artifact};
use rms_core::{ExecFrame, ExecTape, NativeKernel, OptLevel, LANES};
use rms_suite::{EngineMode, JacobianMode, SolverOptions, Stage, SuiteModel};
use rms_workload::{scaled_case, TABLE1};

const USAGE: &str = "\
codegen — RHS evals/sec: execution engine vs compiled native kernel,
reroll on vs off

USAGE:
  codegen [--scale K] [--cases 1,2,3] [--iters N] [--out FILE] [--smoke] [--force]

  --scale K     divide the Table 1 equation counts by K (default 24,
                which puts case 5 above 250k tape instructions)
  --cases LIST  comma-separated Table 1 case ids (default 1,2,3,4,5)
  --iters N     RHS evaluations per engine measurement (default 800)
  --out FILE    JSON artifact path (default BENCH_codegen.json)
  --smoke       CI preset: --scale 500 --cases 1,2 --iters 16
  --force       let a --smoke run overwrite a full-run JSON artifact
";

/// The acceptance threshold: a case this large must show the crossover.
const ACCEPTANCE_INSTRS: usize = 250_000;

struct CaseResult {
    case: usize,
    equations: usize,
    tape_instrs: usize,
    /// Loop regions in the rerolled kernel (0 when nothing rolled).
    loop_count: usize,
    /// Flat instructions absorbed into those loops.
    rolled_instrs: usize,
    /// Rendered source size of the rerolled kernel.
    source_bytes: usize,
    /// Rendered source size of the straight-line (reroll=off) kernel.
    unrolled_source_bytes: usize,
    render_secs: f64,
    cc_secs: f64,
    unrolled_cc_secs: f64,
    /// Translation units of the rerolled build and their concurrent
    /// compile/link split.
    cc_units: usize,
    cc_unit_max_secs: f64,
    link_secs: f64,
    exec_secs: f64,
    exec_batched_secs: f64,
    native_secs: f64,
    native_batched_secs: f64,
    unrolled_native_secs: f64,
    unrolled_native_batched_secs: f64,
}

impl CaseResult {
    /// Unrolled-to-rerolled source shrink factor.
    fn size_reduction(&self) -> f64 {
        self.unrolled_source_bytes as f64 / self.source_bytes.max(1) as f64
    }
}

struct Config {
    smoke: bool,
    force: bool,
    scale: usize,
    iters: usize,
    cases: Vec<usize>,
    out_path: String,
}

fn main() {
    let args = parse_or_exit(
        USAGE,
        &["--scale", "--cases", "--iters", "--out"],
        &["--smoke", "--force"],
    );
    run_bench(USAGE, args, parse, run);
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let smoke = args.switch("--smoke");
    let default_cases: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let config = Config {
        smoke,
        force: args.switch("--force"),
        scale: args.num("--scale", if smoke { 500 } else { 24 })?,
        iters: args.num("--iters", if smoke { 16 } else { 800 })?,
        cases: args.num_list("--cases", default_cases)?,
        out_path: args
            .value("--out")
            .unwrap_or("BENCH_codegen.json")
            .to_string(),
    };
    if config.cases.is_empty() || config.cases.iter().any(|&c| c == 0 || c > TABLE1.len()) {
        return Err(format!("--cases takes ids in 1..={}", TABLE1.len()));
    }
    if config.iters == 0 {
        return Err("--iters must be at least 1".to_string());
    }
    Ok(config)
}

/// Timing repetitions per measurement; the minimum is reported. The
/// first rep doubles as warm-up, and the min discards scheduler and
/// frequency-transition noise that a single sample would bake in.
const REPS: usize = 3;

/// Best-of-[`REPS`] wrapper around one timed measurement.
fn best_of(mut measure: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| measure()).fold(f64::INFINITY, f64::min)
}

/// Seconds per scalar RHS evaluation on the execution engine.
fn time_exec(exec: &ExecTape, rates: &[f64], y: &mut [f64], ydot: &mut [f64], iters: usize) -> f64 {
    let mut frame = ExecFrame::new();
    best_of(|| {
        let t0 = Instant::now();
        for _ in 0..iters {
            exec.eval(rates, y, ydot, &mut frame);
            // Feed a little of the output back so the work is not dead code.
            y[0] = 0.1 + ydot[0].abs().min(1.0) * 1e-9;
        }
        t0.elapsed().as_secs_f64() / iters as f64
    })
}

/// Seconds per state on the batched execution engine (`4 * LANES` states
/// per call, the colored-FD sweep shape).
fn time_exec_batched(exec: &ExecTape, rates: &[f64], y: &[f64], iters: usize) -> f64 {
    let n = exec.n_species();
    let n_states = 4 * LANES;
    let mut ys = Vec::with_capacity(n_states * n);
    for s in 0..n_states {
        ys.extend(y.iter().map(|v| v + 1e-6 * s as f64));
    }
    let mut ydots = vec![0.0; n_states * exec.n_outputs()];
    let mut frame = ExecFrame::new();
    let rounds = (iters / n_states).max(1);
    best_of(|| {
        let t0 = Instant::now();
        for _ in 0..rounds {
            exec.eval_batch(rates, &ys, &mut ydots, &mut frame);
            ys[0] = 0.1 + ydots[0].abs().min(1.0) * 1e-9;
        }
        t0.elapsed().as_secs_f64() / (rounds * n_states) as f64
    })
}

/// Seconds per scalar RHS evaluation on a native kernel.
fn time_native(
    kernel: &NativeKernel,
    rates: &[f64],
    y: &mut [f64],
    ydot: &mut [f64],
    iters: usize,
) -> f64 {
    best_of(|| {
        let t0 = Instant::now();
        for _ in 0..iters {
            kernel.eval(rates, y, ydot);
            y[0] = 0.1 + ydot[0].abs().min(1.0) * 1e-9;
        }
        t0.elapsed().as_secs_f64() / iters as f64
    })
}

/// Seconds per state on a native batched entry point, mirroring the
/// exec measurement shape.
fn time_native_batched(kernel: &NativeKernel, rates: &[f64], y: &[f64], iters: usize) -> f64 {
    let n = kernel.n_species();
    let n_states = 4 * LANES;
    let mut ys = Vec::with_capacity(n_states * n);
    for s in 0..n_states {
        ys.extend(y.iter().map(|v| v + 1e-6 * s as f64));
    }
    let mut ydots = vec![0.0; n_states * n];
    let rounds = (iters / n_states).max(1);
    best_of(|| {
        let t0 = Instant::now();
        for _ in 0..rounds {
            kernel.eval_batch(rates, &ys, &mut ydots);
            ys[0] = 0.1 + ydots[0].abs().min(1.0) * 1e-9;
        }
        t0.elapsed().as_secs_f64() / (rounds * n_states) as f64
    })
}

/// A compiled case and its Codegen stage instrumentation.
struct Compiled {
    suite: SuiteModel,
    kernel: std::sync::Arc<NativeKernel>,
    cc_secs: f64,
    source_bytes: usize,
    render_secs: f64,
    cc_units: usize,
    cc_unit_max_secs: f64,
    link_secs: f64,
}

fn compile(
    case: usize,
    scale: usize,
    reroll: bool,
    cache_dir: &std::path::Path,
) -> Result<Compiled, String> {
    let model = scaled_case(case, scale);
    let suite = compile_case_native_opt(&model, OptLevel::Full, reroll, Some(cache_dir));
    let kernel = match suite.artifact().native.as_ref() {
        Some(kernel) => kernel.clone(),
        None => {
            let why = suite
                .artifact()
                .native_diag
                .as_deref()
                .unwrap_or("unknown codegen failure");
            return Err(format!(
                "case {case} (reroll={reroll}): no native kernel: {why}"
            ));
        }
    };
    let record = suite.report.stage(Stage::Codegen);
    let metric = |key: &str| record.and_then(|r| r.get(key)).unwrap_or(0.0);
    Ok(Compiled {
        cc_secs: metric("cc_seconds"),
        source_bytes: metric("source_bytes") as usize,
        render_secs: metric("render_seconds"),
        cc_units: metric("cc_units") as usize,
        cc_unit_max_secs: metric("cc_unit_max_seconds"),
        link_secs: metric("link_seconds"),
        suite,
        kernel,
    })
}

fn run(config: Config) -> Result<(), String> {
    let Config {
        smoke,
        force,
        scale,
        iters,
        cases,
        out_path,
    } = config;
    let out_path = out_path.as_str();

    let toolchain = rms_suite::probe_toolchain()
        .map_err(|e| format!("codegen bench needs a C toolchain: {e}"))?;
    println!(
        "native codegen benchmark (scale 1/{scale}, {iters} evals per engine, cc: {})",
        toolchain.version
    );
    println!(
        "{:>5} {:>6} {:>8} {:>6} {:>7} {:>8} {:>8} | {:>10} {:>10} {:>10} {:>10} | {:>8} {:>8}",
        "case",
        "eqs",
        "instrs",
        "loops",
        "size-x",
        "cc:roll",
        "cc:flat",
        "exbatch",
        "nroll",
        "nrollb",
        "nflatb",
        "nrb/exb",
        "nfb/exb"
    );

    // A fresh scratch cache per run: warm `.so` hits would skip the
    // render/cc work and zero out the size and compile-time columns.
    let scratch = std::env::temp_dir().join(format!("rms-codegen-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut results = Vec::new();
    for &case in &cases {
        let rolled = compile(case, scale, true, &scratch)?;
        let unrolled = compile(case, scale, false, &scratch)?;

        let system = &rolled.suite.system;
        let tape = &rolled.suite.compiled.tape;
        let exec: ExecTape = rolled
            .suite
            .exec
            .clone()
            .unwrap_or_else(|| ExecTape::compile(tape));
        let n = system.len();
        let rates = &system.rate_values;
        let y0: Vec<f64> = (0..n).map(|i| 0.1 + (i % 7) as f64 * 0.1).collect();
        let mut ydot = vec![0.0; n];

        let mut y = y0.clone();
        let exec_secs = time_exec(&exec, rates, &mut y, &mut ydot, iters);
        let exec_batched_secs = time_exec_batched(&exec, rates, &y0, iters);
        let mut y = y0.clone();
        let native_secs = time_native(&rolled.kernel, rates, &mut y, &mut ydot, iters);
        let native_batched_secs = time_native_batched(&rolled.kernel, rates, &y0, iters);
        let mut y = y0.clone();
        let unrolled_native_secs = time_native(&unrolled.kernel, rates, &mut y, &mut ydot, iters);
        let unrolled_native_batched_secs = time_native_batched(&unrolled.kernel, rates, &y0, iters);

        let result = CaseResult {
            case,
            equations: n,
            tape_instrs: tape.len(),
            loop_count: rolled.kernel.loop_count(),
            rolled_instrs: rolled.kernel.rolled_instrs(),
            source_bytes: rolled.source_bytes,
            unrolled_source_bytes: unrolled.source_bytes,
            render_secs: rolled.render_secs,
            cc_secs: rolled.cc_secs,
            unrolled_cc_secs: unrolled.cc_secs,
            cc_units: rolled.cc_units,
            cc_unit_max_secs: rolled.cc_unit_max_secs,
            link_secs: rolled.link_secs,
            exec_secs,
            exec_batched_secs,
            native_secs,
            native_batched_secs,
            unrolled_native_secs,
            unrolled_native_batched_secs,
        };
        println!(
            "{case:>5} {n:>6} {:>8} {:>6} {:>6.1}x {:>8} {:>8} | {:>10} {:>10} {:>10} {:>10} | {:>7.2}x {:>7.2}x",
            result.tape_instrs,
            result.loop_count,
            result.size_reduction(),
            fmt_secs(result.cc_secs),
            fmt_secs(result.unrolled_cc_secs),
            fmt_secs(result.exec_batched_secs),
            fmt_secs(result.native_secs),
            fmt_secs(result.native_batched_secs),
            fmt_secs(result.unrolled_native_batched_secs),
            result.exec_batched_secs / result.native_batched_secs,
            result.exec_batched_secs / result.unrolled_native_batched_secs
        );
        results.push(result);
    }

    let largest_case = *cases
        .iter()
        .max_by_key(|&&c| {
            results
                .iter()
                .find(|r| r.case == c)
                .map(|r| r.equations)
                .unwrap_or(0)
        })
        .expect("at least one case");

    // Differential integration on the largest case: full BDF solves on
    // the exec and rerolled-native engines must tell the same story.
    // Without FMA contraction both replay the tape's association order
    // exactly, so the deviation vs exec is expected to be 0.0; the
    // interp engine shares the flat tape and gets the 1e-12 envelope.
    let model = scaled_case(largest_case, scale);
    let suite = compile_case_native_opt(&model, OptLevel::Full, true, Some(&scratch));
    let times: Vec<f64> = (1..=8).map(|i| 0.25 * i as f64).collect();
    let options = SolverOptions::default();
    let reference = suite
        .simulate_configured(&times, options, JacobianMode::FdColored, EngineMode::Exec)
        .map_err(|e| format!("exec integration failed: {e}"))?;
    let native_traj = suite
        .simulate_configured(&times, options, JacobianMode::FdColored, EngineMode::Native)
        .map_err(|e| format!("native integration failed: {e}"))?;
    let interp_traj = suite
        .simulate_configured(&times, options, JacobianMode::FdColored, EngineMode::Interp)
        .map_err(|e| format!("interp integration failed: {e}"))?;
    let deviation = |a: &Vec<Vec<f64>>, b: &Vec<Vec<f64>>| -> f64 {
        let mut worst: f64 = 0.0;
        for (x, z) in a.iter().flatten().zip(b.iter().flatten()) {
            worst = worst.max((x - z).abs() / x.abs().max(1.0));
        }
        worst
    };
    let traj_diff = deviation(&reference, &native_traj);
    let traj_diff_interp = deviation(&interp_traj, &native_traj);

    let largest = results
        .iter()
        .find(|r| r.case == largest_case)
        .expect("largest case measured");
    println!(
        "\nlargest case ({} equations, {} instrs): rerolled native {:.2}x scalar exec, \
         {:.2}x batched exec (unrolled: {:.2}x batched); kernel source {:.1}x smaller; \
         trajectory deviation {traj_diff:.3e} vs exec, {traj_diff_interp:.3e} vs interp",
        largest.equations,
        largest.tape_instrs,
        largest.exec_secs / largest.native_secs,
        largest.exec_batched_secs / largest.native_batched_secs,
        largest.exec_batched_secs / largest.unrolled_native_batched_secs,
        largest.size_reduction()
    );

    // Crossover acceptance: at a ≥250k-instruction case the rerolled
    // kernel must (a) beat the batched exec engine where the unrolled
    // kernel historically lost, (b) shrink the rendered source ≥5x, and
    // (c) keep the trajectory bit-identical to exec and within 1e-12 of
    // interp. Smoke runs skip the check — their cases are far below the
    // crossover.
    if !smoke && largest.tape_instrs >= ACCEPTANCE_INSTRS {
        let batched_speedup = largest.exec_batched_secs / largest.native_batched_secs;
        let scalar_speedup = largest.exec_secs / largest.native_secs;
        if batched_speedup < 1.0 || scalar_speedup < 1.0 {
            return Err(format!(
                "crossover acceptance failed: rerolled native at {} instrs is not faster than \
                 exec (scalar {scalar_speedup:.3}x, batched {batched_speedup:.3}x)",
                largest.tape_instrs
            ));
        }
        if largest.size_reduction() < 5.0 {
            return Err(format!(
                "crossover acceptance failed: kernel source only {:.2}x smaller than unrolled \
                 (need ≥5x)",
                largest.size_reduction()
            ));
        }
        if traj_diff != 0.0 {
            return Err(format!(
                "crossover acceptance failed: rerolled native deviates from exec by {traj_diff:e}"
            ));
        }
        if traj_diff_interp > 1e-12 {
            return Err(format!(
                "crossover acceptance failed: rerolled native deviates from interp by \
                 {traj_diff_interp:e}"
            ));
        }
        println!("crossover acceptance: PASS");
    }

    let json = render_json(
        scale,
        iters,
        smoke,
        &toolchain.version,
        &results,
        largest,
        traj_diff,
        traj_diff_interp,
    );
    write_artifact(out_path, &json, smoke, force)?;
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(())
}

/// Hand-rolled JSON (the workspace has no serde): flat and line-oriented
/// so `python3 -m json.tool` and jq both take it.
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: usize,
    iters: usize,
    smoke: bool,
    cc: &str,
    results: &[CaseResult],
    largest: &CaseResult,
    traj_diff: f64,
    traj_diff_interp: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"codegen\",");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"lanes\": {LANES},");
    let _ = writeln!(out, "  \"cc\": {},", json_string(cc));
    let _ = writeln!(out, "  \"cases\": [");
    for (k, r) in results.iter().enumerate() {
        let comma = if k + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"case\": {},", r.case);
        let _ = writeln!(out, "      \"equations\": {},", r.equations);
        let _ = writeln!(out, "      \"tape_instrs\": {},", r.tape_instrs);
        let _ = writeln!(out, "      \"loop_count\": {},", r.loop_count);
        let _ = writeln!(out, "      \"rolled_instrs\": {},", r.rolled_instrs);
        let _ = writeln!(out, "      \"source_bytes\": {},", r.source_bytes);
        let _ = writeln!(
            out,
            "      \"unrolled_source_bytes\": {},",
            r.unrolled_source_bytes
        );
        let _ = writeln!(
            out,
            "      \"kernel_size_reduction\": {:.3},",
            r.size_reduction()
        );
        let _ = writeln!(out, "      \"render_seconds\": {:.6},", r.render_secs);
        let _ = writeln!(out, "      \"cc_seconds\": {:.6},", r.cc_secs);
        let _ = writeln!(
            out,
            "      \"unrolled_cc_seconds\": {:.6},",
            r.unrolled_cc_secs
        );
        let _ = writeln!(out, "      \"cc_units\": {},", r.cc_units);
        let _ = writeln!(
            out,
            "      \"cc_unit_max_seconds\": {:.6},",
            r.cc_unit_max_secs
        );
        let _ = writeln!(out, "      \"link_seconds\": {:.6},", r.link_secs);
        let _ = writeln!(
            out,
            "      \"exec_evals_per_sec\": {:.1},",
            1.0 / r.exec_secs
        );
        let _ = writeln!(
            out,
            "      \"exec_batched_evals_per_sec\": {:.1},",
            1.0 / r.exec_batched_secs
        );
        let _ = writeln!(
            out,
            "      \"native_evals_per_sec\": {:.1},",
            1.0 / r.native_secs
        );
        let _ = writeln!(
            out,
            "      \"native_batched_evals_per_sec\": {:.1},",
            1.0 / r.native_batched_secs
        );
        let _ = writeln!(
            out,
            "      \"unrolled_native_evals_per_sec\": {:.1},",
            1.0 / r.unrolled_native_secs
        );
        let _ = writeln!(
            out,
            "      \"unrolled_native_batched_evals_per_sec\": {:.1},",
            1.0 / r.unrolled_native_batched_secs
        );
        let _ = writeln!(
            out,
            "      \"native_speedup_vs_exec\": {:.3},",
            r.exec_secs / r.native_secs
        );
        let _ = writeln!(
            out,
            "      \"native_batched_speedup_vs_batched_exec\": {:.3},",
            r.exec_batched_secs / r.native_batched_secs
        );
        let _ = writeln!(
            out,
            "      \"unrolled_native_speedup_vs_exec\": {:.3},",
            r.exec_secs / r.unrolled_native_secs
        );
        let _ = writeln!(
            out,
            "      \"unrolled_native_batched_speedup_vs_batched_exec\": {:.3}",
            r.exec_batched_secs / r.unrolled_native_batched_secs
        );
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"largest_case\": {},", largest.case);
    let _ = writeln!(out, "  \"largest_equations\": {},", largest.equations);
    let _ = writeln!(out, "  \"largest_tape_instrs\": {},", largest.tape_instrs);
    let _ = writeln!(
        out,
        "  \"largest_native_speedup_vs_exec\": {:.3},",
        largest.exec_secs / largest.native_secs
    );
    let _ = writeln!(
        out,
        "  \"largest_native_batched_speedup_vs_batched_exec\": {:.3},",
        largest.exec_batched_secs / largest.native_batched_secs
    );
    let _ = writeln!(
        out,
        "  \"largest_unrolled_native_batched_speedup_vs_batched_exec\": {:.3},",
        largest.exec_batched_secs / largest.unrolled_native_batched_secs
    );
    let _ = writeln!(
        out,
        "  \"largest_kernel_size_reduction\": {:.3},",
        largest.size_reduction()
    );
    let _ = writeln!(out, "  \"largest_trajectory_deviation\": {traj_diff:.3e},");
    let _ = writeln!(
        out,
        "  \"largest_trajectory_deviation_vs_interp\": {traj_diff_interp:.3e}"
    );
    let _ = writeln!(out, "}}");
    out
}

/// Minimal JSON string quoting for the compiler-version banner.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
