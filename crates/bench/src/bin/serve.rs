//! Service latency/throughput under concurrent multi-tenant load, with
//! and without injected faults. Prints a comparison table and writes a
//! machine-readable `BENCH_serve.json`.
//!
//! Each scenario starts one in-process server and N client threads;
//! every client submits a stream of simulate jobs under its own tenant
//! and measures per-job latency from submission to terminal event. The
//! faulted scenario replays the same load with a deterministic chaos
//! plan — contained panics plus a stall long enough to blow the default
//! deadline — so the numbers quantify what fault isolation costs the
//! surviving jobs.
//!
//! Usage:
//!   serve [--clients N] [--jobs N] [--workers N] [--out FILE] [--smoke]
//!
//! `--smoke` shrinks the per-client job count for CI — enough to
//! validate the measurement and the JSON artifact, not stable timings.

use std::fmt::Write as _;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use rms_bench::{parse_or_exit, run_bench, write_artifact};
use rms_parallel::FaultPlan;
use rms_serve::json::{obj, Value};
use rms_serve::{JobKind, JobRequest, Server, ServerConfig};

const USAGE: &str = "\
serve — service latency/throughput under concurrent load and faults

USAGE:
  serve [--clients N] [--jobs N] [--workers N] [--out FILE] [--smoke] [--force]

  --clients N   concurrent client threads (default 8)
  --jobs N      jobs submitted per client (default 8)
  --workers N   server worker threads (default 4)
  --out FILE    JSON artifact path (default BENCH_serve.json)
  --smoke       CI preset: --jobs 2
  --force       let a --smoke run overwrite a full-run JSON artifact
";

/// The benchmark model: a disulfide scission network, small enough
/// that per-job cost is dominated by service overhead — which is what
/// this bench measures.
const MODEL: &str = r#"
rate K_sc = 2;
molecule DiS = "CSSC" init 1.0;
rule scission {
    site bond S ~ S order single;
    action disconnect;
    rate K_sc;
}
"#;

struct Config {
    smoke: bool,
    force: bool,
    clients: usize,
    jobs: usize,
    workers: usize,
    out_path: String,
}

struct ScenarioResult {
    name: &'static str,
    succeeded: usize,
    failed: usize,
    panicked: usize,
    deadlines: usize,
    cold_compiles: usize,
    p50_ms: f64,
    p99_ms: f64,
    throughput: f64,
}

fn main() {
    let args = parse_or_exit(
        USAGE,
        &["--clients", "--jobs", "--workers", "--out"],
        &["--smoke", "--force"],
    );
    run_bench(USAGE, args, parse, run);
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let smoke = args.switch("--smoke");
    let config = Config {
        smoke,
        force: args.switch("--force"),
        clients: args.num("--clients", 8)?,
        jobs: args.num("--jobs", if smoke { 2 } else { 8 })?,
        workers: args.num("--workers", 4)?,
        out_path: args
            .value("--out")
            .unwrap_or("BENCH_serve.json")
            .to_string(),
    };
    if config.clients == 0 || config.jobs == 0 || config.workers == 0 {
        return Err("--clients, --jobs and --workers must be at least 1".to_string());
    }
    if config.clients * config.jobs < 5 {
        // The chaos plan needs distinct admission sequence numbers for
        // its panic and stall targets.
        return Err("need at least 5 total jobs (clients × jobs)".to_string());
    }
    Ok(config)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Run one scenario: `clients` threads × `jobs` submissions against a
/// fresh server, returning latency percentiles over the successful jobs.
fn run_scenario(
    name: &'static str,
    config: &Config,
    faults: Option<FaultPlan>,
) -> Result<ScenarioResult, String> {
    let faulted = faults.is_some();
    let server = Server::start(ServerConfig {
        workers: config.workers,
        queue_capacity: config.clients * config.jobs + 8,
        default_deadline_ms: Some(if faulted { 100 } else { 30_000 }),
        faults,
        ..ServerConfig::default()
    });
    let started = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut cold_compiles = 0usize;
    let mut terminal_events = 0usize;

    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        for c in 0..config.clients {
            let server = &server;
            let jobs = config.jobs;
            handles.push(
                scope.spawn(move || -> Result<(Vec<f64>, usize, usize), String> {
                    let (tx, rx) = channel::<String>();
                    let mut submitted = Vec::with_capacity(jobs);
                    for j in 0..jobs {
                        let req = JobRequest {
                            id: format!("c{c}-{j}"),
                            tenant: format!("tenant{c}"),
                            source: MODEL.to_string(),
                            observe: Vec::new(),
                            kind: JobKind::Simulate {
                                times: vec![0.2, 0.5],
                            },
                            deadline_ms: None,
                            level: "full".to_string(),
                        };
                        server
                            .submit(req, tx.clone())
                            .map_err(|e| format!("client {c} rejected: {e}"))?;
                        submitted.push(Instant::now());
                    }
                    drop(tx);
                    let mut latencies = Vec::with_capacity(jobs);
                    let mut cold = 0;
                    let mut terminals = 0;
                    for line in rx {
                        let ev = rms_serve::json::parse(&line)
                            .map_err(|e| format!("client {c}: bad event: {e}"))?;
                        let kind = ev.get("event").and_then(Value::as_str).unwrap_or("");
                        if kind != "result" && kind != "error" {
                            continue;
                        }
                        let id = ev.get("id").and_then(Value::as_str).unwrap_or("");
                        let j: usize = id
                            .rsplit('-')
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| format!("client {c}: unexpected id '{id}'"))?;
                        terminals += 1;
                        if kind == "result" {
                            latencies.push(submitted[j].elapsed().as_secs_f64() * 1e3);
                            if ev.get("cache").and_then(Value::as_str) == Some("cold") {
                                cold += 1;
                            }
                        }
                        if terminals == jobs {
                            break;
                        }
                    }
                    Ok((latencies, cold, terminals))
                }),
            );
        }
        for handle in handles {
            let (lat, cold, terminals) = handle.join().map_err(|_| "client panicked")??;
            latencies.extend(lat);
            cold_compiles += cold;
            terminal_events += terminals;
        }
        Ok(())
    })?;

    let stats = server.drain();
    let wall = started.elapsed().as_secs_f64();
    let total = config.clients * config.jobs;
    if terminal_events != total {
        return Err(format!(
            "{name}: expected {total} terminal events, saw {terminal_events}"
        ));
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(ScenarioResult {
        name,
        succeeded: stats.succeeded,
        failed: stats.failed,
        panicked: stats.panicked,
        deadlines: stats.deadlines,
        cold_compiles,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        throughput: total as f64 / wall,
    })
}

fn run(config: Config) -> Result<(), String> {
    let total = config.clients * config.jobs;
    let clean = run_scenario("clean", &config, None)?;
    // Concurrent same-model submissions must have shared one compile.
    if clean.cold_compiles != 1 {
        return Err(format!(
            "expected exactly one cold compile across {total} clean jobs, saw {}",
            clean.cold_compiles
        ));
    }
    if clean.failed != 0 {
        return Err(format!("{} clean jobs failed", clean.failed));
    }

    // Deterministic chaos: two contained panics plus one stall that
    // blows the 100 ms default deadline.
    let plan = FaultPlan::new()
        .panic_file(1)
        .panic_file(total / 2)
        .stall_file(3, Duration::from_millis(400));
    let faulted = run_scenario("faulted", &config, Some(plan))?;
    if faulted.panicked != 2 || faulted.deadlines != 1 {
        return Err(format!(
            "chaos plan mismatch: {} panics (want 2), {} deadlines (want 1)",
            faulted.panicked, faulted.deadlines
        ));
    }
    // The model was already cached by the clean scenario.
    if faulted.cold_compiles != 0 {
        return Err(format!(
            "faulted scenario recompiled {} times",
            faulted.cold_compiles
        ));
    }

    let mut table = String::new();
    let _ = writeln!(
        table,
        "serve: {} clients x {} jobs, {} workers",
        config.clients, config.jobs, config.workers
    );
    let _ = writeln!(
        table,
        "{:<10} {:>6} {:>6} {:>10} {:>10} {:>12}",
        "scenario", "ok", "err", "p50", "p99", "jobs/s"
    );
    for s in [&clean, &faulted] {
        let _ = writeln!(
            table,
            "{:<10} {:>6} {:>6} {:>8.2}ms {:>8.2}ms {:>12.1}",
            s.name, s.succeeded, s.failed, s.p50_ms, s.p99_ms, s.throughput
        );
    }
    print!("{table}");

    let scenario_json = |s: &ScenarioResult| -> Value {
        obj([
            ("name", s.name.into()),
            ("succeeded", s.succeeded.into()),
            ("failed", s.failed.into()),
            ("panicked", s.panicked.into()),
            ("deadlines", s.deadlines.into()),
            ("cold_compiles", s.cold_compiles.into()),
            ("p50_ms", s.p50_ms.into()),
            ("p99_ms", s.p99_ms.into()),
            ("throughput_jobs_per_sec", s.throughput.into()),
        ])
    };
    let json = obj([
        ("bench", "serve".into()),
        ("smoke", config.smoke.into()),
        ("clients", config.clients.into()),
        ("jobs_per_client", config.jobs.into()),
        ("workers", config.workers.into()),
        (
            "scenarios",
            Value::Arr(vec![scenario_json(&clean), scenario_json(&faulted)]),
        ),
    ]);
    let mut text = json.to_json();
    text.push('\n');
    write_artifact(&config.out_path, &text, config.smoke, config.force)?;
    println!("wrote {}", config.out_path);
    Ok(())
}
