//! Network-generation (frontend) throughput: wall time to close a
//! frontier workload's reaction network under the engine's three
//! switches — legacy full-rescan vs per-rule frontier, string canonical
//! keys vs interned content hashes, and 1..N worker threads. Prints a
//! comparison table and writes a machine-readable `BENCH_frontend.json`.
//!
//! Every configuration must produce a bit-identical network (species
//! order, reaction list, rates); the run aborts if any fingerprint
//! disagrees. Speedups are reported against two anchors: the
//! frontier+interned serial run (for thread scaling) and the legacy
//! rescan + string-key run (the pre-frontier engine's cost profile, for
//! the single-thread algorithmic win).
//!
//! Usage:
//!   frontend [--species N] [--threads LIST] [--out FILE] [--smoke] [--force]
//!
//! `--smoke` shrinks the workload for CI: a ~2000-species network and a
//! single parallel configuration — enough to validate determinism, the
//! prefilter and the JSON artifact, not timings. Thread scaling is only
//! meaningful when the host exposes multiple cores; the artifact records
//! `available_threads` so consumers can tell.

use std::collections::hash_map::DefaultHasher;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use rms_bench::{fmt_secs, parse_or_exit, run_bench, write_artifact};
use rms_suite::{
    compile_with_options, expand_program, parse_rdl, CompiledModel, EngineOptions, RateTable,
    ReactionNetwork,
};
use rms_workload::FrontierSpec;

const USAGE: &str = "\
frontend — network-generation wall time: legacy rescan vs frontier,
string keys vs interning, serial vs threaded closure

USAGE:
  frontend [--species N] [--threads LIST] [--out FILE] [--smoke] [--force]

  --species N    target species count for the frontier workload
                 (default 50000)
  --threads LIST comma-separated parallel thread counts (default 2,4,8)
  --out FILE     JSON artifact path (default BENCH_frontend.json)
  --smoke        CI preset: --species 2000 --threads 2
  --force        let a --smoke run overwrite a full-run JSON artifact
";

struct Config {
    smoke: bool,
    force: bool,
    species: usize,
    threads: Vec<usize>,
    out_path: String,
}

/// One engine configuration's measured closure.
struct Run {
    label: String,
    options: EngineOptions,
    seconds: f64,
    species: usize,
    reactions: usize,
    rule_applications: u64,
    canonicalizations: u64,
    prefilter_hit_rate: f64,
    peak_frontier: usize,
    generations: usize,
    gen_max_seconds: f64,
    fingerprint: u64,
}

fn main() {
    let args = parse_or_exit(
        USAGE,
        &["--species", "--threads", "--out"],
        &["--smoke", "--force"],
    );
    run_bench(USAGE, args, parse, run);
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let smoke = args.switch("--smoke");
    let default_threads: &[usize] = if smoke { &[2] } else { &[2, 4, 8] };
    let config = Config {
        smoke,
        force: args.switch("--force"),
        species: args.num("--species", if smoke { 2000 } else { 50_000 })?,
        threads: args.num_list("--threads", default_threads)?,
        out_path: args
            .value("--out")
            .unwrap_or("BENCH_frontend.json")
            .to_string(),
    };
    if config.species < 10 {
        return Err("--species must be at least 10".to_string());
    }
    if config.threads.iter().any(|&t| t < 2) {
        return Err("--threads takes counts of at least 2 (1 is the serial anchor)".to_string());
    }
    Ok(config)
}

/// Structural fingerprint of a network: species (name, initial) in id
/// order plus reactions (ids, rate, rule) in insertion order — any
/// divergence between engine configurations lands here.
fn fingerprint(network: &ReactionNetwork) -> u64 {
    let mut h = DefaultHasher::new();
    network.species_count().hash(&mut h);
    for (_, species) in network.species_iter() {
        species.name.hash(&mut h);
        species.initial_concentration.to_bits().hash(&mut h);
    }
    network.reaction_count().hash(&mut h);
    for reaction in network.reactions() {
        for id in &reaction.reactants {
            id.0.hash(&mut h);
        }
        u32::MAX.hash(&mut h);
        for id in &reaction.products {
            id.0.hash(&mut h);
        }
        reaction.rate.hash(&mut h);
        reaction.rule.hash(&mut h);
    }
    h.finish()
}

fn measure(
    program: &rms_suite::Program,
    label: &str,
    options: EngineOptions,
) -> Result<Run, String> {
    let rates =
        RateTable::parse(&program.rate_source).map_err(|e| format!("{label}: rates: {e}"))?;
    let seeds = expand_program(program).map_err(|e| format!("{label}: expand: {e}"))?;
    let t0 = Instant::now();
    let CompiledModel {
        network,
        rates: _,
        stats,
    } = compile_with_options(program, rates, &seeds, &options)
        .map_err(|e| format!("{label}: closure: {e}"))?;
    let seconds = t0.elapsed().as_secs_f64();
    Ok(Run {
        label: label.to_string(),
        options,
        seconds,
        species: network.species_count(),
        reactions: network.reaction_count(),
        rule_applications: stats.rule_applications,
        canonicalizations: stats.canonicalizations,
        prefilter_hit_rate: stats.prefilter_hit_rate(),
        peak_frontier: stats.peak_frontier,
        generations: stats.generations,
        gen_max_seconds: stats.generation_seconds.iter().copied().fold(0.0, f64::max),
        fingerprint: fingerprint(&network),
    })
}

fn run(config: Config) -> Result<(), String> {
    let spec = FrontierSpec::for_species(config.species);
    let source = spec.rdl_source();
    let program = parse_rdl(&source).map_err(|e| format!("workload parse: {e}"))?;
    let available = rms_suite::available_threads();
    println!(
        "frontier workload: arms {} -> {} species expected, {} core(s) available",
        spec.arms,
        spec.species_estimate(),
        available
    );

    let mut plan: Vec<(String, EngineOptions)> = vec![
        (
            "baseline-rescan".to_string(),
            EngineOptions {
                threads: 1,
                intern: false,
                legacy_rescan: true,
            },
        ),
        (
            "frontier-nointern".to_string(),
            EngineOptions {
                threads: 1,
                intern: false,
                legacy_rescan: false,
            },
        ),
        (
            "frontier-serial".to_string(),
            EngineOptions {
                threads: 1,
                intern: true,
                legacy_rescan: false,
            },
        ),
    ];
    for &t in &config.threads {
        plan.push((
            format!("frontier-t{t}"),
            EngineOptions {
                threads: t,
                intern: true,
                legacy_rescan: false,
            },
        ));
    }

    let mut runs = Vec::with_capacity(plan.len());
    for (label, options) in &plan {
        let run = measure(&program, label, *options)?;
        println!(
            "{:<20} {:>10}  {} species, {} reactions, {} canonicalizations, \
             prefilter {:.1}%, peak frontier {}",
            run.label,
            fmt_secs(run.seconds),
            run.species,
            run.reactions,
            run.canonicalizations,
            100.0 * run.prefilter_hit_rate,
            run.peak_frontier,
        );
        runs.push(run);
    }

    // Hard determinism gate: every configuration, whatever its thread
    // count or key representation, must build the identical network.
    let reference = runs[0].fingerprint;
    let bit_identical = runs.iter().all(|r| r.fingerprint == reference);
    if !bit_identical {
        let labels: Vec<&str> = runs
            .iter()
            .filter(|r| r.fingerprint != reference)
            .map(|r| r.label.as_str())
            .collect();
        return Err(format!(
            "network fingerprints diverge from {}: {}",
            runs[0].label,
            labels.join(", ")
        ));
    }
    println!("all {} configurations bit-identical", runs.len());

    let seconds_of = |label: &str| {
        runs.iter()
            .find(|r| r.label == label)
            .map(|r| r.seconds)
            .unwrap_or(f64::NAN)
    };
    let baseline = seconds_of("baseline-rescan");
    let serial = seconds_of("frontier-serial");
    let single_thread_speedup = baseline / serial;
    println!(
        "frontier+interning vs legacy rescan (1 thread): {:.2}x",
        single_thread_speedup
    );
    for &t in &config.threads {
        let parallel = seconds_of(&format!("frontier-t{t}"));
        println!("{t} threads vs serial: {:.2}x", serial / parallel);
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"frontend\",");
    let _ = writeln!(json, "  \"smoke\": {},", config.smoke);
    let _ = writeln!(json, "  \"target_species\": {},", config.species);
    let _ = writeln!(json, "  \"arms\": {},", spec.arms);
    let _ = writeln!(json, "  \"available_threads\": {available},");
    let _ = writeln!(json, "  \"bit_identical\": {bit_identical},");
    let _ = writeln!(
        json,
        "  \"single_thread_speedup_vs_baseline\": {single_thread_speedup:.3},"
    );
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"label\": \"{}\",", r.label);
        let _ = writeln!(json, "      \"threads\": {},", r.options.threads);
        let _ = writeln!(json, "      \"intern\": {},", r.options.intern);
        let _ = writeln!(
            json,
            "      \"legacy_rescan\": {},",
            r.options.legacy_rescan
        );
        let _ = writeln!(json, "      \"seconds\": {:.6},", r.seconds);
        let _ = writeln!(
            json,
            "      \"speedup_vs_serial\": {:.3},",
            serial / r.seconds
        );
        let _ = writeln!(json, "      \"species\": {},", r.species);
        let _ = writeln!(json, "      \"reactions\": {},", r.reactions);
        let _ = writeln!(
            json,
            "      \"rule_applications\": {},",
            r.rule_applications
        );
        let _ = writeln!(
            json,
            "      \"canonicalizations\": {},",
            r.canonicalizations
        );
        let _ = writeln!(
            json,
            "      \"prefilter_hit_rate\": {:.4},",
            r.prefilter_hit_rate
        );
        let _ = writeln!(json, "      \"peak_frontier\": {},", r.peak_frontier);
        let _ = writeln!(json, "      \"generations\": {},", r.generations);
        let _ = writeln!(json, "      \"gen_max_seconds\": {:.6}", r.gen_max_seconds);
        let _ = writeln!(json, "    }}{}", if i + 1 < runs.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    write_artifact(&config.out_path, &json, config.smoke, config.force)?;
    println!("wrote {}", config.out_path);
    Ok(())
}
