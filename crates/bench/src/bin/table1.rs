//! Table 1 reproduction: operation counts, compile success/failure of the
//! commercial-compiler model, and execution times across optimization
//! configurations, for the five vulcanization test cases.
//!
//! Usage:
//!   table1 [--scale K] [--cases 1,2,3] [--iters N] [--budget BYTES]
//!
//! `--scale 1` runs the paper-scale equation counts (case 5 = 250 000
//! equations; symbolically feasible but slow on a laptop). The default
//! scale keeps the run to minutes. Operation counts, which cells hit
//! "compiler error", and the measured speedups are printed next to the
//! paper's reference numbers; absolute seconds differ (their machine was
//! a 375 MHz POWER3), the *shape* is what reproduces.

use rms_bench::{
    compile_case, compile_case_cold, fmt_secs, parse_or_exit, run_bench, time_tape_eval,
};
use rms_core::{
    compact_registers, forward_copies, generic_compile, lower, GenericOptions, OptLevel,
    PAPER_MEMORY_BUDGET,
};
use rms_workload::{scaled_case, TABLE1};

const USAGE: &str = "\
table1 — Table 1 reproduction (op counts, compile limits, eval times)

USAGE:
  table1 [--scale K] [--cases 1,2,3] [--iters N] [--budget BYTES]
";

struct Config {
    scale: usize,
    iters: usize,
    cases: Vec<usize>,
    budget: usize,
}

fn main() {
    let args = parse_or_exit(USAGE, &["--scale", "--cases", "--iters", "--budget"], &[]);
    run_bench(USAGE, args, parse, run);
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let cases: Vec<usize> = args.num_list("--cases", &[1, 2, 3, 4, 5])?;
    if cases.is_empty() || cases.iter().any(|&c| c == 0 || c > TABLE1.len()) {
        return Err(format!("--cases takes ids in 1..={}", TABLE1.len()));
    }
    Ok(Config {
        scale: args.num("--scale", 25)?,
        iters: args.num("--iters", 50)?,
        cases,
        budget: args.num("--budget", 0)?,
    })
}

fn run(config: Config) -> Result<(), String> {
    let Config {
        scale,
        iters,
        cases,
        budget,
    } = config;
    // The compiler memory budget is normalized the way the paper's
    // 4.5 GB sits relative to its workload: just above what -O0 needs for
    // case 4 (which compiled) and below -O0's need for case 5 (which
    // died). We scale 4.5 GB by the ratio of our case-4 unoptimized op
    // count to the paper's (1 840 000), so the pass/fail pattern of
    // Table 1 emerges from the same mechanism at any --scale.
    let budget: usize = match budget {
        0 => {
            // Cached: if case 4 is in the run below, this compile is the
            // same artifact the loop will share.
            let case4 = scaled_case(4, scale);
            let tape_len = compile_case(&case4, OptLevel::None).compiled.tape.len();
            ((PAPER_MEMORY_BUDGET as u128 * tape_len as u128) / 1_840_000u128) as usize
        }
        explicit => explicit,
    };

    println!("Table 1 reproduction (scale 1/{scale}, compiler budget {budget} IR bytes)");
    println!("paper reference in [brackets]; times are this machine's, shapes should match\n");

    for &case in &cases {
        let reference = TABLE1[case - 1];
        let model = scaled_case(case, scale);
        let equations = model.network.species_count();
        println!(
            "── case {case}: {equations} equations [{}], {} reactions ──",
            reference.equations,
            model.network.reaction_count()
        );

        // Baseline: no optimizations at all (raw Fig. 4 style system).
        let baseline = compile_case(&model, OptLevel::None);
        let (raw, unopt) = (&baseline.system, &baseline.compiled);
        let unopt_counts = unopt.stages.after_cse;
        println!(
            "  without opts:      {:>9} mults [{}], {:>9} adds [{}]",
            unopt_counts.mults, reference.mults_unopt, unopt_counts.adds, reference.adds_unopt
        );

        // The paper's "without optimizations" column still goes through
        // the C compiler at default opt; its case-5 cell is a compiler
        // error. Report whether -O0 fits the budget, then measure the
        // interpreted RHS evaluation time (the paper's runtime is
        // solver-dominated and solver cost tracks RHS cost).
        // The C the paper feeds xlc names every temporary distinctly —
        // our SSA lowering, not the register-compacted execution tape
        // (value numbering runs before register allocation in any real
        // compiler).
        let ssa = lower(&unopt.forest);
        let o0_fits = generic_compile(
            &ssa,
            GenericOptions {
                opt_level: 0,
                memory_budget: budget,
            },
        )
        .is_ok();
        let t_unopt = time_tape_eval(unopt, raw, iters);
        println!(
            "  eval time/call:    {:>9}   [{}]{}",
            fmt_secs(t_unopt),
            reference
                .time_unopt
                .map_or("compiler error".to_string(), |t| format!("{t}s total")),
            if o0_fits {
                ""
            } else {
                "  (-O0 compile: lack of space, as in the paper)"
            }
        );

        // "With C compiler optimizations only": generic VN at -O4 with the
        // scaled memory budget; failures mirror Table 1's error cells.
        match generic_compile(
            &ssa,
            GenericOptions {
                opt_level: 4,
                memory_budget: budget,
            },
        ) {
            Ok(result) => {
                let mut ccomp = unopt.clone();
                // A real compiler coalesces the copies VN leaves behind;
                // forward them and re-allocate registers before timing.
                ccomp.tape = compact_registers(&forward_copies(&result.tape));
                let t_ccomp = time_tape_eval(&ccomp, raw, iters);
                println!(
                    "  C-compiler-only:   {:>9}   [{}]  ({} ops eliminated)",
                    fmt_secs(t_ccomp),
                    reference
                        .time_ccomp
                        .map_or("compiler error".to_string(), |t| format!("{t}s total")),
                    result.eliminated
                );
            }
            Err(e) => println!(
                "  C-compiler-only:   {:>9}   [{}]",
                format!("{e}")
                    .split(" (")
                    .next()
                    .unwrap_or("error")
                    .to_string(),
                reference
                    .time_ccomp
                    .map_or("compiler error".to_string(), |t| format!("{t}s total"))
            ),
        }

        // With our algebraic + CSE optimizations. Cold compile so the
        // reported pipeline time is real work, not a cache hit.
        let optimized = compile_case_cold(&model, OptLevel::Full);
        let (simplified, opt) = (&optimized.system, &optimized.compiled);
        let compile_time = optimized.report.total_seconds;
        let opt_counts = opt.stages.after_cse;
        let t_opt = time_tape_eval(opt, simplified, iters);
        println!(
            "  with algebraic/CSE:{:>9} mults [{}], {:>9} adds [{}]  (compile {})",
            opt_counts.mults,
            reference.mults_opt,
            opt_counts.adds,
            reference.adds_opt,
            fmt_secs(compile_time)
        );
        println!(
            "  eval time/call:    {:>9}   [{}s total]",
            fmt_secs(t_opt),
            reference.time_opt
        );

        let total_fraction = opt_counts.total() as f64 / unopt_counts.total() as f64;
        let reference_fraction = (reference.mults_opt + reference.adds_opt) as f64
            / (reference.mults_unopt + reference.adds_unopt) as f64;
        let speedup = t_unopt / t_opt;
        let reference_speedup = reference.time_unopt.map(|t| t / reference.time_opt);
        println!(
            "  ops remaining:     {:>8.1}%   [{:.1}%]   eval speedup: {:.2}x{}",
            100.0 * total_fraction,
            100.0 * reference_fraction,
            speedup,
            reference_speedup.map_or(String::new(), |s| format!("   [{s:.2}x]"))
        );
        println!();
    }

    println!("compiler-limit claim (§3.3): the admitted-model-size multiplier equals the");
    println!("optimizer's compression factor (paper: >=10x on their models; ~4x measured on");
    println!("this synthetic workload) — see tests/compiler_limits.rs.");
    Ok(())
}
