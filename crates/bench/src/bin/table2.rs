//! Table 2 reproduction: parallel objective-function scaling over 16
//! experimental data files, with and without dynamic load balancing.
//!
//! Usage:
//!   table2 [--records N] [--sites F] [--files N] [--threaded]
//!
//! The paper ran 1–16 IBM SP nodes. This harness measures real per-file
//! solve times sequentially, then reports the *schedule model*: each
//! node-count's total time is the makespan of the block or LPT schedule
//! over the measured times — exactly the quantity the SP measured, minus
//! the (negligible) AllReduce. `--threaded` additionally runs the real
//! thread-backed cluster (only meaningful when this machine has that many
//! cores; the build machine for the committed outputs has one core).

use rms_bench::{fmt_secs, parse_or_exit, run_bench};
use rms_core::OptLevel;
use rms_suite::{compile_model, ParallelEstimator, TapeSimulator};
use rms_workload::{
    generate_model, synthesize, ExpDataSpec, VulcanizationSpec, TABLE2, TRUE_RATES,
};

const USAGE: &str = "\
table2 — Table 2 reproduction (parallel objective-function scaling)

USAGE:
  table2 [--records N] [--sites F] [--files N] [--threaded]
";

struct Config {
    records: usize,
    sites: usize,
    n_files: usize,
    threaded: bool,
}

fn main() {
    let args = parse_or_exit(USAGE, &["--records", "--sites", "--files"], &["--threaded"]);
    run_bench(USAGE, args, parse, run);
}

fn parse(args: &rms_bench::BenchArgs) -> Result<Config, String> {
    let config = Config {
        records: args.num("--records", 600)?,
        sites: args.num("--sites", 6)?,
        n_files: args.num("--files", 16)?,
        threaded: args.switch("--threaded"),
    };
    if config.n_files == 0 || config.records == 0 {
        return Err("--files and --records must be at least 1".to_string());
    }
    Ok(config)
}

fn run(config: Config) -> Result<(), String> {
    let Config {
        records,
        sites,
        n_files,
        threaded,
    } = config;

    println!("Table 2 reproduction: {n_files} data files x {records} records");

    // Build and compile the model once (fully optimized — Table 2 sits on
    // top of the sequential optimizations).
    let model = generate_model(VulcanizationSpec {
        sites,
        max_chain: 6,
        neighbourhood: 2,
    });
    let crosslinks = model.crosslink_species.clone();
    let suite = compile_model(model.network, model.rates, OptLevel::Full).expect("compiles");
    let mut observable = vec![0.0; suite.system.len()];
    for x in &crosslinks {
        observable[x.0 as usize] = 1.0;
    }
    let simulator = TapeSimulator::from_artifact(suite.artifact(), observable);

    // Heterogeneous horizons reproduce the load imbalance that limited
    // the paper to 12.78x at 16 nodes without the balancer.
    let files = synthesize(
        &simulator,
        &TRUE_RATES,
        ExpDataSpec {
            n_files,
            records,
            base_horizon: 2.5,
            // Calibrated so the most expensive file is ~1.25x the mean,
            // the imbalance implied by the paper's 12.78x at 16 nodes.
            horizon_skew: 0.25,
            noise: 1e-3,
            seed: 16,
        },
    )
    .expect("synthesis succeeds");

    // Measure real per-file solve times (sequential, two passes: the
    // second is the measurement, warm).
    let recorder = ParallelEstimator::new(&simulator, files.clone(), 1, false);
    recorder.objective(&TRUE_RATES).expect("warmup");
    recorder.objective(&TRUE_RATES).expect("measure");
    let times = recorder.recorded_times().expect("recorded");
    let total: f64 = times.iter().sum();
    println!(
        "measured per-file solve times: min {} / max {} / total {}\n",
        fmt_secs(times.iter().copied().fold(f64::INFINITY, f64::min)),
        fmt_secs(times.iter().copied().fold(0.0, f64::max)),
        fmt_secs(total),
    );

    println!("schedule model over measured times (paper reference in [brackets]):");
    println!(
        "{:>6} | {:>12} {:>8} {:>9} | {:>12} {:>8} {:>9}",
        "nodes", "no-LB time", "speedup", "[paper]", "LB time", "speedup", "[paper]"
    );
    for (row, nodes) in TABLE2.iter().zip([1usize, 2, 4, 8, 16]) {
        let block = rms_suite::makespan(
            &rms_suite::block_schedule(times.len(), nodes).expect("nodes > 0"),
            &times,
        );
        let lpt = rms_suite::makespan(
            &rms_suite::lpt_schedule(&times, nodes).expect("nodes > 0"),
            &times,
        );
        println!(
            "{nodes:>6} | {:>12} {:>8.2} {:>9.2} | {:>12} {:>8.2} {:>9.2}",
            fmt_secs(block),
            total / block,
            row.speedup_block,
            fmt_secs(lpt),
            total / lpt,
            row.speedup_lb
        );
    }

    if threaded {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!("\nreal thread-backed cluster ({cores} cores):");
        println!("{:>6} {:>14} {:>14}", "nodes", "no-LB wall", "LB wall");
        for nodes in [1usize, 2, 4, 8, 16] {
            let block_est = ParallelEstimator::new(&simulator, files.clone(), nodes, false);
            block_est.objective(&TRUE_RATES).expect("warmup");
            let block_t = block_est
                .objective(&TRUE_RATES)
                .expect("objective")
                .wall_time;
            let lb_est = ParallelEstimator::new(&simulator, files.clone(), nodes, true);
            lb_est.objective(&TRUE_RATES).expect("warmup");
            let lb_t = lb_est.objective(&TRUE_RATES).expect("objective").wall_time;
            println!(
                "{nodes:>6} {:>14} {:>14}",
                fmt_secs(block_t),
                fmt_secs(lb_t)
            );
        }
    }
    Ok(())
}
