//! Shared helpers for the benchmark harnesses reproducing the paper's
//! tables and figures.

use std::time::Instant;

use rms_core::{CompiledOde, OptLevel};
use rms_odegen::OdeSystem;
use rms_suite::{CacheMode, CompilerSession, SessionOptions, SuiteModel};
use rms_workload::VulcanizationModel;

/// Run a workload model through the pass-managed pipeline session with
/// explicit options. All bench compilations funnel through here; there
/// is no ad-hoc stage chaining in the harnesses.
fn compile_with(model: &VulcanizationModel, options: SessionOptions) -> SuiteModel {
    let compiled = CompilerSession::with_options(options)
        .compile_network("workload", model.network.clone(), model.rates.clone())
        .expect("workload models always compile");
    SuiteModel::from_artifact(compiled.artifact)
}

/// Compile a workload model end to end through the process-cached
/// pipeline. Repeated calls with the same model and level share one
/// artifact; the model's report carries per-stage wall times and the
/// Table 1 operation counts.
pub fn compile_case(model: &VulcanizationModel, level: OptLevel) -> SuiteModel {
    compile_with(model, SessionOptions::new(level))
}

/// [`compile_case`] with the cache bypassed: a guaranteed-cold compile
/// whose report times reflect real pipeline work.
pub fn compile_case_cold(model: &VulcanizationModel, level: OptLevel) -> SuiteModel {
    let mut options = SessionOptions::new(level);
    options.cache = CacheMode::Bypass;
    compile_with(model, options)
}

/// [`compile_case`] with the *Deriv* stage on: the artifact carries the
/// analytic sparse Jacobian tapes.
pub fn compile_case_deriv(model: &VulcanizationModel, level: OptLevel) -> SuiteModel {
    let mut options = SessionOptions::new(level);
    options.deriv = true;
    compile_with(model, options)
}

/// [`compile_case`] with the *Codegen* stage on: the artifact carries
/// the compiled-and-dlopened native kernel when a C toolchain is
/// available, and a fallback diagnostic (`native_diag`) otherwise.
pub fn compile_case_native(model: &VulcanizationModel, level: OptLevel) -> SuiteModel {
    compile_case_native_opt(model, level, true, None)
}

/// [`compile_case_native`] with the reroll pass switched explicitly (the
/// CLI's `--opt reroll=on|off`). `reroll: false` emits the historic
/// straight-line (unrolled) kernel; the flag is part of the cache key,
/// so the two variants never share an artifact. A `cache_dir` pins the
/// `.so` location — benches pass a fresh scratch directory so every
/// compile is cold and the reported render/cc metrics are real (a warm
/// shared cache loads the kernel without rendering and reports zeros).
pub fn compile_case_native_opt(
    model: &VulcanizationModel,
    level: OptLevel,
    reroll: bool,
    cache_dir: Option<&std::path::Path>,
) -> SuiteModel {
    let mut options = SessionOptions::new(level);
    options.native = true;
    options.reroll = reroll;
    options.cache_dir = cache_dir.map(std::path::Path::to_path_buf);
    compile_with(model, options)
}

/// [`compile_case`] with the *Deriv* stage and the parameter-sensitivity
/// tapes on: the artifact carries both the analytic sparse Jacobian and
/// the `∂f/∂p` tapes the sensitivity-augmented BDF integration needs.
pub fn compile_case_sens(model: &VulcanizationModel, level: OptLevel) -> SuiteModel {
    let mut options = SessionOptions::new(level);
    options.deriv = true;
    options.sensitivity = true;
    compile_with(model, options)
}

/// Build the (un)merged ODE system for a model through the session: a
/// passes-off pipeline (equation generation plus bare lowering) with the
/// generator's §3.1 merging switched explicitly.
pub fn system_for(model: &VulcanizationModel, simplify: bool) -> OdeSystem {
    let mut options = SessionOptions::new(OptLevel::None);
    options.gen_simplify = Some(simplify);
    options.decode = false;
    compile_with(model, options).system.clone()
}

/// Time `iters` evaluations of a tape over a fixed state (the solver's
/// hot loop), returning seconds per evaluation.
pub fn time_tape_eval(compiled: &CompiledOde, system: &OdeSystem, iters: usize) -> f64 {
    let n = system.len();
    let mut y: Vec<f64> = (0..n).map(|i| 0.1 + (i % 7) as f64 * 0.1).collect();
    let mut ydot = vec![0.0; n];
    let mut scratch = Vec::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        compiled
            .tape
            .eval_with_scratch(&system.rate_values, &y, &mut ydot, &mut scratch);
        // Feed a little of the output back so the work is not dead code.
        y[0] = 0.1 + ydot[0].abs().min(1.0) * 1e-9;
    }
    std::hint::black_box(&ydot);
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Write a JSON bench artifact, refusing to clobber full-run results
/// with smoke output. A smoke run may freely overwrite a smoke artifact
/// (the JSON carries `"smoke": true`) or create a fresh file, but
/// replacing a full run requires `--force` — committed artifacts have
/// been silently downgraded by CI presets before.
pub fn write_artifact(path: &str, json: &str, smoke: bool, force: bool) -> Result<(), String> {
    if smoke && !force {
        if let Ok(existing) = std::fs::read_to_string(path) {
            if !existing.contains("\"smoke\": true") && !existing.contains("\"smoke\":true") {
                return Err(format!(
                    "{path} holds full-run results; refusing to overwrite with --smoke \
                     output (re-run with --force to override, or --out elsewhere)"
                ));
            }
        }
    }
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Pretty seconds.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}us", s * 1e6)
    }
}

/// Strictly parsed `--key value` / `--switch` arguments for the bench
/// binaries. Unknown flags, missing values and malformed numbers are
/// usage errors (the binaries exit 2) instead of being silently ignored.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    values: std::collections::BTreeMap<String, String>,
    switches: std::collections::BTreeSet<String>,
    /// `-h`/`--help` appeared anywhere.
    pub help: bool,
}

impl BenchArgs {
    /// Parse an argument vector (without the program name).
    /// `value_flags` take one value each; `switches` take none.
    pub fn parse(
        args: &[String],
        value_flags: &[&str],
        switches: &[&str],
    ) -> Result<BenchArgs, String> {
        let mut out = BenchArgs::default();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if a == "--help" || a == "-h" {
                out.help = true;
                i += 1;
            } else if value_flags.contains(&a) {
                let v = args
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("{a} requires a value"))?;
                out.values.insert(a.to_string(), v.clone());
                i += 2;
            } else if switches.contains(&a) {
                out.switches.insert(a.to_string());
                i += 1;
            } else {
                let mut known: Vec<&str> = value_flags.to_vec();
                known.extend_from_slice(switches);
                return Err(format!(
                    "unknown argument '{a}' (expected one of: {})",
                    known.join(", ")
                ));
            }
        }
        Ok(out)
    }

    /// The raw value of a flag, if given.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Whether a switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.contains(key)
    }

    /// A numeric flag with a default; malformed values are usage errors.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.value(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{key} takes a number, got '{v}'")),
        }
    }

    /// A comma-separated list of numbers with a default.
    pub fn num_list<T>(&self, key: &str, default: &[T]) -> Result<Vec<T>, String>
    where
        T: std::str::FromStr + Clone,
    {
        match self.value(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|c| {
                    c.trim()
                        .parse()
                        .map_err(|_| format!("{key} takes comma-separated numbers, got '{c}'"))
                })
                .collect(),
        }
    }
}

/// Run a bench `main` with conventional exit codes: `parse` failures are
/// usage errors (stderr + usage text, exit 2), `body` failures are
/// runtime errors (exit 1), `--help` prints the usage and exits 0.
pub fn run_bench<C>(
    usage: &str,
    args: BenchArgs,
    parse: impl FnOnce(&BenchArgs) -> Result<C, String>,
    body: impl FnOnce(C) -> Result<(), String>,
) {
    if args.help {
        print!("{usage}");
        return;
    }
    let config = match parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{usage}");
            std::process::exit(2);
        }
    };
    if let Err(msg) = body(config) {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}

/// Parse the process arguments strictly or exit 2 with the usage text.
pub fn parse_or_exit(usage: &str, value_flags: &[&str], switches: &[&str]) -> BenchArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match BenchArgs::parse(&argv, value_flags, switches) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{usage}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn strict_parsing_accepts_known_flags() {
        let args = BenchArgs::parse(
            &argv("--scale 10 --cases 1,2 --threaded"),
            &["--scale", "--cases"],
            &["--threaded"],
        )
        .unwrap();
        assert_eq!(args.num::<usize>("--scale", 25).unwrap(), 10);
        assert_eq!(args.num_list::<usize>("--cases", &[5]).unwrap(), vec![1, 2]);
        assert!(args.switch("--threaded"));
        assert!(!args.help);
    }

    #[test]
    fn strict_parsing_rejects_unknown_and_malformed() {
        // Typo'd flag.
        assert!(BenchArgs::parse(&argv("--scal 10"), &["--scale"], &[]).is_err());
        // Missing value.
        assert!(BenchArgs::parse(&argv("--scale"), &["--scale"], &[]).is_err());
        // Value that is itself a flag.
        assert!(
            BenchArgs::parse(&argv("--scale --cases 1"), &["--scale", "--cases"], &[]).is_err()
        );
        // Malformed number surfaces at the typed getter.
        let args = BenchArgs::parse(&argv("--scale ten"), &["--scale"], &[]).unwrap();
        assert!(args.num::<usize>("--scale", 25).is_err());
        let args = BenchArgs::parse(&argv("--cases 1,x"), &["--cases"], &[]).unwrap();
        assert!(args.num_list::<usize>("--cases", &[1]).is_err());
    }

    #[test]
    fn help_flag_detected_anywhere() {
        let args = BenchArgs::parse(&argv("--scale 5 -h"), &["--scale"], &[]).unwrap();
        assert!(args.help);
        let args = BenchArgs::parse(&argv("--help"), &[], &[]).unwrap();
        assert!(args.help);
    }

    #[test]
    fn smoke_artifact_guard() {
        let dir = std::env::temp_dir().join(format!("rms-bench-guard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let path = path.to_str().unwrap();

        // A fresh path accepts smoke output.
        write_artifact(path, "{\"smoke\": true}\n", true, false).unwrap();
        // Smoke-over-smoke is fine.
        write_artifact(path, "{\"smoke\": true}\n", true, false).unwrap();
        // A full run may overwrite anything.
        write_artifact(path, "{\"smoke\": false}\n", false, false).unwrap();
        // Smoke-over-full is refused ...
        let err = write_artifact(path, "{\"smoke\": true}\n", true, false).unwrap_err();
        assert!(err.contains("refusing"), "{err}");
        assert!(std::fs::read_to_string(path).unwrap().contains("false"));
        // ... unless forced.
        write_artifact(path, "{\"smoke\": true}\n", true, true).unwrap();
        assert!(std::fs::read_to_string(path).unwrap().contains("true"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn defaults_apply_when_flags_absent() {
        let args = BenchArgs::parse(&[], &["--scale"], &["--smoke"]).unwrap();
        assert_eq!(args.num::<usize>("--scale", 25).unwrap(), 25);
        assert!(!args.switch("--smoke"));
        assert_eq!(args.value("--scale"), None);
    }
}
