//! Shared helpers for the benchmark harnesses reproducing the paper's
//! tables and figures.

use std::time::Instant;

use rms_core::{optimize, CompiledOde, OptLevel};
use rms_odegen::{generate, GenerateOptions, OdeSystem};
use rms_workload::VulcanizationModel;

/// Build the (un)simplified ODE system for a model.
pub fn system_for(model: &VulcanizationModel, simplify: bool) -> OdeSystem {
    generate(&model.network, &model.rates, GenerateOptions { simplify })
        .expect("workload rates are always defined")
}

/// Compile at a level, returning the compiled artifact and elapsed
/// compile time in seconds.
pub fn compile_timed(system: &OdeSystem, level: OptLevel) -> (CompiledOde, f64) {
    let t0 = Instant::now();
    let compiled = optimize(system, level);
    (compiled, t0.elapsed().as_secs_f64())
}

/// Time `iters` evaluations of a tape over a fixed state (the solver's
/// hot loop), returning seconds per evaluation.
pub fn time_tape_eval(compiled: &CompiledOde, system: &OdeSystem, iters: usize) -> f64 {
    let n = system.len();
    let mut y: Vec<f64> = (0..n).map(|i| 0.1 + (i % 7) as f64 * 0.1).collect();
    let mut ydot = vec![0.0; n];
    let mut scratch = Vec::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        compiled
            .tape
            .eval_with_scratch(&system.rate_values, &y, &mut ydot, &mut scratch);
        // Feed a little of the output back so the work is not dead code.
        y[0] = 0.1 + ydot[0].abs().min(1.0) * 1e-9;
    }
    std::hint::black_box(&ydot);
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Pretty seconds.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}us", s * 1e6)
    }
}

/// Parse `--key value` style arguments.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}
