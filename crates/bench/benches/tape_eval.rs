//! Tape-evaluation throughput: the solver's hot loop, optimized vs
//! unoptimized — the source of Table 1's runtime column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rms_bench::system_for;
use rms_core::{optimize, OptLevel};
use rms_workload::{generate_model, VulcanizationSpec};

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("tape_eval");
    group.sample_size(20);
    for equations in [200usize, 450, 2000] {
        let model = generate_model(VulcanizationSpec::for_equation_count(equations));
        let raw = system_for(&model, false);
        let simplified = system_for(&model, true);
        let unopt = optimize(&raw, OptLevel::None);
        let opt = optimize(&simplified, OptLevel::Full);
        let n = raw.len();
        let y: Vec<f64> = (0..n).map(|i| 0.1 + (i % 5) as f64 * 0.2).collect();

        group.bench_with_input(BenchmarkId::new("unoptimized", equations), &(), |b, ()| {
            let mut ydot = vec![0.0; n];
            let mut scratch = Vec::new();
            b.iter(|| {
                unopt
                    .tape
                    .eval_with_scratch(&raw.rate_values, &y, &mut ydot, &mut scratch);
                std::hint::black_box(&ydot);
            })
        });
        group.bench_with_input(BenchmarkId::new("optimized", equations), &(), |b, ()| {
            let mut ydot = vec![0.0; n];
            let mut scratch = Vec::new();
            b.iter(|| {
                opt.tape
                    .eval_with_scratch(&simplified.rate_values, &y, &mut ydot, &mut scratch);
                std::hint::black_box(&ydot);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
