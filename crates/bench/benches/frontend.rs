//! Frontend benches: SMILES parsing, canonicalization, and full RDL
//! compilation (the "days instead of months" part of the paper's
//! productivity story — it must stay fast).

use criterion::{criterion_group, criterion_main, Criterion};

use rms_suite::molecule::{canonical_key, parse_smiles};
use rms_suite::workload::VULCANIZATION_RDL;
use rms_suite::{compile_network, parse_rdl};

fn bench_smiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("smiles");
    let inputs = [
        ("linear_polysulfide", "CSSSSSSSSC"),
        ("branched", "CC(C)(CS)CC(S)C=C"),
        ("benzothiazole", "SC1=NC2=CC=CC=C2S1"),
        ("bicyclic", "C1CC2CCC1CC2"),
    ];
    for (name, smiles) in inputs {
        group.bench_function(format!("parse_{name}"), |b| {
            b.iter(|| parse_smiles(std::hint::black_box(smiles)).unwrap())
        });
        let mol = parse_smiles(smiles).unwrap();
        group.bench_function(format!("canonicalize_{name}"), |b| {
            b.iter(|| canonical_key(std::hint::black_box(&mol)))
        });
    }
    group.finish();
}

fn bench_rdl(c: &mut Criterion) {
    let mut group = c.benchmark_group("rdl");
    group.sample_size(10);
    group.bench_function("parse_vulcanization", |b| {
        b.iter(|| parse_rdl(std::hint::black_box(VULCANIZATION_RDL)).unwrap())
    });
    let program = parse_rdl(VULCANIZATION_RDL).unwrap();
    group.bench_function("compile_vulcanization_network", |b| {
        b.iter(|| compile_network(std::hint::black_box(&program)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_smiles, bench_rdl);
criterion_main!(benches);
