//! Solver benches: BDF vs RK45 vs Adams on stiff chemistry (the §4.1
//! motivation for using the Gear solver).

use criterion::{criterion_group, criterion_main, Criterion};

use rms_solver::{solve_adams, solve_bdf, solve_rk45, FnRhs, SolverOptions};

fn robertson() -> FnRhs<impl Fn(f64, &[f64], &mut [f64])> {
    FnRhs::new(3, |_t, y: &[f64], ydot: &mut [f64]| {
        ydot[0] = -0.04 * y[0] + 1e4 * y[1] * y[2];
        ydot[1] = 0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] * y[1];
        ydot[2] = 3e7 * y[1] * y[1];
    })
}

fn bench_stiff(c: &mut Criterion) {
    let mut group = c.benchmark_group("stiff_robertson");
    group.sample_size(10);
    let options = SolverOptions {
        rtol: 1e-6,
        atol: 1e-10,
        max_steps: 1_000_000,
        ..SolverOptions::default()
    };
    group.bench_function("bdf_to_t0.4", |b| {
        let rhs = robertson();
        b.iter(|| solve_bdf(&rhs, 0.0, &[1.0, 0.0, 0.0], &[0.4], options).unwrap())
    });
    group.finish();
}

fn bench_nonstiff(c: &mut Criterion) {
    let mut group = c.benchmark_group("nonstiff_decay_chain");
    group.sample_size(20);
    // A 50-species linear decay chain, mildly stiff-free.
    let n = 50;
    let rhs = FnRhs::new(n, move |_t, y: &[f64], ydot: &mut [f64]| {
        ydot[0] = -y[0];
        for i in 1..y.len() {
            ydot[i] = y[i - 1] - y[i];
        }
    });
    let y0: Vec<f64> = std::iter::once(1.0)
        .chain(std::iter::repeat(0.0))
        .take(n)
        .collect();
    let options = SolverOptions::default();
    group.bench_function("rk45", |b| {
        b.iter(|| solve_rk45(&rhs, 0.0, &y0, &[5.0], options).unwrap())
    });
    group.bench_function("adams", |b| {
        b.iter(|| solve_adams(&rhs, 0.0, &y0, &[5.0], options).unwrap())
    });
    group.bench_function("bdf", |b| {
        b.iter(|| solve_bdf(&rhs, 0.0, &y0, &[5.0], options).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_stiff, bench_nonstiff);
criterion_main!(benches);
