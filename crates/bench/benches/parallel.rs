//! Parallel-runtime benches: collective overhead and scheduler cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rms_parallel::{block_schedule, lpt_schedule, run_cluster};

fn bench_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce_sum");
    group.sample_size(10);
    for ranks in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("ranks", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                run_cluster(ranks, |comm| {
                    let local = vec![comm.rank() as f64; 1024];
                    comm.all_reduce_sum(&local)
                })
            })
        });
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    let times: Vec<f64> = (0..1000).map(|i| 1.0 + (i % 37) as f64 * 0.1).collect();
    group.bench_function("lpt_1000_tasks_16_workers", |b| {
        b.iter(|| lpt_schedule(&times, 16))
    });
    group.bench_function("block_1000_tasks_16_workers", |b| {
        b.iter(|| block_schedule(times.len(), 16))
    });
    group.finish();
}

criterion_group!(benches, bench_all_reduce, bench_schedulers);
criterion_main!(benches);
