//! Criterion benches for the optimizer passes (paper §3): per-pass cost
//! and the ablation of each pass's contribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rms_bench::system_for;
use rms_core::{cse_forest, distribute_forest, optimize, CseOptions, ExprForest, OptLevel};
use rms_workload::{generate_model, VulcanizationSpec};

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_passes");
    group.sample_size(10);
    for equations in [200usize, 450, 1000] {
        let model = generate_model(VulcanizationSpec::for_equation_count(equations));
        let system = system_for(&model, true);
        let forest = ExprForest::from_system(&system);
        group.bench_with_input(
            BenchmarkId::new("distopt", equations),
            &forest,
            |b, forest| b.iter(|| distribute_forest(forest)),
        );
        let distributed = distribute_forest(&forest);
        group.bench_with_input(
            BenchmarkId::new("cse", equations),
            &distributed,
            |b, forest| b.iter(|| cse_forest(forest, CseOptions::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("full_pipeline", equations),
            &system,
            |b, system| b.iter(|| optimize(system, OptLevel::Full)),
        );
    }
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    // Not a timing bench: report op-count ablation through criterion's
    // harness so `cargo bench` prints the numbers for EXPERIMENTS.md.
    let model = generate_model(VulcanizationSpec::for_equation_count(450));
    // The raw (unsimplified) system is the honest baseline; §3.1 runs as
    // part of the pipeline at every level above None.
    let system = system_for(&model, false);
    for level in OptLevel::ALL {
        let compiled = optimize(&system, level);
        println!(
            "[ablation] level={level:<22} mults={:<7} adds={:<7} total={}",
            compiled.stages.after_cse.mults,
            compiled.stages.after_cse.adds,
            compiled.stages.after_cse.total()
        );
    }
    let mut group = c.benchmark_group("ablation_noop");
    group.sample_size(10);
    group.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
    group.finish();
}

criterion_group!(benches, bench_passes, bench_ablation);
criterion_main!(benches);
