//! End-to-end driver tests: staged reports, cache layers, disk
//! round-trips, and IR dumps.

use std::sync::Arc;

use rms_driver::{cache, CacheMode, CompilerSession, Diagnostic, OptLevel, SessionOptions, Stage};

const SRC: &str = r#"
    rate K_sc = 2;
    rate K_rec = 1;
    molecule TetraS = "CS{n}C" for n in 2..4 init 1.0;
    rule scission {
        site bond S ~ S order single;
        action disconnect;
        rate K_sc;
    }
    rule recombine {
        site pair S & radical, S & radical;
        action connect single;
        rate K_rec;
    }
    limit atoms 12;
    forbid chain S > 4;
"#;

/// Make each test's source unique so in-process cache state never leaks
/// between tests (they share one global cache). The salt is an unused
/// rate definition, the closest thing RDL has to a comment.
fn salted(salt: &str) -> String {
    format!("{SRC}\nrate K_salt_{salt} = 977;\n")
}

#[test]
fn report_records_every_frontend_stage() {
    let session = CompilerSession::new(OptLevel::Full);
    let out = session
        .compile_source("m.rdl", &salted("reportstages"))
        .unwrap();
    let report = &out.artifact.report;
    for stage in [
        Stage::Parse,
        Stage::Expand,
        Stage::Rcip,
        Stage::Network,
        Stage::OdeGen,
        Stage::Simplify,
        Stage::Distribute,
        Stage::Cse,
        Stage::Lower,
        Stage::ExecDecode,
    ] {
        assert!(report.stage(stage).is_some(), "missing stage {stage}");
    }
    // Records are in stage order.
    let order: Vec<_> = report.stages.iter().map(|r| r.stage).collect();
    let mut sorted = order.clone();
    sorted.sort();
    assert_eq!(order, sorted);
    // No Deriv stage unless requested.
    assert!(report.stage(Stage::Deriv).is_none());
    assert_eq!(
        report.stage(Stage::Network).unwrap().get("species"),
        Some(out.artifact.network.species_count() as f64)
    );
    assert!(report.total_seconds > 0.0);
    // Report counts are the optimizer's stage counts.
    assert_eq!(report.counts, out.artifact.compiled.stages);
}

#[test]
fn memory_cache_shares_one_artifact() {
    let session = CompilerSession::new(OptLevel::Full);
    let src = salted("memorycache");
    let a = session.compile_source("m.rdl", &src).unwrap();
    let b = session.compile_source("m.rdl", &src).unwrap();
    assert!(Arc::ptr_eq(&a.artifact, &b.artifact));
    assert_ne!(a.status, b.status);
}

#[test]
fn changed_source_and_options_miss() {
    let src = salted("invalidation");
    let full = CompilerSession::new(OptLevel::Full)
        .compile_source("m.rdl", &src)
        .unwrap();
    let touched = CompilerSession::new(OptLevel::Full)
        .compile_source("m.rdl", &format!("{src} "))
        .unwrap();
    assert_ne!(full.artifact.key, touched.artifact.key);
    let algebraic = CompilerSession::new(OptLevel::Algebraic)
        .compile_source("m.rdl", &src)
        .unwrap();
    assert_ne!(full.artifact.key, algebraic.artifact.key);
    let mut opts = SessionOptions::new(OptLevel::Full);
    opts.deriv = true;
    let with_deriv = CompilerSession::with_options(opts)
        .compile_source("m.rdl", &src)
        .unwrap();
    assert_ne!(full.artifact.key, with_deriv.artifact.key);
    assert!(with_deriv.artifact.jacobian.is_some());
    assert!(with_deriv.artifact.report.stage(Stage::Deriv).is_some());
}

#[test]
fn bypass_always_compiles_cold() {
    let mut opts = SessionOptions::new(OptLevel::Full);
    opts.cache = CacheMode::Bypass;
    let session = CompilerSession::with_options(opts);
    let src = salted("bypass");
    let a = session.compile_source("m.rdl", &src).unwrap();
    let b = session.compile_source("m.rdl", &src).unwrap();
    assert_eq!(a.status, cache::CacheStatus::Cold);
    assert_eq!(b.status, cache::CacheStatus::Cold);
    assert!(!Arc::ptr_eq(&a.artifact, &b.artifact));
}

#[test]
fn disk_cache_round_trips_identically() {
    let dir = std::env::temp_dir().join(format!("rms-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = SessionOptions::new(OptLevel::Full);
    opts.cache_dir = Some(dir.clone());
    opts.deriv = true;
    let session = CompilerSession::with_options(opts);
    let src = salted("diskroundtrip");

    let cold = session.compile_source("m.rdl", &src).unwrap();
    assert_eq!(cold.status, cache::CacheStatus::Cold);

    // Forget the in-memory copy; the next compile must revive from disk.
    cache::clear_memory();
    let disk = session.compile_source("m.rdl", &src).unwrap();
    assert_eq!(disk.status, cache::CacheStatus::Disk);

    assert_eq!(
        cold.artifact.compiled.tape.instrs,
        disk.artifact.compiled.tape.instrs
    );
    assert_eq!(cold.artifact.compiled.stages, disk.artifact.compiled.stages);
    assert_eq!(
        cold.artifact.system.rate_values,
        disk.artifact.system.rate_values
    );
    assert_eq!(cold.artifact.system.initial, disk.artifact.system.initial);
    assert_eq!(
        cold.artifact.system.species_names,
        disk.artifact.system.species_names
    );
    let (cj, dj) = (
        cold.artifact.jacobian.as_ref().unwrap(),
        disk.artifact.jacobian.as_ref().unwrap(),
    );
    assert_eq!(cj.entries, dj.entries);
    assert_eq!(cj.jac.instrs, dj.jac.instrs);
    assert_eq!(cold.artifact.report, disk.artifact.report);
    assert!(disk.artifact.exec.is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_compiles_build_once() {
    let src = salted("concurrent");
    let statuses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let src = &src;
                scope.spawn(move || {
                    CompilerSession::new(OptLevel::Full)
                        .compile_source("m.rdl", src)
                        .unwrap()
                        .status
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let cold = statuses
        .iter()
        .filter(|s| **s == cache::CacheStatus::Cold)
        .count();
    assert_eq!(cold, 1, "{statuses:?}");
}

#[test]
fn dump_ir_renders_requested_stage() {
    for (stage, needle) in [
        (Stage::Network, "\\ ["),
        (Stage::OdeGen, "d[TetraS_2]/dt"),
        (Stage::Cse, "dy0/dt"),
        (Stage::Lower, "; tape:"),
        (Stage::ExecDecode, "; exec tape:"),
    ] {
        let mut opts = SessionOptions::new(OptLevel::Full);
        opts.dump = Some(stage);
        let out = CompilerSession::with_options(opts)
            .compile_source("m.rdl", &salted("dump"))
            .unwrap();
        let dump = out.dump.unwrap_or_else(|| panic!("no dump for {stage}"));
        assert!(dump.contains(needle), "{stage} dump: {dump}");
    }
}

#[test]
fn diagnostics_carry_stage_and_span() {
    let err = CompilerSession::new(OptLevel::Full)
        .compile_source("m.rdl", "molecule = ;")
        .unwrap_err();
    assert_eq!(err.stage, Stage::Parse);
    assert!(err.span.is_some());

    let err = CompilerSession::new(OptLevel::Full)
        .compile_source("m.rdl", "rate A = B; rate B = A;")
        .unwrap_err();
    assert_eq!(err.stage, Stage::Rcip);

    let err: Diagnostic = CompilerSession::new(OptLevel::Full)
        .compile_source(
            "m.rdl",
            "molecule A = \"C\"; rule r { site atom C; action remove_h; rate K_missing; }",
        )
        .unwrap_err();
    assert_eq!(err.stage, Stage::Network);
}

#[test]
fn network_entry_point_caches_too() {
    use rms_rcip::RateTable;
    use rms_rdl::ReactionNetwork;

    let build = || {
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A-net-entry", 1.0);
        let b = n.add_abstract_species("B-net-entry", 0.0);
        n.add_reaction_event(rms_rdl::Reaction {
            reactants: vec![a],
            products: vec![b, b],
            rate: "K".into(),
            rule: "r".into(),
        });
        let rates = RateTable::parse("rate K = 2;").unwrap();
        (n, rates)
    };
    let session = CompilerSession::new(OptLevel::Full);
    let (n1, r1) = build();
    let (n2, r2) = build();
    let a = session.compile_network("prog", n1, r1).unwrap();
    let b = session.compile_network("prog", n2, r2).unwrap();
    assert!(Arc::ptr_eq(&a.artifact, &b.artifact));
    assert!(a.artifact.report.stage(Stage::Parse).is_none());
    assert!(a.artifact.report.stage(Stage::OdeGen).is_some());
}
