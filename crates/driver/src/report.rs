//! Per-stage pipeline instrumentation, serializable to JSON.
//!
//! "Reporting per-stage computational cost" is what lets the Table 1/2
//! harness attribute compile time and operation counts to individual
//! passes. The report is engine- and cache-independent: a cache-hit
//! compile reproduces the op-count fields of the cold compile that
//! produced the artifact.

use rms_core::StageCounts;
use rms_odegen::OpCounts;

use crate::stage::Stage;

/// One stage's observation: wall time plus ordered named metrics
/// (artifact sizes, op counts — whatever the stage measures).
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Which stage.
    pub stage: Stage,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Ordered `(name, value)` metrics.
    pub metrics: Vec<(String, f64)>,
}

impl StageRecord {
    /// New record with no metrics yet.
    pub fn new(stage: Stage, seconds: f64) -> StageRecord {
        StageRecord {
            stage,
            seconds,
            metrics: Vec::new(),
        }
    }

    /// Append a metric (builder style).
    pub fn metric(mut self, name: &str, value: f64) -> StageRecord {
        self.metrics.push((name.to_string(), value));
        self
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// The full compile-time report: model identity, per-stage records, and
/// the optimizer's Table 1 operation counts.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Model label (file name or workload case name).
    pub model: String,
    /// Optimization level display name.
    pub level: String,
    /// Species count (= equations).
    pub species: usize,
    /// Reaction count.
    pub reactions: usize,
    /// Distinct-valued rate constants.
    pub rates: usize,
    /// Per-stage records, execution order. Only stages that ran appear.
    pub stages: Vec<StageRecord>,
    /// The optimizer's per-stage operation counts (Table 1 numbers).
    pub counts: StageCounts,
    /// Total wall-clock seconds across all recorded stages.
    pub total_seconds: f64,
}

impl PipelineReport {
    /// The record for a stage, if it ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageRecord> {
        self.stages.iter().find(|r| r.stage == stage)
    }

    /// Recompute `total_seconds` from the stage records.
    pub fn finish(&mut self) {
        self.total_seconds = self.stages.iter().map(|r| r.seconds).sum();
    }

    /// Serialize to a JSON object (hand-rolled; the workspace carries no
    /// serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        push_str_field(&mut out, "model", &self.model);
        out.push(',');
        push_str_field(&mut out, "level", &self.level);
        out.push_str(&format!(
            ",\"species\":{},\"reactions\":{},\"rates\":{}",
            self.species, self.reactions, self.rates
        ));
        out.push_str(&format!(",\"total_seconds\":{:.9}", self.total_seconds));
        out.push_str(",\"counts\":{");
        push_counts(&mut out, "input", self.counts.input);
        out.push(',');
        push_counts(&mut out, "after_simplify", self.counts.after_simplify);
        out.push(',');
        push_counts(&mut out, "after_distribute", self.counts.after_distribute);
        out.push(',');
        push_counts(&mut out, "after_cse", self.counts.after_cse);
        out.push(',');
        push_counts(&mut out, "tape", self.counts.tape);
        out.push_str("},\"stages\":[");
        for (i, rec) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_str_field(&mut out, "stage", rec.stage.name());
            out.push_str(&format!(",\"seconds\":{:.9}", rec.seconds));
            for (name, value) in &rec.metrics {
                out.push(',');
                out.push_str(&format!("{}:{}", json_string(name), json_number(*value)));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_counts(out: &mut String, name: &str, counts: OpCounts) {
    out.push_str(&format!(
        "{}:{{\"mults\":{},\"adds\":{},\"total\":{}}}",
        json_string(name),
        counts.mults,
        counts.adds,
        counts.total()
    ));
}

fn push_str_field(out: &mut String, name: &str, value: &str) {
    out.push_str(&format!("{}:{}", json_string(name), json_string(value)));
}

/// JSON string literal with escaping.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a metric value: integral values without a fraction, others with
/// enough digits to round-trip timings.
fn json_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.9}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineReport {
        let mut r = PipelineReport {
            model: "m\"x\"".into(),
            level: "simplify+distopt+cse".into(),
            species: 3,
            reactions: 2,
            rates: 1,
            stages: vec![
                StageRecord::new(Stage::Parse, 0.5).metric("molecules", 2.0),
                StageRecord::new(Stage::Lower, 0.25).metric("instrs", 7.0),
            ],
            counts: StageCounts {
                input: OpCounts { mults: 10, adds: 5 },
                ..StageCounts::default()
            },
            total_seconds: 0.0,
        };
        r.finish();
        r
    }

    #[test]
    fn totals_sum_stage_seconds() {
        assert_eq!(sample().total_seconds, 0.75);
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"model\":\"m\\\"x\\\"\""));
        assert!(json.contains("\"input\":{\"mults\":10,\"adds\":5,\"total\":15}"));
        assert!(json.contains("\"stage\":\"parse\""));
        assert!(json.contains("\"molecules\":2"));
    }

    #[test]
    fn stage_lookup() {
        let r = sample();
        assert_eq!(r.stage(Stage::Parse).unwrap().get("molecules"), Some(2.0));
        assert!(r.stage(Stage::Cse).is_none());
    }
}
