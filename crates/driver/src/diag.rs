//! Span-carrying diagnostics: one error currency for the whole pipeline.
//!
//! Every frontend error (`RdlError`, `RcipError`, `OdegenError`) converts
//! into a [`Diagnostic`] tagged with the [`Stage`] that produced it and,
//! when the source position is known, a [`Span`]. `rmsc` renders
//! diagnostics against the original source text with a caret line.

use std::fmt;

use rms_odegen::OdegenError;
use rms_rcip::RcipError;
use rms_rdl::RdlError;

use crate::stage::Stage;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// How serious a diagnostic is: errors abort the compile, warnings ride
/// along on the produced artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Severity {
    /// The compile failed.
    #[default]
    Error,
    /// The compile succeeded but produced something the user should see
    /// (e.g. closure stopped at the generation cap without a fixpoint).
    Warning,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// A collection of diagnostics (the warnings attached to an artifact).
pub type Diagnostics = Vec<Diagnostic>;

/// A pipeline error or warning with provenance: which stage produced it,
/// where in the source (when known), and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stage that produced the diagnostic.
    pub stage: Stage,
    /// Human-readable description.
    pub message: String,
    /// Source position, when the producing stage tracks one.
    pub span: Option<Span>,
    /// Error (aborts the compile) or warning (carried on the artifact).
    pub severity: Severity,
}

impl Diagnostic {
    /// A spanless error diagnostic.
    pub fn new(stage: Stage, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            stage,
            message: message.into(),
            span: None,
            severity: Severity::Error,
        }
    }

    /// A spanless warning diagnostic.
    pub fn warning(stage: Stage, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::new(stage, message)
        }
    }

    /// Attach a span (1-based line/column; line 0 means "unknown" and is
    /// dropped).
    pub fn with_span(mut self, line: usize, column: usize) -> Diagnostic {
        if line > 0 {
            self.span = Some(Span { line, column });
        }
        self
    }

    /// Render against the source text, rustc-style:
    ///
    /// ```text
    /// error[parse]: expected ';'
    ///  --> model.rdl:3:7
    ///   |
    /// 3 | molecule X = "C"
    ///   |       ^
    /// ```
    ///
    /// Without a span only the header line is produced.
    pub fn render(&self, filename: &str, source: &str) -> String {
        let mut out = format!(
            "{}[{}]: {}",
            self.severity.label(),
            self.stage,
            self.message
        );
        let Some(span) = self.span else {
            return out;
        };
        out.push_str(&format!("\n --> {filename}:{}:{}", span.line, span.column));
        if let Some(text) = source.lines().nth(span.line - 1) {
            let gutter = span.line.to_string();
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!("\n{pad} |"));
            out.push_str(&format!("\n{gutter} | {text}"));
            let caret_pad = " ".repeat(span.column.saturating_sub(1));
            out.push_str(&format!("\n{pad} | {caret_pad}^"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.label(),
            self.stage,
            self.message
        )?;
        if let Some(span) = self.span {
            write!(f, " at {}:{}", span.line, span.column)?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

impl From<RcipError> for Diagnostic {
    fn from(e: RcipError) -> Diagnostic {
        // Rcip spans are relative to the extracted rate sub-source, not
        // the enclosing RDL file, so only the position-free message is
        // kept; the message itself still carries the line:column of the
        // sub-source for standalone rate files.
        Diagnostic::new(Stage::Rcip, e.to_string())
    }
}

impl From<RdlError> for Diagnostic {
    fn from(e: RdlError) -> Diagnostic {
        match e {
            RdlError::Syntax {
                line,
                column,
                ref message,
            } => Diagnostic::new(Stage::Parse, message.clone()).with_span(line, column),
            RdlError::DuplicateMolecule(_)
            | RdlError::DuplicateRule(_)
            | RdlError::InvalidRule { .. } => Diagnostic::new(Stage::Parse, e.to_string()),
            RdlError::BadVariantRange { .. } => Diagnostic::new(Stage::Expand, e.to_string()),
            RdlError::Rcip(inner) => inner.into(),
            RdlError::BadSmiles { .. }
            | RdlError::UnknownMolecule { .. }
            | RdlError::UnknownRate { .. }
            | RdlError::SpeciesLimitExceeded(_)
            | RdlError::ActionFailed { .. } => Diagnostic::new(Stage::Network, e.to_string()),
        }
    }
}

impl From<OdegenError> for Diagnostic {
    fn from(e: OdegenError) -> Diagnostic {
        Diagnostic::new(Stage::OdeGen, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syntax_error_maps_to_parse_with_span() {
        let d: Diagnostic = RdlError::Syntax {
            line: 3,
            column: 7,
            message: "expected ';'".into(),
        }
        .into();
        assert_eq!(d.stage, Stage::Parse);
        assert_eq!(d.span, Some(Span { line: 3, column: 7 }));
    }

    #[test]
    fn zero_line_span_dropped() {
        let d: Diagnostic = RdlError::Syntax {
            line: 0,
            column: 0,
            message: "m".into(),
        }
        .into();
        assert_eq!(d.span, None);
    }

    #[test]
    fn render_points_at_column() {
        let d = Diagnostic::new(Stage::Parse, "expected ';'").with_span(2, 5);
        let src = "line one\nabc def\nline three";
        let rendered = d.render("m.rdl", src);
        assert_eq!(
            rendered,
            "error[parse]: expected ';'\n --> m.rdl:2:5\n  |\n2 | abc def\n  |     ^"
        );
    }

    #[test]
    fn render_without_span_is_header_only() {
        let d = Diagnostic::new(Stage::OdeGen, "boom");
        assert_eq!(d.render("m.rdl", "src"), "error[odegen]: boom");
    }

    #[test]
    fn rcip_carries_stage() {
        let d: Diagnostic = RcipError::Cycle(vec!["A".into(), "B".into(), "A".into()]).into();
        assert_eq!(d.stage, Stage::Rcip);
        assert!(d.message.contains("A -> B -> A"));
    }
}
