//! Best-effort binary serialization for the on-disk artifact cache.
//!
//! Hand-rolled, versioned little-endian format (the workspace carries no
//! serde). The disk layer is a cache, not an interchange format: any
//! parse problem, version skew, or key mismatch is treated as a miss and
//! the model recompiles cold.
//!
//! What is stored: network topology (names/initials/reactions — molecule
//! structures are intentionally dropped), the rate table, the optimized
//! forest + tape + stage counts, the optional Jacobian tapes, and the
//! pipeline report. The ODE system is *not* stored — it regenerates
//! deterministically from network + rates, and the optional exec tape
//! re-decodes from the stored tape.

use std::io::Write as _;
use std::path::Path;

use rms_core::{
    CompiledOde, Expr, ExprForest, Instr, JacobianTapes, Operand, StageCounts, Tape, TempId,
};
use rms_odegen::OpCounts;
use rms_rcip::{RateId, RateTable};
use rms_rdl::{Reaction, ReactionNetwork, SpeciesId};

use crate::report::{PipelineReport, StageRecord};
use crate::session::CompiledArtifact;
use crate::stage::Stage;

const MAGIC: &[u8; 4] = b"RMSC";
const VERSION: u32 = 2;

/// Why a disk-cache load failed. The caller's policy differs: a missing
/// entry is an ordinary miss, while a corrupt one should be quarantined
/// so the cold compile can rewrite a good entry in its place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadError {
    /// No readable file at the path (never cached, or unreadable).
    Missing,
    /// The file exists but failed the magic, version, checksum, key, or
    /// structural checks — truncated, bit-flipped, stale-format, or
    /// foreign content.
    Corrupt,
}

/// FNV-1a 64-bit over `bytes`: cheap, dependency-free integrity check
/// for the payload (this is corruption detection, not authentication).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Move a corrupt cache entry aside (same directory, `.corrupt` suffix)
/// so the next store can rewrite a good file and the bad bytes stay
/// available for postmortems. Best-effort: on rename failure the entry
/// is deleted instead, and failure to delete is swallowed.
pub fn quarantine(path: &Path) {
    let mut quarantined = path.as_os_str().to_owned();
    quarantined.push(".corrupt");
    if std::fs::rename(path, &quarantined).is_err() {
        let _ = std::fs::remove_file(path);
    }
}

/// The disk-resident subset of a [`CompiledArtifact`]; the session
/// regenerates the rest on revival.
pub struct DiskArtifact {
    /// Model label.
    pub name: String,
    /// Network topology (structureless species).
    pub network: ReactionNetwork,
    /// Rate table (ids and canonical names reproduced exactly).
    pub rates: RateTable,
    /// Optimizer output.
    pub compiled: CompiledOde,
    /// Jacobian tapes, when the original compile ran *Deriv*.
    pub jacobian: Option<JacobianTapes>,
    /// The original compile's report.
    pub report: PipelineReport,
    /// Content address (verified against the requested key on load).
    pub key: u128,
    /// Equation-generator simplify switch of the original compile.
    pub gen_simplify: bool,
}

/// Serialize `artifact` to `path`, via a temp file + rename so a crashed
/// writer never leaves a torn entry. Errors are swallowed: the disk
/// layer is best-effort.
pub fn store(path: &Path, artifact: &CompiledArtifact) {
    let mut w = Writer::default();
    w.u128(artifact.key);
    w.bool(artifact.gen_simplify);
    w.str(&artifact.name);
    write_network(&mut w, &artifact.network);
    write_rates(&mut w, &artifact.rates);
    write_forest(&mut w, &artifact.compiled.forest);
    write_tape(&mut w, &artifact.compiled.tape);
    write_stage_counts(&mut w, &artifact.compiled.stages);
    match &artifact.jacobian {
        None => w.u8(0),
        Some(j) => {
            w.u8(1);
            write_tape(&mut w, &j.rhs);
            write_tape(&mut w, &j.jac);
            w.usize(j.entries.len());
            for &(r, c) in &j.entries {
                w.u32(r);
                w.u32(c);
            }
            w.usize(j.n_species);
        }
    }
    write_report(&mut w, &artifact.report);

    // Header: magic + version + payload checksum. The checksum turns a
    // silent bit flip in stored f64 data (which would otherwise revive
    // into a wrong-but-plausible artifact) into a detectable corruption.
    let mut h = Writer::default();
    h.bytes(MAGIC);
    h.u32(VERSION);
    h.u64(fnv1a64(&w.buf));

    let Some(dir) = path.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let ok = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(&h.buf).and_then(|()| f.write_all(&w.buf)))
        .and_then(|()| std::fs::rename(&tmp, path));
    if ok.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Deserialize the artifact at `path`. [`LoadError::Missing`] when the
/// file cannot be read at all; [`LoadError::Corrupt`] when it exists but
/// fails any format, checksum, version, key, or structural check.
pub fn load(path: &Path, expected_key: u128) -> Result<DiskArtifact, LoadError> {
    let buf = std::fs::read(path).map_err(|_| LoadError::Missing)?;
    let mut r = Reader { buf: &buf, at: 0 };
    let header_ok = (|| {
        if r.bytes(4)? != MAGIC || r.u32()? != VERSION {
            return None;
        }
        let checksum = r.u64()?;
        (checksum == fnv1a64(&buf[r.at..])).then_some(())
    })();
    if header_ok.is_none() {
        return Err(LoadError::Corrupt);
    }
    parse_payload(&mut r, expected_key).ok_or(LoadError::Corrupt)
}

/// Parse the checksummed payload (everything after the header).
fn parse_payload(r: &mut Reader, expected_key: u128) -> Option<DiskArtifact> {
    let key = r.u128()?;
    if key != expected_key {
        return None;
    }
    let gen_simplify = r.bool()?;
    let name = r.str()?;
    let network = read_network(r)?;
    let rates = read_rates(r)?;
    let forest = read_forest(r)?;
    let tape = read_tape(r)?;
    tape.validate().ok()?;
    let stages = read_stage_counts(r)?;
    let jacobian = match r.u8()? {
        0 => None,
        1 => {
            let rhs = read_tape(r)?;
            let jac = read_tape(r)?;
            let n = r.usize()?;
            let mut entries = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                entries.push((r.u32()?, r.u32()?));
            }
            let n_species = r.usize()?;
            // The Jacobian pair shares one register file: `jac` reads
            // registers `rhs` wrote and stores one slot per nonzero, so
            // the tapes only validate as a program, not individually.
            rms_core::validate_program(&[(&rhs, n_species), (&jac, entries.len())]).ok()?;
            Some(JacobianTapes {
                rhs,
                jac,
                entries,
                n_species,
            })
        }
        _ => return None,
    };
    let report = read_report(r)?;
    if r.at != r.buf.len() {
        return None;
    }
    Some(DiskArtifact {
        name,
        network,
        rates,
        compiled: CompiledOde {
            forest,
            tape,
            stages,
        },
        jacobian,
        report,
        key,
        gen_simplify,
    })
}

// ---- primitives -------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.bytes(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.bytes(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn bytes(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.at..end];
        self.at = end;
        Some(out)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.bytes(1)?[0])
    }
    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }
    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.bytes(16)?.try_into().ok()?))
    }
    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.usize()?;
        String::from_utf8(self.bytes(n)?.to_vec()).ok()
    }
}

// ---- composites -------------------------------------------------------

fn write_network(w: &mut Writer, network: &ReactionNetwork) {
    w.usize(network.species_count());
    for (_, species) in network.species_iter() {
        w.str(&species.name);
        w.f64(species.initial_concentration);
    }
    w.usize(network.reaction_count());
    for reaction in network.reactions() {
        w.usize(reaction.reactants.len());
        for id in &reaction.reactants {
            w.u32(id.0);
        }
        w.usize(reaction.products.len());
        for id in &reaction.products {
            w.u32(id.0);
        }
        w.str(&reaction.rate);
        w.str(&reaction.rule);
    }
}

fn read_network(r: &mut Reader) -> Option<ReactionNetwork> {
    let mut network = ReactionNetwork::new();
    let n_species = r.usize()?;
    for i in 0..n_species {
        let name = r.str()?;
        let initial = r.f64()?;
        let id = network.add_abstract_species(&name, initial);
        if id != SpeciesId(i as u32) {
            return None; // duplicate name: ids would shift
        }
    }
    let n_reactions = r.usize()?;
    for _ in 0..n_reactions {
        let n = r.usize()?;
        let mut reactants = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let id = r.u32()?;
            if id as usize >= n_species {
                return None;
            }
            reactants.push(SpeciesId(id));
        }
        let n = r.usize()?;
        let mut products = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let id = r.u32()?;
            if id as usize >= n_species {
                return None;
            }
            products.push(SpeciesId(id));
        }
        let rate = r.str()?;
        let rule = r.str()?;
        network.add_reaction_event(Reaction {
            reactants,
            products,
            rate,
            rule,
        });
    }
    Some(network)
}

fn write_rates(w: &mut Writer, rates: &RateTable) {
    w.usize(rates.name_count());
    for name in rates.names() {
        w.str(name);
        w.f64(rates.get(name).expect("listed name has a value"));
    }
    w.usize(rates.distinct_count());
    for id in 0..rates.distinct_count() {
        match rates.bounds(RateId(id as u32)) {
            None => w.u8(0),
            Some(b) => {
                w.u8(1);
                w.f64(b.lo);
                w.f64(b.hi);
            }
        }
    }
}

fn read_rates(r: &mut Reader) -> Option<RateTable> {
    let mut rates = RateTable::default();
    let n = r.usize()?;
    for _ in 0..n {
        let name = r.str()?;
        let value = r.f64()?;
        rates.define(&name, value).ok()?;
    }
    let distinct = r.usize()?;
    if distinct != rates.distinct_count() {
        return None;
    }
    for id in 0..distinct {
        match r.u8()? {
            0 => {}
            1 => {
                let lo = r.f64()?;
                let hi = r.f64()?;
                rates.set_bounds(RateId(id as u32), lo, hi).ok()?;
            }
            _ => return None,
        }
    }
    Some(rates)
}

fn write_expr(w: &mut Writer, expr: &Expr) {
    match expr {
        Expr::Const(c) => {
            w.u8(0);
            w.f64(c.0);
        }
        Expr::Rate(i) => {
            w.u8(1);
            w.u32(*i);
        }
        Expr::Species(i) => {
            w.u8(2);
            w.u32(*i);
        }
        Expr::Temp(t) => {
            w.u8(3);
            w.u32(t.0);
        }
        Expr::Prod(c, factors) => {
            w.u8(4);
            w.f64(c.0);
            w.usize(factors.len());
            for f in factors {
                write_expr(w, f);
            }
        }
        Expr::Sum(children) => {
            w.u8(5);
            w.usize(children.len());
            for c in children {
                write_expr(w, c);
            }
        }
    }
}

fn read_expr(r: &mut Reader, depth: usize) -> Option<Expr> {
    if depth > 512 {
        return None; // corrupt nesting; real forests are shallow
    }
    Some(match r.u8()? {
        0 => Expr::constant(r.f64()?),
        1 => Expr::Rate(r.u32()?),
        2 => Expr::Species(r.u32()?),
        3 => Expr::Temp(TempId(r.u32()?)),
        4 => {
            let c = r.f64()?;
            let n = r.usize()?;
            let mut factors = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                factors.push(read_expr(r, depth + 1)?);
            }
            // Bypass the smart constructor: the stored tree is already
            // canonical; re-normalizing must not alter it.
            Expr::Prod(rms_core::Coeff(c), factors)
        }
        5 => {
            let n = r.usize()?;
            let mut children = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                children.push(read_expr(r, depth + 1)?);
            }
            Expr::Sum(children)
        }
        _ => return None,
    })
}

fn write_forest(w: &mut Writer, forest: &ExprForest) {
    w.usize(forest.temps.len());
    for t in &forest.temps {
        write_expr(w, t);
    }
    w.usize(forest.rhs.len());
    for e in &forest.rhs {
        write_expr(w, e);
    }
    w.usize(forest.n_species);
    w.usize(forest.n_rates);
}

fn read_forest(r: &mut Reader) -> Option<ExprForest> {
    let n = r.usize()?;
    let mut temps = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        temps.push(read_expr(r, 0)?);
    }
    let n = r.usize()?;
    let mut rhs = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        rhs.push(read_expr(r, 0)?);
    }
    let n_species = r.usize()?;
    let n_rates = r.usize()?;
    Some(ExprForest {
        temps,
        rhs,
        n_species,
        n_rates,
    })
}

fn write_operand(w: &mut Writer, op: &Operand) {
    match op {
        Operand::Reg(i) => {
            w.u8(0);
            w.u32(*i);
        }
        Operand::Species(i) => {
            w.u8(1);
            w.u32(*i);
        }
        Operand::Rate(i) => {
            w.u8(2);
            w.u32(*i);
        }
        Operand::Const(v) => {
            w.u8(3);
            w.f64(*v);
        }
    }
}

fn read_operand(r: &mut Reader) -> Option<Operand> {
    Some(match r.u8()? {
        0 => Operand::Reg(r.u32()?),
        1 => Operand::Species(r.u32()?),
        2 => Operand::Rate(r.u32()?),
        3 => Operand::Const(r.f64()?),
        _ => return None,
    })
}

fn write_tape(w: &mut Writer, tape: &Tape) {
    w.usize(tape.instrs.len());
    for instr in &tape.instrs {
        match instr {
            Instr::Add { dst, a, b } => {
                w.u8(0);
                w.u32(*dst);
                write_operand(w, a);
                write_operand(w, b);
            }
            Instr::Sub { dst, a, b } => {
                w.u8(1);
                w.u32(*dst);
                write_operand(w, a);
                write_operand(w, b);
            }
            Instr::Mul { dst, a, b } => {
                w.u8(2);
                w.u32(*dst);
                write_operand(w, a);
                write_operand(w, b);
            }
            Instr::Neg { dst, a } => {
                w.u8(3);
                w.u32(*dst);
                write_operand(w, a);
            }
            Instr::Copy { dst, a } => {
                w.u8(4);
                w.u32(*dst);
                write_operand(w, a);
            }
            Instr::Store { idx, a } => {
                w.u8(5);
                w.u32(*idx);
                write_operand(w, a);
            }
        }
    }
    w.usize(tape.n_regs);
    w.usize(tape.n_species);
    w.usize(tape.n_rates);
}

fn read_tape(r: &mut Reader) -> Option<Tape> {
    let n = r.usize()?;
    let mut instrs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let tag = r.u8()?;
        instrs.push(match tag {
            0..=2 => {
                let dst = r.u32()?;
                let a = read_operand(r)?;
                let b = read_operand(r)?;
                match tag {
                    0 => Instr::Add { dst, a, b },
                    1 => Instr::Sub { dst, a, b },
                    _ => Instr::Mul { dst, a, b },
                }
            }
            3 => Instr::Neg {
                dst: r.u32()?,
                a: read_operand(r)?,
            },
            4 => Instr::Copy {
                dst: r.u32()?,
                a: read_operand(r)?,
            },
            5 => Instr::Store {
                idx: r.u32()?,
                a: read_operand(r)?,
            },
            _ => return None,
        });
    }
    let n_regs = r.usize()?;
    let n_species = r.usize()?;
    let n_rates = r.usize()?;
    // No standalone validation here: a secondary Jacobian tape is only
    // well-formed as part of a multi-tape program (see `load`).
    Some(Tape {
        instrs,
        n_regs,
        n_species,
        n_rates,
    })
}

fn write_counts(w: &mut Writer, c: OpCounts) {
    w.usize(c.mults);
    w.usize(c.adds);
}

fn read_counts(r: &mut Reader) -> Option<OpCounts> {
    Some(OpCounts {
        mults: r.usize()?,
        adds: r.usize()?,
    })
}

fn write_stage_counts(w: &mut Writer, s: &StageCounts) {
    write_counts(w, s.input);
    write_counts(w, s.after_simplify);
    write_counts(w, s.after_distribute);
    write_counts(w, s.after_cse);
    write_counts(w, s.tape);
}

fn read_stage_counts(r: &mut Reader) -> Option<StageCounts> {
    Some(StageCounts {
        input: read_counts(r)?,
        after_simplify: read_counts(r)?,
        after_distribute: read_counts(r)?,
        after_cse: read_counts(r)?,
        tape: read_counts(r)?,
    })
}

fn write_report(w: &mut Writer, report: &PipelineReport) {
    w.str(&report.model);
    w.str(&report.level);
    w.usize(report.species);
    w.usize(report.reactions);
    w.usize(report.rates);
    w.f64(report.total_seconds);
    write_stage_counts(w, &report.counts);
    w.usize(report.stages.len());
    for rec in &report.stages {
        w.str(rec.stage.name());
        w.f64(rec.seconds);
        w.usize(rec.metrics.len());
        for (name, value) in &rec.metrics {
            w.str(name);
            w.f64(*value);
        }
    }
}

fn read_report(r: &mut Reader) -> Option<PipelineReport> {
    let model = r.str()?;
    let level = r.str()?;
    let species = r.usize()?;
    let reactions = r.usize()?;
    let rates = r.usize()?;
    let total_seconds = r.f64()?;
    let counts = read_stage_counts(r)?;
    let n = r.usize()?;
    let mut stages = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let stage: Stage = r.str()?.parse().ok()?;
        let seconds = r.f64()?;
        let m = r.usize()?;
        let mut metrics = Vec::with_capacity(m.min(64));
        for _ in 0..m {
            let name = r.str()?;
            let value = r.f64()?;
            metrics.push((name, value));
        }
        stages.push(StageRecord {
            stage,
            seconds,
            metrics,
        });
    }
    Some(PipelineReport {
        model,
        level,
        species,
        reactions,
        rates,
        stages,
        counts,
        total_seconds,
    })
}
