//! The pipeline stage vocabulary.
//!
//! One name per box of the paper's Figure 2 (plus the post-paper
//! execution stages): the driver times each stage, reports its artifact
//! sizes, and can dump its IR. The order below is execution order —
//! note that rate evaluation (*Rcip*) runs before network closure
//! (*Network*) because rule validation needs the evaluated rate table.

use std::fmt;
use std::str::FromStr;

/// A pipeline stage, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// RDL text → AST (`rms-rdl` parser).
    Parse,
    /// Molecule variant expansion (`CS{n}C for n in 2..4` → seeds).
    Expand,
    /// Rate-constant evaluation and value dedup (`rms-rcip`).
    Rcip,
    /// Rule closure: AST + seeds + rates → reaction network.
    Network,
    /// Network → ODE system (`rms-odegen`, with on-the-fly §3.1).
    OdeGen,
    /// §3.1 equation simplification over the expression forest.
    Simplify,
    /// §3.2 distributive optimization.
    Distribute,
    /// §3.3 domain CSE (including the distribute∘cse fixpoint rounds).
    Cse,
    /// Symbolic differentiation into sparse Jacobian tapes.
    Deriv,
    /// Forest → register tape (codegen + register compaction).
    Lower,
    /// Tape → pre-decoded fused execution tape.
    ExecDecode,
    /// Tape → C source → shared object (native kernel).
    Codegen,
}

impl Stage {
    /// All stages, execution order.
    pub const ALL: [Stage; 12] = [
        Stage::Parse,
        Stage::Expand,
        Stage::Rcip,
        Stage::Network,
        Stage::OdeGen,
        Stage::Simplify,
        Stage::Distribute,
        Stage::Cse,
        Stage::Deriv,
        Stage::Lower,
        Stage::ExecDecode,
        Stage::Codegen,
    ];

    /// Stable kebab-case name (CLI `--dump-ir=<stage>` and JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Expand => "expand",
            Stage::Rcip => "rcip",
            Stage::Network => "network",
            Stage::OdeGen => "odegen",
            Stage::Simplify => "simplify",
            Stage::Distribute => "distribute",
            Stage::Cse => "cse",
            Stage::Deriv => "deriv",
            Stage::Lower => "lower",
            Stage::ExecDecode => "exec-decode",
            Stage::Codegen => "codegen",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Stage {
    type Err = String;

    fn from_str(s: &str) -> Result<Stage, String> {
        Stage::ALL
            .into_iter()
            .find(|stage| stage.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown stage '{s}' (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(stage.name().parse::<Stage>().unwrap(), stage);
        }
    }

    #[test]
    fn unknown_name_lists_choices() {
        let err = "nope".parse::<Stage>().unwrap_err();
        assert!(err.contains("unknown stage 'nope'"));
        assert!(err.contains("exec-decode"));
    }
}
