//! Content-addressed artifact cache.
//!
//! Keyed by a 128-bit fingerprint of the model source plus every option
//! that affects compilation (see `CompilerSession::fingerprint`). Two
//! layers:
//!
//! * **in-memory** — a process-wide map of `Arc`-shared artifacts with
//!   per-key build locks, so concurrent requests for the same model
//!   compile it exactly once per process (the others block and share the
//!   result);
//! * **on-disk** (optional) — a `.rms-cache/` directory of serialized
//!   artifacts surviving across processes; best-effort (I/O errors are
//!   treated as misses, writes go through a temp file + rename).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::diag::Diagnostic;
use crate::session::CompiledArtifact;

/// How a compile request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Compiled from scratch this call.
    Cold,
    /// Served from the in-process cache.
    Memory,
    /// Revived from the on-disk cache.
    Disk,
}

impl CacheStatus {
    /// Stable lowercase name (JSON/CLI).
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Cold => "cold",
            CacheStatus::Memory => "memory",
            CacheStatus::Disk => "disk",
        }
    }
}

/// Whether a session consults the cache at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Read and populate both cache layers.
    #[default]
    ReadWrite,
    /// Always compile cold; never read or write either layer.
    Bypass,
}

/// Cumulative process-wide cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// In-memory hits.
    pub hits: u64,
    /// On-disk revivals.
    pub disk_hits: u64,
    /// Successful cold builds.
    pub misses: u64,
    /// In-memory artifacts dropped by the memory-budget eviction.
    pub evictions: u64,
    /// Corrupt on-disk entries moved aside by the read path.
    pub quarantines: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static QUARANTINES: AtomicU64 = AtomicU64::new(0);
/// Memory budget in bytes; `u64::MAX` = unlimited (the default).
static MEMORY_BUDGET: AtomicU64 = AtomicU64::new(u64::MAX);
/// Monotonic logical clock for LRU ordering.
static USE_CLOCK: AtomicU64 = AtomicU64::new(0);

type Slot = Arc<Mutex<Option<Arc<CompiledArtifact>>>>;

/// One cached key: the artifact slot plus LRU bookkeeping.
struct Entry {
    slot: Slot,
    /// `USE_CLOCK` value at the last lookup (under the registry lock).
    last_used: u64,
}

impl Default for Entry {
    fn default() -> Entry {
        Entry {
            slot: Slot::default(),
            last_used: USE_CLOCK.fetch_add(1, Ordering::Relaxed),
        }
    }
}

fn registry() -> &'static Mutex<HashMap<u128, Entry>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u128, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Lock, tolerating poisoning: a panicked builder must not wedge every
/// later compile of the same model.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Snapshot of the process-wide statistics.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        quarantines: QUARANTINES.load(Ordering::Relaxed),
    }
}

/// Record that a corrupt disk entry was quarantined (called by the
/// session's disk-read path).
pub fn note_quarantine() {
    QUARANTINES.fetch_add(1, Ordering::Relaxed);
}

/// Bound the in-memory layer to roughly `bytes` (`None` = unlimited).
/// When an insert pushes the estimated total over the budget,
/// least-recently-used artifacts are dropped (the disk layer, when
/// configured, still serves them without a recompile).
pub fn set_memory_budget(bytes: Option<u64>) {
    MEMORY_BUDGET.store(bytes.unwrap_or(u64::MAX), Ordering::Relaxed);
    if bytes.is_some() {
        enforce_budget(None);
    }
}

/// Evict least-recently-used artifacts until the estimated total fits
/// the budget. `protect` (the key just inserted) is never evicted, so a
/// single over-budget artifact still caches. Slots whose mutex is held
/// elsewhere (a build in progress) are skipped via `try_lock`; lock
/// order is registry → slot, the same as `lookup_or_build`, and slot
/// acquisition never blocks, so the inversion cannot deadlock.
fn enforce_budget(protect: Option<u128>) {
    let budget = MEMORY_BUDGET.load(Ordering::Relaxed);
    if budget == u64::MAX {
        return;
    }
    let mut reg = lock(registry());
    let mut filled: Vec<(u128, u64, u64)> = Vec::new();
    let mut total: u64 = 0;
    for (&key, entry) in reg.iter() {
        let Ok(guard) = entry.slot.try_lock() else {
            continue;
        };
        if let Some(artifact) = guard.as_ref() {
            let bytes = artifact.approx_bytes();
            total += bytes;
            filled.push((key, entry.last_used, bytes));
        }
    }
    if total <= budget {
        return;
    }
    filled.sort_by_key(|&(_, last_used, _)| last_used);
    for (key, _, bytes) in filled {
        if Some(key) == protect {
            continue;
        }
        if let Some(entry) = reg.get(&key) {
            if let Ok(mut guard) = entry.slot.try_lock() {
                *guard = None;
            } else {
                continue; // picked up by a hit since the scan; keep it
            }
        }
        reg.remove(&key);
        EVICTIONS.fetch_add(1, Ordering::Relaxed);
        total = total.saturating_sub(bytes);
        if total <= budget {
            break;
        }
    }
}

/// Drop every in-memory artifact (the disk layer is untouched). Intended
/// for tests that exercise the disk path.
pub fn clear_memory() {
    lock(registry()).clear();
}

/// Path of the serialized artifact for `key` under a cache directory.
pub fn disk_path(dir: &Path, key: u128) -> PathBuf {
    dir.join(format!("{key:032x}.rmsc"))
}

/// Serve `key` from memory, then disk, then a cold build — whichever
/// comes first. The per-key slot lock guarantees at most one cold build
/// per key per process even under concurrency; losers of the race block
/// and then share the winner's artifact.
///
/// `try_disk` and `persist` are no-ops for sessions without a cache
/// directory. A failed build leaves the slot empty (the next request
/// retries) and counts nothing.
pub fn lookup_or_build(
    key: u128,
    try_disk: impl FnOnce() -> Option<CompiledArtifact>,
    build: impl FnOnce() -> Result<CompiledArtifact, Diagnostic>,
    persist: impl FnOnce(&CompiledArtifact),
) -> Result<(Arc<CompiledArtifact>, CacheStatus), Diagnostic> {
    let slot: Slot = {
        let mut reg = lock(registry());
        let entry = reg.entry(key).or_default();
        entry.last_used = USE_CLOCK.fetch_add(1, Ordering::Relaxed);
        entry.slot.clone()
    };
    let mut guard = lock(&slot);
    if let Some(artifact) = guard.as_ref() {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok((Arc::clone(artifact), CacheStatus::Memory));
    }
    if let Some(artifact) = try_disk() {
        DISK_HITS.fetch_add(1, Ordering::Relaxed);
        let artifact = Arc::new(artifact);
        *guard = Some(Arc::clone(&artifact));
        drop(guard);
        enforce_budget(Some(key));
        return Ok((artifact, CacheStatus::Disk));
    }
    let artifact = build()?;
    MISSES.fetch_add(1, Ordering::Relaxed);
    persist(&artifact);
    let artifact = Arc::new(artifact);
    *guard = Some(Arc::clone(&artifact));
    drop(guard);
    enforce_budget(Some(key));
    Ok((artifact, CacheStatus::Cold))
}
