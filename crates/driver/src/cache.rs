//! Content-addressed artifact cache.
//!
//! Keyed by a 128-bit fingerprint of the model source plus every option
//! that affects compilation (see `CompilerSession::fingerprint`). Two
//! layers:
//!
//! * **in-memory** — a process-wide map of `Arc`-shared artifacts with
//!   per-key build locks, so concurrent requests for the same model
//!   compile it exactly once per process (the others block and share the
//!   result);
//! * **on-disk** (optional) — a `.rms-cache/` directory of serialized
//!   artifacts surviving across processes; best-effort (I/O errors are
//!   treated as misses, writes go through a temp file + rename).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::diag::Diagnostic;
use crate::session::CompiledArtifact;

/// How a compile request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Compiled from scratch this call.
    Cold,
    /// Served from the in-process cache.
    Memory,
    /// Revived from the on-disk cache.
    Disk,
}

impl CacheStatus {
    /// Stable lowercase name (JSON/CLI).
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Cold => "cold",
            CacheStatus::Memory => "memory",
            CacheStatus::Disk => "disk",
        }
    }
}

/// Whether a session consults the cache at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Read and populate both cache layers.
    #[default]
    ReadWrite,
    /// Always compile cold; never read or write either layer.
    Bypass,
}

/// Cumulative process-wide cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// In-memory hits.
    pub hits: u64,
    /// On-disk revivals.
    pub disk_hits: u64,
    /// Successful cold builds.
    pub misses: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

type Slot = Arc<Mutex<Option<Arc<CompiledArtifact>>>>;

fn registry() -> &'static Mutex<HashMap<u128, Slot>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u128, Slot>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Lock, tolerating poisoning: a panicked builder must not wedge every
/// later compile of the same model.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Snapshot of the process-wide statistics.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Drop every in-memory artifact (the disk layer is untouched). Intended
/// for tests that exercise the disk path.
pub fn clear_memory() {
    lock(registry()).clear();
}

/// Path of the serialized artifact for `key` under a cache directory.
pub fn disk_path(dir: &Path, key: u128) -> PathBuf {
    dir.join(format!("{key:032x}.rmsc"))
}

/// Serve `key` from memory, then disk, then a cold build — whichever
/// comes first. The per-key slot lock guarantees at most one cold build
/// per key per process even under concurrency; losers of the race block
/// and then share the winner's artifact.
///
/// `try_disk` and `persist` are no-ops for sessions without a cache
/// directory. A failed build leaves the slot empty (the next request
/// retries) and counts nothing.
pub fn lookup_or_build(
    key: u128,
    try_disk: impl FnOnce() -> Option<CompiledArtifact>,
    build: impl FnOnce() -> Result<CompiledArtifact, Diagnostic>,
    persist: impl FnOnce(&CompiledArtifact),
) -> Result<(Arc<CompiledArtifact>, CacheStatus), Diagnostic> {
    let slot: Slot = lock(registry()).entry(key).or_default().clone();
    let mut guard = lock(&slot);
    if let Some(artifact) = guard.as_ref() {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok((Arc::clone(artifact), CacheStatus::Memory));
    }
    if let Some(artifact) = try_disk() {
        DISK_HITS.fetch_add(1, Ordering::Relaxed);
        let artifact = Arc::new(artifact);
        *guard = Some(Arc::clone(&artifact));
        return Ok((artifact, CacheStatus::Disk));
    }
    let artifact = build()?;
    MISSES.fetch_add(1, Ordering::Relaxed);
    persist(&artifact);
    let artifact = Arc::new(artifact);
    *guard = Some(Arc::clone(&artifact));
    Ok((artifact, CacheStatus::Cold))
}
