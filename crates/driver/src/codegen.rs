//! The *Codegen* stage: native kernel build/load with a content-addressed
//! `.so` cache.
//!
//! The emitted C source and compiled shared object live next to the
//! serialized artifact in `--cache-dir` as `<key>.so.c` / `<key>.so`, so a
//! second process compiling the same model reuses the machine code without
//! re-invoking the C compiler. A `.so` that fails to `dlopen` or whose
//! baked-in fingerprint disagrees with the artifact is quarantined
//! (renamed `*.corrupt`, mirroring the serialized-artifact cache) and
//! rebuilt.
//!
//! Codegen never fails a compile: every problem — no toolchain, compiler
//! error, unloadable object — degrades to an artifact without a kernel
//! plus a human-readable diagnostic, and the simulator falls back to the
//! exec engine.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use rms_core::emit_c::EmittedKernel;
use rms_core::native::{self, KernelMeta, NativeError, NativeKernel};

use crate::cache;
use crate::serial;

/// What the Codegen stage produced, plus its instrumentation.
#[derive(Debug, Default)]
pub struct CodegenOutcome {
    /// The loaded kernel, when everything worked.
    pub kernel: Option<Arc<NativeKernel>>,
    /// Why there is no kernel, when there isn't.
    pub diag: Option<String>,
    /// Seconds spent rendering C source (0 when a cached object loaded).
    pub render_seconds: f64,
    /// Seconds spent in the C compiler (0 when a cached object loaded).
    pub cc_seconds: f64,
    /// Rendered source size (0 when a cached object loaded).
    pub source_bytes: usize,
    /// Translation units the source was split into (1 = historic
    /// single-TU build; 0 when a cached object loaded).
    pub cc_units: usize,
    /// Per-unit compile wall-times. Units compile concurrently, so the
    /// build's compile wall-clock is the maximum, not the sum.
    pub cc_unit_seconds: Vec<f64>,
    /// Seconds in the final link (0 for single-unit or cached builds).
    pub link_seconds: f64,
    /// Loop regions the reroll pass rendered into the kernel.
    pub loop_count: usize,
    /// Flat instructions absorbed into rendered loops.
    pub rolled_instrs: usize,
    /// A cached `.so` was reused without recompiling.
    pub reused: bool,
    /// A stale or corrupt cached `.so` was moved aside.
    pub quarantined: bool,
}

/// Render the native kernel source for an artifact: reroll the tape
/// groups into loop regions (when enabled), size the translation-unit
/// split to the kernel, and emit.
///
/// Unit count scales with emitted work and is capped by the host's core
/// count: small kernels keep the historic single-TU build, huge ones
/// split so their chunks compile concurrently.
pub fn render_kernel(
    name: &str,
    tape: &rms_core::Tape,
    jacobian: Option<&rms_core::JacobianTapes>,
    sensitivity: Option<&rms_core::SensitivityTapes>,
    reroll: bool,
    key: u128,
) -> EmittedKernel {
    use rms_core::{emit_kernel_units, EmitOptions, KernelSpec, RerollOptions, RolledViews};
    let opts = RerollOptions::default();
    let rolled_rhs = reroll.then(|| rms_core::reroll(tape, &opts));
    let rolled_jac = reroll.then(|| jacobian.map(|j| j.reroll(&opts))).flatten();
    let rolled_sens = reroll
        .then(|| sensitivity.map(|s| s.reroll(&opts)))
        .flatten();
    let rolled = rolled_rhs.as_ref().map(|rhs| RolledViews {
        rhs,
        jacobian: rolled_jac.as_ref(),
        sensitivity: rolled_sens.as_ref(),
    });
    let total = tape.instrs.len()
        + jacobian.map_or(0, |j| j.rhs.instrs.len() + j.jac.instrs.len())
        + sensitivity.map_or(0, |s| {
            s.rhs.instrs.len() + s.jac.instrs.len() + s.dfdp.instrs.len()
        });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let units = (total / 16_384).clamp(1, cores.min(8));
    emit_kernel_units(
        &KernelSpec {
            name,
            rhs: tape,
            jacobian,
            sensitivity,
            rolled,
            key,
        },
        &EmitOptions { units },
    )
}

/// Where the compiled object for `key` lives: beside the serialized
/// artifact when a cache directory is configured, otherwise under a
/// process-shared scratch directory in `$TMPDIR` (still content-addressed,
/// so concurrent processes share it).
pub fn kernel_path(cache_dir: Option<&Path>, key: u128) -> PathBuf {
    let dir = match cache_dir {
        Some(dir) => dir.to_path_buf(),
        None => std::env::temp_dir().join("rms-native"),
    };
    dir.join(format!("{key:032x}.so"))
}

/// Load the cached kernel at `path`, or render (via `render`) and compile
/// it. Validation failures quarantine the bad object and rebuild.
///
/// Multi-unit renders compile each translation unit concurrently and
/// link once; the per-unit wall-times land in the outcome. When a cached
/// object loads, the emitter never runs and the reroll counters come
/// from the object's own metadata exports.
pub fn build_kernel(
    path: &Path,
    meta: &KernelMeta,
    render: impl FnOnce() -> EmittedKernel,
) -> CodegenOutcome {
    let mut outcome = CodegenOutcome::default();
    if path.exists() {
        match NativeKernel::load(path, meta) {
            Ok(kernel) => {
                outcome.loop_count = kernel.loop_count();
                outcome.rolled_instrs = kernel.rolled_instrs();
                outcome.kernel = Some(Arc::new(kernel));
                outcome.reused = true;
                return outcome;
            }
            Err(NativeError::LoadFailed(_) | NativeError::Mismatch(_)) => {
                serial::quarantine(path);
                cache::note_quarantine();
                outcome.quarantined = true;
            }
            Err(e) => {
                outcome.diag = Some(e.to_string());
                return outcome;
            }
        }
    }
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            outcome.diag = Some(format!("cannot create {}: {e}", dir.display()));
            return outcome;
        }
    }
    let clock = Instant::now();
    let emitted = render();
    outcome.render_seconds = clock.elapsed().as_secs_f64();
    outcome.source_bytes = emitted.source_bytes;
    outcome.cc_units = emitted.units.len();
    outcome.loop_count = emitted.loop_count;
    outcome.rolled_instrs = emitted.rolled_instrs;
    let clock = Instant::now();
    match native::compile_and_load_units(&emitted.units, path, meta) {
        Ok((kernel, timing)) => {
            outcome.cc_seconds = clock.elapsed().as_secs_f64();
            outcome.cc_unit_seconds = timing.unit_seconds;
            outcome.link_seconds = timing.link_seconds;
            outcome.kernel = Some(Arc::new(kernel));
        }
        Err(e) => {
            outcome.cc_seconds = clock.elapsed().as_secs_f64();
            outcome.diag = Some(e.to_string());
        }
    }
    outcome
}
