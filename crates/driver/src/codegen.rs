//! The *Codegen* stage: native kernel build/load with a content-addressed
//! `.so` cache.
//!
//! The emitted C source and compiled shared object live next to the
//! serialized artifact in `--cache-dir` as `<key>.so.c` / `<key>.so`, so a
//! second process compiling the same model reuses the machine code without
//! re-invoking the C compiler. A `.so` that fails to `dlopen` or whose
//! baked-in fingerprint disagrees with the artifact is quarantined
//! (renamed `*.corrupt`, mirroring the serialized-artifact cache) and
//! rebuilt.
//!
//! Codegen never fails a compile: every problem — no toolchain, compiler
//! error, unloadable object — degrades to an artifact without a kernel
//! plus a human-readable diagnostic, and the simulator falls back to the
//! exec engine.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use rms_core::native::{self, KernelMeta, NativeError, NativeKernel};

use crate::cache;
use crate::serial;

/// What the Codegen stage produced, plus its instrumentation.
#[derive(Debug, Default)]
pub struct CodegenOutcome {
    /// The loaded kernel, when everything worked.
    pub kernel: Option<Arc<NativeKernel>>,
    /// Why there is no kernel, when there isn't.
    pub diag: Option<String>,
    /// Seconds spent rendering C source (0 when a cached object loaded).
    pub render_seconds: f64,
    /// Seconds spent in the C compiler (0 when a cached object loaded).
    pub cc_seconds: f64,
    /// Rendered source size (0 when a cached object loaded).
    pub source_bytes: usize,
    /// A cached `.so` was reused without recompiling.
    pub reused: bool,
    /// A stale or corrupt cached `.so` was moved aside.
    pub quarantined: bool,
}

/// Where the compiled object for `key` lives: beside the serialized
/// artifact when a cache directory is configured, otherwise under a
/// process-shared scratch directory in `$TMPDIR` (still content-addressed,
/// so concurrent processes share it).
pub fn kernel_path(cache_dir: Option<&Path>, key: u128) -> PathBuf {
    let dir = match cache_dir {
        Some(dir) => dir.to_path_buf(),
        None => std::env::temp_dir().join("rms-native"),
    };
    dir.join(format!("{key:032x}.so"))
}

/// Load the cached kernel at `path`, or render (via `render`) and compile
/// it. Validation failures quarantine the bad object and rebuild.
pub fn build_kernel(
    path: &Path,
    meta: &KernelMeta,
    render: impl FnOnce() -> String,
) -> CodegenOutcome {
    let mut outcome = CodegenOutcome::default();
    if path.exists() {
        match NativeKernel::load(path, meta) {
            Ok(kernel) => {
                outcome.kernel = Some(Arc::new(kernel));
                outcome.reused = true;
                return outcome;
            }
            Err(NativeError::LoadFailed(_) | NativeError::Mismatch(_)) => {
                serial::quarantine(path);
                cache::note_quarantine();
                outcome.quarantined = true;
            }
            Err(e) => {
                outcome.diag = Some(e.to_string());
                return outcome;
            }
        }
    }
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            outcome.diag = Some(format!("cannot create {}: {e}", dir.display()));
            return outcome;
        }
    }
    let clock = Instant::now();
    let source = render();
    outcome.render_seconds = clock.elapsed().as_secs_f64();
    outcome.source_bytes = source.len();
    let clock = Instant::now();
    match native::compile_and_load(&source, path, meta) {
        Ok(kernel) => {
            outcome.cc_seconds = clock.elapsed().as_secs_f64();
            outcome.kernel = Some(Arc::new(kernel));
        }
        Err(e) => {
            outcome.cc_seconds = clock.elapsed().as_secs_f64();
            outcome.diag = Some(e.to_string());
        }
    }
    outcome
}
