//! The pass-managed compiler session: one instrumented, cache-aware
//! pipeline from RDL source (or a programmatic network) to executable
//! tape.
//!
//! Every pipeline entry point in the workspace — `rms_suite`'s
//! `compile_source`, the workload generators, the bench bins, the
//! parallel estimator's model setup — routes through [`CompilerSession`];
//! there is exactly one way to run the pipeline. Each stage consumes and
//! produces typed artifacts, records wall time and artifact sizes into a
//! [`PipelineReport`], and can dump its IR ([`SessionOptions::dump`]).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use rms_core::{
    compile_jacobian, compile_sensitivity, optimize_traced, CompiledOde, CseOptions, ExecTape,
    JacobianTapes, OptLevel, PassTrace, Passes, SensitivityTapes,
};
use rms_odegen::{generate, GenerateOptions, OdeSystem};
use rms_rcip::RateTable;
use rms_rdl::{
    compile_with_options, expand_program, parse_rdl, CompiledModel, EngineOptions, ReactionNetwork,
};

use crate::cache::{self, CacheMode, CacheStatus};
use crate::diag::Diagnostic;
use crate::report::{PipelineReport, StageRecord};
use crate::serial;
use crate::stage::Stage;

/// Everything that affects what the pipeline produces — and therefore
/// everything that feeds the cache key.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Named optimization level.
    pub level: OptLevel,
    /// Explicit pass switches overriding `level.passes()` (ablations).
    pub passes: Option<Passes>,
    /// Override the equation generator's on-the-fly §3.1 merging. The
    /// default follows the effective simplify pass switch (off only at
    /// [`OptLevel::None`], Table 1's baseline).
    pub gen_simplify: Option<bool>,
    /// Also compile the analytic sparse Jacobian tapes (the *Deriv*
    /// stage).
    pub deriv: bool,
    /// Also compile the parameter-sensitivity tapes (RHS + Jacobian +
    /// `∂f/∂p` sharing one register file), part of the *Deriv* stage:
    /// enables one-solve residual Jacobians in the estimator.
    pub sensitivity: bool,
    /// Pre-decode the lowered tape into an [`ExecTape`] (the
    /// *ExecDecode* stage). On by default: the execution engine is the
    /// runtime default.
    pub decode: bool,
    /// Emit C for the tape(s), compile it with the system C compiler, and
    /// `dlopen` the result (the *Codegen* stage). Codegen failures never
    /// fail the compile: the artifact carries a diagnostic instead of a
    /// kernel and callers fall back to the exec engine.
    pub native: bool,
    /// Reroll repeated reaction stanzas into data-driven loop regions
    /// before emitting native code (`--opt reroll=on|off`). On by
    /// default; affects only the rendered kernel (loops replay the exact
    /// flat instruction sequence, so results stay bit-identical), but is
    /// part of the cache key because it changes the emitted object.
    pub reroll: bool,
    /// Worker threads for the frontend's network-closure stage (match /
    /// edit / canonicalize fan-out). `0` means one per available core;
    /// `1` runs the serial path.
    pub frontend_threads: usize,
    /// Intern canonical keys as content hashes + symbols instead of
    /// canonical-SMILES strings during network closure. On by default;
    /// the off switch exists for A/B benchmarking.
    pub frontend_intern: bool,
    /// Cache participation.
    pub cache: CacheMode,
    /// On-disk cache directory (e.g. `.rms-cache/`); `None` keeps the
    /// cache in-memory only.
    pub cache_dir: Option<PathBuf>,
    /// Dump the IR after this stage. Dump requests force a cold,
    /// cache-bypassing compile so the requested intermediate actually
    /// exists.
    pub dump: Option<Stage>,
}

impl SessionOptions {
    /// Defaults at a named level: derived pass switches, no Jacobian,
    /// exec pre-decode on, in-memory cache, no dumps.
    pub fn new(level: OptLevel) -> SessionOptions {
        SessionOptions {
            level,
            passes: None,
            gen_simplify: None,
            deriv: false,
            sensitivity: false,
            decode: true,
            native: false,
            reroll: true,
            frontend_threads: 0,
            frontend_intern: true,
            cache: CacheMode::default(),
            cache_dir: None,
            dump: None,
        }
    }

    /// The pass switches actually run.
    pub fn effective_passes(&self) -> Passes {
        self.passes.unwrap_or_else(|| self.level.passes())
    }

    /// The equation generator's simplify switch actually used.
    pub fn effective_gen_simplify(&self) -> bool {
        self.gen_simplify
            .unwrap_or_else(|| self.effective_passes().simplify)
    }

    /// Display name of the configuration (the report's `level` field).
    pub fn level_name(&self) -> String {
        match self.passes {
            None => self.level.to_string(),
            Some(p) => format!(
                "custom(simplify={},distribute={},cse={})",
                p.simplify,
                p.distribute,
                p.cse.is_some()
            ),
        }
    }

    /// Hash every compilation-relevant option into `h`.
    fn hash_into(&self, h: &mut impl Hasher) {
        let passes = self.effective_passes();
        passes.simplify.hash(h);
        passes.distribute.hash(h);
        match passes.cse {
            None => 0u8.hash(h),
            Some(CseOptions {
                min_uses,
                prefix_matching,
            }) => {
                1u8.hash(h);
                min_uses.hash(h);
                prefix_matching.hash(h);
            }
        }
        self.effective_gen_simplify().hash(h);
        self.deriv.hash(h);
        self.sensitivity.hash(h);
        self.decode.hash(h);
        self.native.hash(h);
        self.reroll.hash(h);
        // The frontend options cannot change the produced network (the
        // engine is bit-identical across thread counts and key
        // representations), but they change the *reported* compile — stage
        // metrics, warnings — so two configurations must not share a
        // cached artifact.
        self.frontend_threads.hash(h);
        self.frontend_intern.hash(h);
    }
}

/// The cached output of a full pipeline run: every stage's artifact kept
/// together, plus the report describing how it was built.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    /// Model label (file name or workload case name).
    pub name: String,
    /// Reaction network (chemical-compiler output).
    pub network: ReactionNetwork,
    /// Evaluated, value-deduplicated rate constants (RCIP output).
    pub rates: RateTable,
    /// ODE system (equation-generator output).
    pub system: OdeSystem,
    /// Optimizer output: forest, tape, per-stage op counts.
    pub compiled: CompiledOde,
    /// Analytic sparse Jacobian tapes, when the *Deriv* stage ran.
    pub jacobian: Option<JacobianTapes>,
    /// Parameter-sensitivity tapes (RHS + Jacobian + `∂f/∂p`), when
    /// requested. Not persisted to disk; revived artifacts recompile them
    /// from the forest.
    pub sensitivity: Option<SensitivityTapes>,
    /// Pre-decoded execution tape, when the *ExecDecode* stage ran.
    pub exec: Option<ExecTape>,
    /// Loaded native kernel, when the *Codegen* stage ran and succeeded.
    pub native: Option<Arc<rms_core::NativeKernel>>,
    /// Why there is no native kernel although one was requested (missing
    /// toolchain, compile failure, …); drives the engine-fallback
    /// diagnostic.
    pub native_diag: Option<String>,
    /// Non-fatal diagnostics from the compile (e.g. the closure hit
    /// `max_generations` while rules were still producing new species).
    /// Not persisted; revived artifacts carry none.
    pub warnings: Vec<Diagnostic>,
    /// Per-stage instrumentation of the compile that built this artifact.
    pub report: PipelineReport,
    /// Content-address under which the artifact is cached.
    pub key: u128,
    /// The equation generator's simplify switch used (needed to
    /// regenerate the system identically when reviving from disk).
    pub gen_simplify: bool,
}

impl CompiledArtifact {
    /// Rough in-memory footprint, used by the cache's memory-budget
    /// eviction. Counts the dominant allocations (tapes, Jacobian,
    /// system, network) at fixed per-element costs rather than chasing
    /// every string — eviction needs ordering-quality estimates, not
    /// accounting-quality ones.
    pub fn approx_bytes(&self) -> u64 {
        const INSTR: u64 = 48; // Instr/ExecInstr upper bound, with slack
        let tape = |t: &rms_core::Tape| INSTR * t.instrs.len() as u64;
        let mut total = 4096u64; // report, names, rate table, headers
        total += tape(&self.compiled.tape);
        if let Some(j) = &self.jacobian {
            total += tape(&j.rhs) + tape(&j.jac) + 8 * j.entries.len() as u64;
        }
        if let Some(s) = &self.sensitivity {
            total += tape(&s.rhs)
                + tape(&s.jac)
                + tape(&s.dfdp)
                + 8 * (s.jac_entries.len() + s.dfdp_entries.len()) as u64;
        }
        if let Some(exec) = &self.exec {
            total += INSTR * exec.len() as u64;
        }
        total += 64 * self.system.len() as u64;
        total += 64 * self.network.reaction_count() as u64;
        total
    }
}

/// A compile result: the (possibly shared) artifact plus provenance.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The artifact; cache hits share one allocation process-wide.
    pub artifact: Arc<CompiledArtifact>,
    /// How the request was satisfied.
    pub status: CacheStatus,
    /// Rendered IR of the requested dump stage, when one was requested
    /// and the stage ran.
    pub dump: Option<String>,
}

/// The pass-managed pipeline driver. Cheap to construct; all state lives
/// in the options and the process-wide cache.
#[derive(Debug, Clone)]
pub struct CompilerSession {
    options: SessionOptions,
}

impl CompilerSession {
    /// Session at a named optimization level with default options.
    pub fn new(level: OptLevel) -> CompilerSession {
        CompilerSession::with_options(SessionOptions::new(level))
    }

    /// Session with explicit options.
    pub fn with_options(options: SessionOptions) -> CompilerSession {
        CompilerSession { options }
    }

    /// The session's options.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Compile RDL source text through the full pipeline. `name` labels
    /// the model in reports and diagnostics (typically the file name).
    pub fn compile_source(&self, name: &str, source: &str) -> Result<Compiled, Diagnostic> {
        let key = self.fingerprint(|h| {
            "rdl-source".hash(h);
            source.hash(h);
        });
        self.run_cached(key, || self.build_from_source(name, source, key))
    }

    /// Compile an already-built network (programmatic workloads). The
    /// pipeline starts at the *OdeGen* stage; the network and rate table
    /// are fingerprinted structurally for the cache key.
    pub fn compile_network(
        &self,
        name: &str,
        network: ReactionNetwork,
        rates: RateTable,
    ) -> Result<Compiled, Diagnostic> {
        let key = self.fingerprint(|h| {
            "network".hash(h);
            hash_network(&network, h);
            hash_rates(&rates, h);
        });
        self.run_cached(key, || {
            let mut dump = DumpSink::new(self.options.dump);
            let mut records = Vec::new();
            let frontend = FrontendOutput {
                network,
                rates,
                warnings: Vec::new(),
            };
            let artifact = self.build_from_network(name, key, frontend, &mut records, &mut dump)?;
            Ok((artifact, dump.take()))
        })
    }

    /// Dispatch through the cache (or straight to `build` when bypassed
    /// or dumping).
    fn run_cached(
        &self,
        key: u128,
        build: impl FnOnce() -> Result<(CompiledArtifact, Option<String>), Diagnostic>,
    ) -> Result<Compiled, Diagnostic> {
        if self.options.cache == CacheMode::Bypass || self.options.dump.is_some() {
            let (artifact, dump) = build()?;
            return Ok(Compiled {
                artifact: Arc::new(artifact),
                status: CacheStatus::Cold,
                dump,
            });
        }
        let disk = self
            .options
            .cache_dir
            .as_ref()
            .map(|dir| cache::disk_path(dir, key));
        let (artifact, status) = cache::lookup_or_build(
            key,
            || {
                let path = disk.as_deref()?;
                match serial::load(path, key) {
                    Ok(a) => self.revive(a),
                    Err(serial::LoadError::Missing) => None,
                    Err(serial::LoadError::Corrupt) => {
                        // Truncated/bit-flipped/stale entry: move it
                        // aside and fall through to a cold compile,
                        // whose `persist` rewrites a good file.
                        serial::quarantine(path);
                        cache::note_quarantine();
                        None
                    }
                }
            },
            || build().map(|(artifact, _)| artifact),
            |artifact| {
                if let Some(path) = disk.as_deref() {
                    serial::store(path, artifact);
                }
            },
        )?;
        Ok(Compiled {
            artifact,
            status,
            dump: None,
        })
    }

    /// The 128-bit content address of a compile request: model content
    /// (via `seed`) plus every compilation-relevant option. Built from
    /// two passes of the std hasher with distinct domain prefixes.
    fn fingerprint(&self, seed: impl Fn(&mut DefaultHasher)) -> u128 {
        let mut halves = [0u64; 2];
        for (i, half) in halves.iter_mut().enumerate() {
            let mut h = DefaultHasher::new();
            (0x9e37_79b9_97f4_a7c1_u64 ^ (i as u64)).hash(&mut h);
            seed(&mut h);
            self.options.hash_into(&mut h);
            *half = h.finish();
        }
        ((halves[0] as u128) << 64) | halves[1] as u128
    }

    /// Frontend stages: Parse → Expand → Rcip → Network, then the shared
    /// backend.
    fn build_from_source(
        &self,
        name: &str,
        source: &str,
        key: u128,
    ) -> Result<(CompiledArtifact, Option<String>), Diagnostic> {
        let mut dump = DumpSink::new(self.options.dump);
        let mut records = Vec::new();

        let clock = Instant::now();
        let program = parse_rdl(source)?;
        records.push(
            StageRecord::new(Stage::Parse, clock.elapsed().as_secs_f64())
                .metric("molecules", program.molecules.len() as f64)
                .metric("rules", program.rules.len() as f64),
        );
        dump.offer(Stage::Parse, || format!("{program:#?}"));

        let clock = Instant::now();
        let seeds = expand_program(&program)?;
        records.push(
            StageRecord::new(Stage::Expand, clock.elapsed().as_secs_f64())
                .metric("variants", seeds.len() as f64),
        );
        dump.offer(Stage::Expand, || {
            seeds
                .iter()
                .map(|s| {
                    format!(
                        "{} (family {}) = \"{}\" init {}\n",
                        s.name, s.family, s.smiles, s.initial
                    )
                })
                .collect()
        });

        let clock = Instant::now();
        let rates = RateTable::parse(&program.rate_source)?;
        records.push(
            StageRecord::new(Stage::Rcip, clock.elapsed().as_secs_f64())
                .metric("names", rates.name_count() as f64)
                .metric("distinct", rates.distinct_count() as f64),
        );
        dump.offer(Stage::Rcip, || render_rates(&rates));

        let clock = Instant::now();
        let engine_options = EngineOptions {
            threads: self.options.frontend_threads,
            intern: self.options.frontend_intern,
            legacy_rescan: false,
        };
        let CompiledModel {
            network,
            rates,
            stats,
        } = compile_with_options(&program, rates, &seeds, &engine_options)?;
        records.push(
            StageRecord::new(Stage::Network, clock.elapsed().as_secs_f64())
                .metric("species", network.species_count() as f64)
                .metric("reactions", network.reaction_count() as f64)
                .metric("rule_applications", stats.rule_applications as f64)
                .metric("canonicalizations", stats.canonicalizations as f64)
                .metric("prefilter_hit_rate", stats.prefilter_hit_rate())
                .metric("peak_frontier", stats.peak_frontier as f64)
                .metric("generations", stats.generations as f64)
                .metric(
                    "gen_max_seconds",
                    stats.generation_seconds.iter().copied().fold(0.0, f64::max),
                )
                .metric("threads", stats.threads as f64),
        );
        dump.offer(Stage::Network, || render_network(&network));

        let mut warnings = Vec::new();
        if !stats.fixpoint && !stats.growing_rules.is_empty() {
            let mut warning = Diagnostic::warning(
                Stage::Network,
                format!(
                    "network closure stopped at the generation cap ({}) without \
                     reaching a fixpoint; still-growing rules: {}",
                    program.limits.max_generations,
                    stats.growing_rules.join(", ")
                ),
            );
            if let Some((line, column)) = program.generations_span {
                warning = warning.with_span(line, column);
            }
            warnings.push(warning);
        }

        let frontend = FrontendOutput {
            network,
            rates,
            warnings,
        };
        let artifact = self.build_from_network(name, key, frontend, &mut records, &mut dump)?;
        Ok((artifact, dump.take()))
    }

    /// Backend stages shared by both entry points: OdeGen → optimizer
    /// passes → Deriv → Lower → ExecDecode.
    fn build_from_network(
        &self,
        name: &str,
        key: u128,
        frontend: FrontendOutput,
        records: &mut Vec<StageRecord>,
        dump: &mut DumpSink,
    ) -> Result<CompiledArtifact, Diagnostic> {
        let FrontendOutput {
            network,
            rates,
            warnings,
        } = frontend;
        let gen_simplify = self.options.effective_gen_simplify();
        let clock = Instant::now();
        let system = generate(
            &network,
            &rates,
            GenerateOptions {
                simplify: gen_simplify,
            },
        )?;
        let mut odegen_record = StageRecord::new(Stage::OdeGen, clock.elapsed().as_secs_f64())
            .metric("equations", system.len() as f64)
            .metric("terms", system.term_count() as f64);
        dump.offer(Stage::OdeGen, || system.display());

        // Optimizer passes, traced. IR capture only when a pass-stage dump
        // was requested (it costs a formatting walk per pass).
        let wants_pass_ir = matches!(
            self.options.dump,
            Some(Stage::Simplify | Stage::Distribute | Stage::Cse)
        );
        let mut trace = if wants_pass_ir {
            PassTrace::with_ir()
        } else {
            PassTrace::default()
        };
        let compiled = optimize_traced(&system, self.options.effective_passes(), Some(&mut trace));
        for event in trace.events {
            let stage = match event.pass {
                // Forest construction is bookkeeping of the generator's
                // output; attribute it to OdeGen.
                "input" => {
                    odegen_record.seconds += event.seconds;
                    odegen_record = odegen_record.metric("ir_nodes", event.nodes as f64);
                    continue;
                }
                "simplify" => Stage::Simplify,
                "distribute" => Stage::Distribute,
                "cse" => Stage::Cse,
                "lower" => Stage::Lower,
                other => unreachable!("unknown optimizer pass '{other}'"),
            };
            let rec = StageRecord::new(stage, event.seconds)
                .metric("mults", event.counts.mults as f64)
                .metric("adds", event.counts.adds as f64)
                .metric(
                    if stage == Stage::Lower {
                        "instrs"
                    } else {
                        "ir_nodes"
                    },
                    event.nodes as f64,
                );
            if let Some(ir) = event.ir {
                dump.offer(stage, || ir);
            }
            records.push(rec);
        }
        // OdeGen ran before the optimizer; keep records in stage order.
        let insert_at = records
            .iter()
            .position(|r| r.stage > Stage::OdeGen)
            .unwrap_or(records.len());
        records.insert(insert_at, odegen_record);
        dump.offer(Stage::Lower, || compiled.tape.to_string());

        let (jacobian, sensitivity) = if self.options.deriv || self.options.sensitivity {
            let clock = Instant::now();
            let jacobian = self
                .options
                .deriv
                .then(|| compile_jacobian(&compiled.forest, Some(CseOptions::default())));
            let sensitivity = self
                .options
                .sensitivity
                .then(|| compile_sensitivity(&compiled.forest, Some(CseOptions::default())));
            let mut record = StageRecord::new(Stage::Deriv, clock.elapsed().as_secs_f64());
            if let Some(tapes) = &jacobian {
                // Sparse-Newton symbolic analysis of I − hβJ over the exact
                // compiled sparsity: the fill the stiff solver's sparse path
                // will carry (nnz(L+U) under the fill-reducing ordering).
                let jac_pattern =
                    rms_solver::SparsityPattern::new(tapes.pattern_rows(), tapes.n_species);
                let iter_pattern = rms_solver::iteration_matrix_pattern(&jac_pattern);
                let lu_fill = rms_solver::SymbolicLu::analyze(&iter_pattern)
                    .map(|sym| sym.fill_nnz())
                    .unwrap_or(0);
                record = record
                    .metric("nnz", tapes.entries.len() as f64)
                    .metric("rhs_instrs", tapes.rhs.instrs.len() as f64)
                    .metric("jac_instrs", tapes.jac.instrs.len() as f64)
                    .metric("iter_nnz", iter_pattern.nnz() as f64)
                    .metric("lu_fill_nnz", lu_fill as f64);
            }
            if let Some(tapes) = &sensitivity {
                record = record
                    .metric("dfdp_nnz", tapes.dfdp_entries.len() as f64)
                    .metric("dfdp_instrs", tapes.dfdp.instrs.len() as f64)
                    .metric("sens_rhs_instrs", tapes.rhs.instrs.len() as f64)
                    .metric("sens_jac_instrs", tapes.jac.instrs.len() as f64);
            }
            // Deriv sits between Cse and Lower in the stage order.
            let at = records
                .iter()
                .position(|r| r.stage > Stage::Deriv)
                .unwrap_or(records.len());
            records.insert(at, record);
            dump.offer(Stage::Deriv, || {
                let mut out = String::new();
                if let Some(tapes) = &jacobian {
                    out.push_str(&format!(
                        "; jacobian: {} nonzero entries {:?}\n; shared rhs tape:\n{}",
                        tapes.entries.len(),
                        tapes.entries,
                        tapes.rhs
                    ));
                    out.push_str(&format!("; jac tape:\n{}", tapes.jac));
                }
                if let Some(tapes) = &sensitivity {
                    out.push_str(&format!(
                        "; dfdp: {} nonzero (species, rate) entries {:?}\n; dfdp tape:\n{}",
                        tapes.dfdp_entries.len(),
                        tapes.dfdp_entries,
                        tapes.dfdp
                    ));
                }
                out
            });
            (jacobian, sensitivity)
        } else {
            (None, None)
        };

        let exec = if self.options.decode {
            let clock = Instant::now();
            let exec = ExecTape::compile(&compiled.tape);
            records.push(
                StageRecord::new(Stage::ExecDecode, clock.elapsed().as_secs_f64())
                    .metric("instrs", exec.len() as f64)
                    .metric("fused", (compiled.tape.instrs.len() - exec.len()) as f64),
            );
            dump.offer(Stage::ExecDecode, || {
                format!(
                    "; exec tape: {} instrs (fused from {}), op counts {}\n",
                    exec.len(),
                    compiled.tape.instrs.len(),
                    exec.op_counts()
                )
            });
            Some(exec)
        } else {
            None
        };

        let (native, native_diag) = if self.options.native {
            let clock = Instant::now();
            let meta = rms_core::KernelMeta {
                key,
                n_species: compiled.tape.n_species,
                n_rates: compiled.tape.n_rates,
                jac_nnz: jacobian.as_ref().map(|j| j.nnz()),
                sens_nnz: sensitivity.as_ref().map(|s| (s.jac_nnz(), s.dfdp_nnz())),
            };
            let path = crate::codegen::kernel_path(self.options.cache_dir.as_deref(), key);
            let render = || {
                crate::codegen::render_kernel(
                    name,
                    &compiled.tape,
                    jacobian.as_ref(),
                    sensitivity.as_ref(),
                    self.options.reroll,
                    key,
                )
            };
            let outcome = crate::codegen::build_kernel(&path, &meta, render);
            dump.offer(Stage::Codegen, || {
                render()
                    .units
                    .join("\n/* ---------------- unit break ---------------- */\n")
            });
            records.push(
                StageRecord::new(Stage::Codegen, clock.elapsed().as_secs_f64())
                    .metric("render_seconds", outcome.render_seconds)
                    .metric("cc_seconds", outcome.cc_seconds)
                    .metric("source_bytes", outcome.source_bytes as f64)
                    .metric("cc_units", outcome.cc_units as f64)
                    .metric(
                        "cc_unit_max_seconds",
                        outcome.cc_unit_seconds.iter().copied().fold(0.0, f64::max),
                    )
                    .metric("link_seconds", outcome.link_seconds)
                    .metric("loops", outcome.loop_count as f64)
                    .metric("rolled_instrs", outcome.rolled_instrs as f64)
                    .metric("reused", if outcome.reused { 1.0 } else { 0.0 })
                    .metric("loaded", if outcome.kernel.is_some() { 1.0 } else { 0.0 }),
            );
            (outcome.kernel, outcome.diag)
        } else {
            (None, None)
        };

        let mut report = PipelineReport {
            model: name.to_string(),
            level: self.options.level_name(),
            species: network.species_count(),
            reactions: network.reaction_count(),
            rates: rates.distinct_count(),
            stages: std::mem::take(records),
            counts: compiled.stages,
            total_seconds: 0.0,
        };
        report.finish();

        Ok(CompiledArtifact {
            name: name.to_string(),
            network,
            rates,
            system,
            compiled,
            jacobian,
            sensitivity,
            exec,
            native,
            native_diag,
            warnings,
            report,
            key,
            gen_simplify,
        })
    }

    /// Finish reviving a disk-loaded artifact: regenerate the ODE system
    /// (not serialized), and rebuild the optional request-dependent
    /// artifacts. Returns `None` (a cache miss) if anything disagrees.
    fn revive(&self, partial: serial::DiskArtifact) -> Option<CompiledArtifact> {
        let serial::DiskArtifact {
            name,
            network,
            rates,
            compiled,
            jacobian,
            report,
            key,
            gen_simplify,
        } = partial;
        if gen_simplify != self.options.effective_gen_simplify() {
            return None;
        }
        let system = generate(
            &network,
            &rates,
            GenerateOptions {
                simplify: gen_simplify,
            },
        )
        .ok()?;
        let jacobian = match (self.options.deriv, jacobian) {
            (false, _) => None,
            (true, Some(tapes)) => Some(tapes),
            (true, None) => Some(compile_jacobian(
                &compiled.forest,
                Some(CseOptions::default()),
            )),
        };
        // Sensitivity tapes are never persisted; recompile on revival.
        let sensitivity = self
            .options
            .sensitivity
            .then(|| compile_sensitivity(&compiled.forest, Some(CseOptions::default())));
        let exec = self
            .options
            .decode
            .then(|| ExecTape::compile(&compiled.tape));
        // Re-attach the native kernel: usually a straight dlopen of the
        // `.so` cached beside the artifact, recompiling if it is missing
        // or was quarantined.
        let (native, native_diag) = if self.options.native {
            let meta = rms_core::KernelMeta {
                key,
                n_species: compiled.tape.n_species,
                n_rates: compiled.tape.n_rates,
                jac_nnz: jacobian.as_ref().map(|j| j.nnz()),
                sens_nnz: sensitivity.as_ref().map(|s| (s.jac_nnz(), s.dfdp_nnz())),
            };
            let path = crate::codegen::kernel_path(self.options.cache_dir.as_deref(), key);
            let outcome = crate::codegen::build_kernel(&path, &meta, || {
                crate::codegen::render_kernel(
                    &name,
                    &compiled.tape,
                    jacobian.as_ref(),
                    sensitivity.as_ref(),
                    self.options.reroll,
                    key,
                )
            });
            (outcome.kernel, outcome.diag)
        } else {
            (None, None)
        };
        Some(CompiledArtifact {
            name,
            network,
            rates,
            system,
            compiled,
            jacobian,
            sensitivity,
            exec,
            native,
            native_diag,
            warnings: Vec::new(),
            report,
            key,
            gen_simplify,
        })
    }
}

/// Frontend output handed to the shared backend stages: the closed
/// network, evaluated rates, and any non-fatal diagnostics raised along
/// the way (the network entry point has none — warnings are a source
/// frontend concern).
struct FrontendOutput {
    network: ReactionNetwork,
    rates: RateTable,
    warnings: Vec<Diagnostic>,
}

/// Captures at most one stage's IR dump.
struct DumpSink {
    want: Option<Stage>,
    text: Option<String>,
}

impl DumpSink {
    fn new(want: Option<Stage>) -> DumpSink {
        DumpSink { want, text: None }
    }

    /// Render and keep the dump if `stage` is the requested one.
    fn offer(&mut self, stage: Stage, render: impl FnOnce() -> String) {
        if self.want == Some(stage) && self.text.is_none() {
            self.text = Some(render());
        }
    }

    fn take(&mut self) -> Option<String> {
        self.text.take()
    }
}

/// Network listing for `--dump-ir=network`: every species in id order
/// (name, canonical SMILES, initial concentration), then the reaction
/// equations in insertion order.
fn render_network(network: &ReactionNetwork) -> String {
    let mut out = format!("; {} species\n", network.species_count());
    for (id, species) in network.species_iter() {
        let canonical = network
            .canonical_smiles(id)
            .unwrap_or_else(|| "?".to_string());
        out.push_str(&format!(
            "s{} {} = \"{}\" init {}\n",
            id.0, species.name, canonical, species.initial_concentration
        ));
    }
    out.push_str(&format!("; {} reactions\n", network.reaction_count()));
    out.push_str(&network.display_equations());
    out
}

/// Rate-table listing for `--dump-ir=rcip`: every name with its value and
/// canonical id.
fn render_rates(rates: &RateTable) -> String {
    let mut out = String::new();
    for name in rates.names() {
        let id = rates.id(name).expect("listed name resolves");
        out.push_str(&format!(
            "{name} = {} (k{}{})\n",
            rates.get(name).expect("listed name has a value"),
            id.0,
            if rates.canonical_name(id) == name {
                ", canonical".to_string()
            } else {
                format!(", alias of {}", rates.canonical_name(id))
            }
        ));
    }
    out
}

/// Structural fingerprint of a network: species (name, initial) in id
/// order plus reactions (ids, rate, rule) in insertion order.
fn hash_network(network: &ReactionNetwork, h: &mut impl Hasher) {
    network.species_count().hash(h);
    for (_, species) in network.species_iter() {
        species.name.hash(h);
        species.initial_concentration.to_bits().hash(h);
    }
    network.reaction_count().hash(h);
    for reaction in network.reactions() {
        for id in &reaction.reactants {
            id.0.hash(h);
        }
        u32::MAX.hash(h); // separator
        for id in &reaction.products {
            id.0.hash(h);
        }
        reaction.rate.hash(h);
        reaction.rule.hash(h);
    }
}

/// Structural fingerprint of a rate table: names with value bits in
/// definition order plus bounds per canonical id.
fn hash_rates(rates: &RateTable, h: &mut impl Hasher) {
    rates.name_count().hash(h);
    for name in rates.names() {
        name.hash(h);
        rates
            .get(name)
            .expect("listed name has a value")
            .to_bits()
            .hash(h);
    }
    for id in 0..rates.distinct_count() {
        match rates.bounds(rms_rcip::RateId(id as u32)) {
            None => 0u8.hash(h),
            Some(b) => {
                1u8.hash(h);
                b.lo.to_bits().hash(h);
                b.hi.to_bits().hash(h);
            }
        }
    }
}
