//! # rms-driver — the pass-managed compiler driver
//!
//! The paper's Figure 2 presents the Reaction Modeling Suite as a single
//! staged pipeline (chemical compiler → RCIP → equation generator →
//! algebraic optimizer → code generator). This crate is that pipeline as
//! one object: a [`CompilerSession`] that runs an explicit sequence of
//! [`Stage`]s, times each one into a [`PipelineReport`], renders
//! span-carrying [`Diagnostic`]s, and caches finished
//! [`CompiledArtifact`]s by content address — in memory per process and
//! optionally on disk (`.rms-cache/`) — so repeated compiles of the same
//! model (CLI invocations, parameter-estimation sweeps, benchmark
//! harnesses) pay for compilation once.
//!
//! ```
//! use rms_driver::{CompilerSession, OptLevel};
//!
//! let session = CompilerSession::new(OptLevel::Full);
//! let compiled = session.compile_source("doc.rdl", r#"
//!     rate K_sc = 2;
//!     molecule DiS = "CSSC" init 1.0;
//!     rule scission {
//!         site bond S ~ S order single;
//!         action disconnect;
//!         rate K_sc;
//!     }
//! "#).unwrap();
//! assert_eq!(compiled.artifact.system.len(), 2);
//! // A second compile of the same source is served from the cache.
//! let again = session.compile_source("doc.rdl", r#"
//!     rate K_sc = 2;
//!     molecule DiS = "CSSC" init 1.0;
//!     rule scission {
//!         site bond S ~ S order single;
//!         action disconnect;
//!         rate K_sc;
//!     }
//! "#).unwrap();
//! assert!(std::sync::Arc::ptr_eq(&compiled.artifact, &again.artifact));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod codegen;
pub mod diag;
pub mod report;
pub mod serial;
pub mod session;
pub mod stage;

pub use cache::{CacheMode, CacheStats, CacheStatus};
pub use diag::{Diagnostic, Diagnostics, Severity, Span};
pub use report::{PipelineReport, StageRecord};
pub use session::{Compiled, CompiledArtifact, CompilerSession, SessionOptions};
pub use stage::Stage;

pub use codegen::{build_kernel, kernel_path, CodegenOutcome};

// Re-exported for callers configuring a session.
pub use rms_core::native::{KernelMeta, NativeError, NativeKernel};
pub use rms_core::{CseOptions, OptLevel, Passes};
