//! The rate-constant table: evaluation, value-based renaming, bounds.
//!
//! The paper (§3.3) notes that "those variables with different names most
//! likely to have the same value, i.e. the rate constants, have been
//! renamed based on common values by the rate constant information
//! processor". [`RateTable`] performs that renaming: constants that
//! evaluate to the same value share one *canonical id*, so the downstream
//! equation generator and CSE see a single symbol per distinct value.

use std::collections::HashMap;

use crate::error::{RcipError, Result};
use crate::parser::{parse_rcip, RateExpr, Statement};

/// Dense identifier of a *distinct-valued* rate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RateId(pub u32);

/// Inclusive bounds on a kinetic parameter, set by the chemist and enforced
/// by the nonlinear optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Bounds {
    /// Clamp a value into the bounds.
    pub fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.lo, self.hi)
    }

    /// Whether the value lies inside the bounds.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// Evaluated and deduplicated rate constants.
#[derive(Debug, Clone, Default)]
pub struct RateTable {
    /// name → evaluated value.
    values: HashMap<String, f64>,
    /// name → canonical id (shared when values coincide).
    ids: HashMap<String, RateId>,
    /// canonical id → representative name (first defined with that value).
    canonical_names: Vec<String>,
    /// canonical id → value.
    canonical_values: Vec<f64>,
    /// canonical id → bounds, if the chemist set any.
    bounds: Vec<Option<Bounds>>,
    /// definition order of names (for reporting).
    order: Vec<String>,
}

impl RateTable {
    /// Parse and evaluate a definition file.
    pub fn parse(src: &str) -> Result<RateTable> {
        let stmts = parse_rcip(src)?;
        RateTable::from_statements(&stmts)
    }

    /// Build from pre-parsed statements.
    pub fn from_statements(stmts: &[Statement]) -> Result<RateTable> {
        let mut defs: HashMap<&str, &RateExpr> = HashMap::new();
        let mut order: Vec<&str> = Vec::new();
        for stmt in stmts {
            if let Statement::Definition { name, expr } = stmt {
                if defs.insert(name, expr).is_some() {
                    return Err(RcipError::Redefined(name.clone()));
                }
                order.push(name);
            }
        }

        // Evaluate with memoization + cycle detection (DFS coloring).
        let mut table = RateTable::default();
        let mut state: HashMap<&str, u8> = HashMap::new(); // 1 = in progress, 2 = done
        let mut values: HashMap<&str, f64> = HashMap::new();
        for &name in &order {
            let mut path = Vec::new();
            eval_name(name, &defs, &mut state, &mut values, &mut path)?;
        }

        // Assign canonical ids by value, first-definition-first. Values are
        // compared by bit pattern: the paper dedupes constants defined to be
        // literally equal, not merely numerically close.
        let mut by_value: HashMap<u64, RateId> = HashMap::new();
        for &name in &order {
            let value = values[name];
            let id = *by_value.entry(value.to_bits()).or_insert_with(|| {
                let id = RateId(table.canonical_names.len() as u32);
                table.canonical_names.push(name.to_string());
                table.canonical_values.push(value);
                table.bounds.push(None);
                id
            });
            table.values.insert(name.to_string(), value);
            table.ids.insert(name.to_string(), id);
            table.order.push(name.to_string());
        }

        // Apply bounds, addressed by name but stored per canonical id.
        for stmt in stmts {
            if let Statement::Bound { name, lo, hi } = stmt {
                let id = table
                    .ids
                    .get(name)
                    .copied()
                    .ok_or_else(|| RcipError::BoundForUnknown(name.clone()))?;
                if lo > hi {
                    return Err(RcipError::EmptyBound {
                        name: name.clone(),
                        lo: *lo,
                        hi: *hi,
                    });
                }
                table.bounds[id.0 as usize] = Some(Bounds { lo: *lo, hi: *hi });
            }
        }
        Ok(table)
    }

    /// Value of a named constant.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Canonical id of a named constant.
    pub fn id(&self, name: &str) -> Option<RateId> {
        self.ids.get(name).copied()
    }

    /// Representative name of a canonical id.
    pub fn canonical_name(&self, id: RateId) -> &str {
        &self.canonical_names[id.0 as usize]
    }

    /// Value of a canonical id.
    pub fn value(&self, id: RateId) -> f64 {
        self.canonical_values[id.0 as usize]
    }

    /// Bounds of a canonical id, if set.
    pub fn bounds(&self, id: RateId) -> Option<Bounds> {
        self.bounds[id.0 as usize]
    }

    /// Number of *distinct-valued* constants (the paper's test cases use
    /// "the same 10 distinct kinetic parameters" across all five models).
    pub fn distinct_count(&self) -> usize {
        self.canonical_names.len()
    }

    /// Number of defined names (before value dedup).
    pub fn name_count(&self) -> usize {
        self.order.len()
    }

    /// All canonical values, indexed by `RateId`.
    pub fn canonical_value_vec(&self) -> Vec<f64> {
        self.canonical_values.clone()
    }

    /// Bounds per canonical id as `(lo, hi)` vectors, defaulting unset
    /// bounds to `(0, +inf)` (rate constants are nonnegative).
    pub fn bounds_vectors(&self) -> (Vec<f64>, Vec<f64>) {
        let lo = self
            .bounds
            .iter()
            .map(|b| b.map_or(0.0, |b| b.lo))
            .collect();
        let hi = self
            .bounds
            .iter()
            .map(|b| b.map_or(f64::INFINITY, |b| b.hi))
            .collect();
        (lo, hi)
    }

    /// Names in definition order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }

    /// Directly register a constant (used by programmatic model builders
    /// that bypass the text format). Returns its canonical id.
    pub fn define(&mut self, name: &str, value: f64) -> Result<RateId> {
        if self.values.contains_key(name) {
            return Err(RcipError::Redefined(name.to_string()));
        }
        let existing = self
            .canonical_values
            .iter()
            .position(|v| v.to_bits() == value.to_bits());
        let id = match existing {
            Some(pos) => RateId(pos as u32),
            None => {
                let id = RateId(self.canonical_names.len() as u32);
                self.canonical_names.push(name.to_string());
                self.canonical_values.push(value);
                self.bounds.push(None);
                id
            }
        };
        self.values.insert(name.to_string(), value);
        self.ids.insert(name.to_string(), id);
        self.order.push(name.to_string());
        Ok(id)
    }

    /// Set bounds for a canonical id.
    pub fn set_bounds(&mut self, id: RateId, lo: f64, hi: f64) -> Result<()> {
        if lo > hi {
            return Err(RcipError::EmptyBound {
                name: self.canonical_name(id).to_string(),
                lo,
                hi,
            });
        }
        self.bounds[id.0 as usize] = Some(Bounds { lo, hi });
        Ok(())
    }
}

fn eval_name<'a>(
    name: &'a str,
    defs: &HashMap<&'a str, &'a RateExpr>,
    state: &mut HashMap<&'a str, u8>,
    values: &mut HashMap<&'a str, f64>,
    path: &mut Vec<&'a str>,
) -> Result<f64> {
    if let Some(&v) = values.get(name) {
        return Ok(v);
    }
    if state.get(name) == Some(&1) {
        let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        cycle.push(name.to_string());
        return Err(RcipError::Cycle(cycle));
    }
    let expr = defs
        .get(name)
        .copied()
        .ok_or_else(|| RcipError::Undefined {
            name: name.to_string(),
            referenced_by: path.last().unwrap_or(&name).to_string(),
        })?;
    state.insert(name, 1);
    path.push(name);
    let v = eval_expr(name, expr, defs, state, values, path)?;
    path.pop();
    state.insert(name, 2);
    values.insert(name, v);
    Ok(v)
}

fn eval_expr<'a>(
    owner: &'a str,
    expr: &'a RateExpr,
    defs: &HashMap<&'a str, &'a RateExpr>,
    state: &mut HashMap<&'a str, u8>,
    values: &mut HashMap<&'a str, f64>,
    path: &mut Vec<&'a str>,
) -> Result<f64> {
    Ok(match expr {
        RateExpr::Number(v) => *v,
        RateExpr::Ref(name) => eval_name(name, defs, state, values, path)?,
        RateExpr::Add(a, b) => {
            eval_expr(owner, a, defs, state, values, path)?
                + eval_expr(owner, b, defs, state, values, path)?
        }
        RateExpr::Sub(a, b) => {
            eval_expr(owner, a, defs, state, values, path)?
                - eval_expr(owner, b, defs, state, values, path)?
        }
        RateExpr::Mul(a, b) => {
            eval_expr(owner, a, defs, state, values, path)?
                * eval_expr(owner, b, defs, state, values, path)?
        }
        RateExpr::Div(a, b) => {
            let denom = eval_expr(owner, b, defs, state, values, path)?;
            if denom == 0.0 {
                return Err(RcipError::DivisionByZero(owner.to_string()));
            }
            eval_expr(owner, a, defs, state, values, path)? / denom
        }
        RateExpr::Neg(a) => -eval_expr(owner, a, defs, state, values, path)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_dependent_definitions() {
        let t = RateTable::parse("rate K_A = 2; rate K_CD = K_A * 3;").unwrap();
        assert_eq!(t.get("K_A"), Some(2.0));
        assert_eq!(t.get("K_CD"), Some(6.0));
    }

    #[test]
    fn forward_references_allowed() {
        let t = RateTable::parse("rate K_B = K_A + 1; rate K_A = 1;").unwrap();
        assert_eq!(t.get("K_B"), Some(2.0));
    }

    #[test]
    fn equal_values_share_canonical_id() {
        let t = RateTable::parse("rate K1 = 2; rate K2 = 1 + 1; rate K3 = 3;").unwrap();
        assert_eq!(t.id("K1"), t.id("K2"));
        assert_ne!(t.id("K1"), t.id("K3"));
        assert_eq!(t.distinct_count(), 2);
        assert_eq!(t.name_count(), 3);
        // representative is the first-defined name
        assert_eq!(t.canonical_name(t.id("K2").unwrap()), "K1");
    }

    #[test]
    fn cycle_detected() {
        let err = RateTable::parse("rate A = B; rate B = A;").unwrap_err();
        assert!(matches!(err, RcipError::Cycle(_)));
    }

    #[test]
    fn self_cycle_detected() {
        let err = RateTable::parse("rate A = A + 1;").unwrap_err();
        assert!(matches!(err, RcipError::Cycle(_)));
    }

    #[test]
    fn undefined_reference() {
        let err = RateTable::parse("rate A = Missing * 2;").unwrap_err();
        assert!(
            matches!(err, RcipError::Undefined { ref name, .. } if name == "Missing"),
            "{err:?}"
        );
    }

    #[test]
    fn redefinition_rejected() {
        let err = RateTable::parse("rate A = 1; rate A = 2;").unwrap_err();
        assert_eq!(err, RcipError::Redefined("A".to_string()));
    }

    #[test]
    fn division_by_zero() {
        let err = RateTable::parse("rate A = 1 / 0;").unwrap_err();
        assert_eq!(err, RcipError::DivisionByZero("A".to_string()));
    }

    #[test]
    fn bounds_resolved_per_canonical_id() {
        let t = RateTable::parse("rate K = 2; bound K in [0.5, 8];").unwrap();
        let id = t.id("K").unwrap();
        let b = t.bounds(id).unwrap();
        assert_eq!((b.lo, b.hi), (0.5, 8.0));
        assert!(b.contains(2.0));
        assert!(!b.contains(10.0));
        assert_eq!(b.clamp(100.0), 8.0);
    }

    #[test]
    fn bound_for_unknown_name() {
        let err = RateTable::parse("bound K in [0, 1];").unwrap_err();
        assert_eq!(err, RcipError::BoundForUnknown("K".to_string()));
    }

    #[test]
    fn empty_bound_rejected() {
        let err = RateTable::parse("rate K = 1; bound K in [2, 1];").unwrap_err();
        assert!(matches!(err, RcipError::EmptyBound { .. }));
    }

    #[test]
    fn bounds_vectors_default() {
        let t = RateTable::parse("rate A = 1; rate B = 2; bound B in [0.1, 5];").unwrap();
        let (lo, hi) = t.bounds_vectors();
        assert_eq!(lo, vec![0.0, 0.1]);
        assert_eq!(hi[0], f64::INFINITY);
        assert_eq!(hi[1], 5.0);
    }

    #[test]
    fn programmatic_define() {
        let mut t = RateTable::default();
        let a = t.define("K_A", 2.0).unwrap();
        let b = t.define("K_B", 2.0).unwrap();
        let c = t.define("K_C", 3.0).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(t.define("K_A", 9.0).is_err());
        t.set_bounds(c, 0.0, 10.0).unwrap();
        assert!(t.bounds(c).is_some());
    }

    #[test]
    fn paper_style_ten_distinct_parameters() {
        // Mirror the benchmark setup: many reaction-specific names mapping
        // onto 10 distinct values.
        let mut src = String::new();
        for i in 0..10 {
            src.push_str(&format!("rate BASE{i} = {};\n", i + 1));
        }
        for i in 0..50 {
            src.push_str(&format!("rate K{i} = BASE{};\n", i % 10));
        }
        let t = RateTable::parse(&src).unwrap();
        assert_eq!(t.distinct_count(), 10);
        assert_eq!(t.name_count(), 60);
    }
}
