//! RCIP error type.

use std::fmt;

/// Errors from parsing or evaluating rate-constant definitions.
#[derive(Debug, Clone, PartialEq)]
pub enum RcipError {
    /// Lexical or syntactic error at a line/column.
    Syntax {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// What was expected or found.
        message: String,
    },
    /// A definition references a constant that is never defined.
    Undefined {
        /// The missing constant.
        name: String,
        /// The definition that referenced it.
        referenced_by: String,
    },
    /// Definitions form a dependency cycle.
    Cycle(Vec<String>),
    /// The same constant is defined twice.
    Redefined(String),
    /// Division by zero while evaluating a definition.
    DivisionByZero(String),
    /// A bound references an unknown constant.
    BoundForUnknown(String),
    /// Lower bound exceeds upper bound.
    EmptyBound {
        /// The bounded constant.
        name: String,
        /// Offending lower bound.
        lo: f64,
        /// Offending upper bound.
        hi: f64,
    },
}

impl fmt::Display for RcipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcipError::Syntax {
                line,
                column,
                message,
            } => write!(f, "syntax error at {line}:{column}: {message}"),
            RcipError::Undefined {
                name,
                referenced_by,
            } => write!(
                f,
                "constant '{name}' referenced by '{referenced_by}' is never defined"
            ),
            RcipError::Cycle(names) => write!(f, "definition cycle: {}", names.join(" -> ")),
            RcipError::Redefined(name) => write!(f, "constant '{name}' defined twice"),
            RcipError::DivisionByZero(name) => {
                write!(f, "division by zero while evaluating '{name}'")
            }
            RcipError::BoundForUnknown(name) => {
                write!(f, "bound given for unknown constant '{name}'")
            }
            RcipError::EmptyBound { name, lo, hi } => {
                write!(f, "empty bound for '{name}': [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for RcipError {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, RcipError>;
