//! # rms-rcip — Rate Constant Information Processor
//!
//! The second component of the paper's Reaction Modeling Suite. "Input
//! data to the RCIP are expressions that define some constants as integer
//! constants, and other constants as expressions of these integer
//! constants" (§2). The RCIP evaluates those definitions and — critically
//! for the downstream CSE pass — *renames constants based on common
//! values*, so that two reactions sharing a kinetic rate share one symbol.
//!
//! The chemist's parameter bounds for the nonlinear optimizer (§4) are
//! also declared here (`bound K in [lo, hi];`).

#![warn(missing_docs)]

pub mod error;
pub mod parser;
pub mod table;

pub use error::{RcipError, Result};
pub use parser::{parse_rcip, RateExpr, Statement};
pub use table::{Bounds, RateId, RateTable};
