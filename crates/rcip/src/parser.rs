//! Parser for rate-constant definition files.
//!
//! Grammar (one statement per `;`, `#` comments to end of line):
//!
//! ```text
//! program   := (definition | bound)*
//! definition:= "rate" IDENT "=" expr ";"
//! bound     := "bound" IDENT "in" "[" number "," number "]" ";"
//! expr      := term (("+" | "-") term)*
//! term      := factor (("*" | "/") factor)*
//! factor    := number | IDENT | "(" expr ")" | "-" factor
//! ```
//!
//! Numbers may be integers or decimal floats with optional exponent; the
//! paper's inputs "define some constants as integer constants, and other
//! constants as expressions of these integer constants".

use crate::error::{RcipError, Result};

/// Expression AST for a rate-constant definition.
#[derive(Debug, Clone, PartialEq)]
pub enum RateExpr {
    /// Literal number.
    Number(f64),
    /// Reference to another constant.
    Ref(String),
    /// Sum.
    Add(Box<RateExpr>, Box<RateExpr>),
    /// Difference.
    Sub(Box<RateExpr>, Box<RateExpr>),
    /// Product.
    Mul(Box<RateExpr>, Box<RateExpr>),
    /// Quotient.
    Div(Box<RateExpr>, Box<RateExpr>),
    /// Negation.
    Neg(Box<RateExpr>),
}

impl RateExpr {
    /// Names referenced by this expression, in first-occurrence order.
    pub fn references(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            RateExpr::Number(_) => {}
            RateExpr::Ref(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            RateExpr::Add(a, b)
            | RateExpr::Sub(a, b)
            | RateExpr::Mul(a, b)
            | RateExpr::Div(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            RateExpr::Neg(a) => a.collect_refs(out),
        }
    }
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `rate NAME = expr;`
    Definition {
        /// Constant name.
        name: String,
        /// Defining expression.
        expr: RateExpr,
    },
    /// `bound NAME in [lo, hi];`
    Bound {
        /// Constant name.
        name: String,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    col: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Equals,
    Semi,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> RcipError {
        RcipError::Syntax {
            line: self.line,
            column: self.col,
            message: message.into(),
        }
    }

    fn bump_char(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_char() {
                Some(c) if c.is_whitespace() => {
                    self.bump_char();
                }
                Some('#') => {
                    while let Some(c) = self.bump_char() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Tok> {
        self.skip_trivia();
        let Some(c) = self.peek_char() else {
            return Ok(Tok::Eof);
        };
        match c {
            '+' => {
                self.bump_char();
                Ok(Tok::Plus)
            }
            '-' => {
                self.bump_char();
                Ok(Tok::Minus)
            }
            '*' => {
                self.bump_char();
                Ok(Tok::Star)
            }
            '/' => {
                self.bump_char();
                Ok(Tok::Slash)
            }
            '(' => {
                self.bump_char();
                Ok(Tok::LParen)
            }
            ')' => {
                self.bump_char();
                Ok(Tok::RParen)
            }
            '[' => {
                self.bump_char();
                Ok(Tok::LBracket)
            }
            ']' => {
                self.bump_char();
                Ok(Tok::RBracket)
            }
            ',' => {
                self.bump_char();
                Ok(Tok::Comma)
            }
            '=' => {
                self.bump_char();
                Ok(Tok::Equals)
            }
            ';' => {
                self.bump_char();
                Ok(Tok::Semi)
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = self.pos;
                while self
                    .peek_char()
                    .is_some_and(|c| c.is_ascii_digit() || c == '.')
                {
                    self.bump_char();
                }
                // Exponent part.
                if self.peek_char().is_some_and(|c| c == 'e' || c == 'E') {
                    self.bump_char();
                    if self.peek_char().is_some_and(|c| c == '+' || c == '-') {
                        self.bump_char();
                    }
                    while self.peek_char().is_some_and(|c| c.is_ascii_digit()) {
                        self.bump_char();
                    }
                }
                let text = &self.src[start..self.pos];
                text.parse::<f64>()
                    .map(Tok::Number)
                    .map_err(|_| self.error(format!("bad number '{text}'")))
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = self.pos;
                while self
                    .peek_char()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    self.bump_char();
                }
                Ok(Tok::Ident(self.src[start..self.pos].to_string()))
            }
            other => Err(self.error(format!("unexpected character '{other}'"))),
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    current: Tok,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>> {
        let mut lexer = Lexer::new(src);
        let current = lexer.next_token()?;
        Ok(Parser { lexer, current })
    }

    fn bump(&mut self) -> Result<Tok> {
        let next = self.lexer.next_token()?;
        Ok(std::mem::replace(&mut self.current, next))
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        if self.current == tok {
            self.bump()?;
            Ok(())
        } else {
            Err(self
                .lexer
                .error(format!("expected {what}, found {:?}", self.current)))
        }
    }

    fn parse_program(&mut self) -> Result<Vec<Statement>> {
        let mut stmts = Vec::new();
        while self.current != Tok::Eof {
            stmts.push(self.parse_statement()?);
        }
        Ok(stmts)
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        let Tok::Ident(keyword) = self.bump()? else {
            return Err(self.lexer.error("expected 'rate' or 'bound'"));
        };
        match keyword.as_str() {
            "rate" => {
                let Tok::Ident(name) = self.bump()? else {
                    return Err(self.lexer.error("expected constant name after 'rate'"));
                };
                self.expect(Tok::Equals, "'='")?;
                let expr = self.parse_expr()?;
                self.expect(Tok::Semi, "';'")?;
                Ok(Statement::Definition { name, expr })
            }
            "bound" => {
                let Tok::Ident(name) = self.bump()? else {
                    return Err(self.lexer.error("expected constant name after 'bound'"));
                };
                match self.bump()? {
                    Tok::Ident(kw) if kw == "in" => {}
                    _ => return Err(self.lexer.error("expected 'in'")),
                }
                self.expect(Tok::LBracket, "'['")?;
                let lo = self.parse_signed_number()?;
                self.expect(Tok::Comma, "','")?;
                let hi = self.parse_signed_number()?;
                self.expect(Tok::RBracket, "']'")?;
                self.expect(Tok::Semi, "';'")?;
                Ok(Statement::Bound { name, lo, hi })
            }
            other => Err(self
                .lexer
                .error(format!("expected 'rate' or 'bound', found '{other}'"))),
        }
    }

    fn parse_signed_number(&mut self) -> Result<f64> {
        let neg = if self.current == Tok::Minus {
            self.bump()?;
            true
        } else {
            false
        };
        match self.bump()? {
            Tok::Number(v) => Ok(if neg { -v } else { v }),
            other => Err(self
                .lexer
                .error(format!("expected number, found {other:?}"))),
        }
    }

    fn parse_expr(&mut self) -> Result<RateExpr> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.current {
                Tok::Plus => {
                    self.bump()?;
                    let rhs = self.parse_term()?;
                    lhs = RateExpr::Add(Box::new(lhs), Box::new(rhs));
                }
                Tok::Minus => {
                    self.bump()?;
                    let rhs = self.parse_term()?;
                    lhs = RateExpr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_term(&mut self) -> Result<RateExpr> {
        let mut lhs = self.parse_factor()?;
        loop {
            match self.current {
                Tok::Star => {
                    self.bump()?;
                    let rhs = self.parse_factor()?;
                    lhs = RateExpr::Mul(Box::new(lhs), Box::new(rhs));
                }
                Tok::Slash => {
                    self.bump()?;
                    let rhs = self.parse_factor()?;
                    lhs = RateExpr::Div(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_factor(&mut self) -> Result<RateExpr> {
        match self.bump()? {
            Tok::Number(v) => Ok(RateExpr::Number(v)),
            Tok::Ident(name) => Ok(RateExpr::Ref(name)),
            Tok::LParen => {
                let inner = self.parse_expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(inner)
            }
            Tok::Minus => Ok(RateExpr::Neg(Box::new(self.parse_factor()?))),
            other => Err(self
                .lexer
                .error(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parse a rate-constant definition file into statements.
pub fn parse_rcip(src: &str) -> Result<Vec<Statement>> {
    Parser::new(src)?.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_integer_definition() {
        let stmts = parse_rcip("rate K_A = 2;").unwrap();
        assert_eq!(
            stmts,
            vec![Statement::Definition {
                name: "K_A".to_string(),
                expr: RateExpr::Number(2.0),
            }]
        );
    }

    #[test]
    fn parses_expression_with_precedence() {
        let stmts = parse_rcip("rate K = 1 + 2 * 3;").unwrap();
        let Statement::Definition { expr, .. } = &stmts[0] else {
            panic!()
        };
        // 1 + (2*3), not (1+2)*3
        assert_eq!(
            *expr,
            RateExpr::Add(
                Box::new(RateExpr::Number(1.0)),
                Box::new(RateExpr::Mul(
                    Box::new(RateExpr::Number(2.0)),
                    Box::new(RateExpr::Number(3.0))
                ))
            )
        );
    }

    #[test]
    fn parses_references_and_parens() {
        let stmts = parse_rcip("rate K_CD = (K_A + 1) * 3;").unwrap();
        let Statement::Definition { expr, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(expr.references(), vec!["K_A"]);
    }

    #[test]
    fn parses_bounds() {
        let stmts = parse_rcip("bound K_A in [0.1, 1e2];").unwrap();
        assert_eq!(
            stmts,
            vec![Statement::Bound {
                name: "K_A".to_string(),
                lo: 0.1,
                hi: 100.0,
            }]
        );
    }

    #[test]
    fn negative_bound_and_unary_minus() {
        let stmts = parse_rcip("bound K in [-1, 1]; rate J = -2 * -3;").unwrap();
        assert_eq!(stmts.len(), 2);
        let Statement::Bound { lo, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(*lo, -1.0);
    }

    #[test]
    fn comments_and_whitespace() {
        let src = "# kinetics from Gaussian '03 regression\nrate K_A = 2; # base scission rate\n\nrate K_B = K_A;\n";
        let stmts = parse_rcip(src).unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = parse_rcip("rate = 2;").unwrap_err();
        assert!(matches!(err, RcipError::Syntax { line: 1, .. }));
        let err = parse_rcip("rate K = 2").unwrap_err();
        assert!(matches!(err, RcipError::Syntax { .. }));
        let err = parse_rcip("frob K = 2;").unwrap_err();
        assert!(matches!(err, RcipError::Syntax { .. }));
    }

    #[test]
    fn reference_collection_dedupes() {
        let stmts = parse_rcip("rate K = A * A + B;").unwrap();
        let Statement::Definition { expr, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(expr.references(), vec!["A", "B"]);
    }
}
