//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace ships this tiny shim implementing exactly the API its
//! crates use: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges. The generator is a
//! SplitMix64-seeded xorshift64*: statistically fine for randomized
//! tests and synthetic-data generation, deterministic per seed (the only
//! properties the workspace relies on). It makes no attempt to match the
//! real crate's value streams.

use std::ops::Range;

/// Seedable generator constructors (the one the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler over a half-open range.
pub trait SampleUniform: Sized {
    /// Draw one value from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Range shapes that can be sampled. The single blanket impl (mirroring
/// the real crate) is what lets the compiler unify `T` with the range's
/// element type at `gen_range` call sites.
pub trait SampleRange<T> {
    /// Draw one value. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

/// The subset of the real `Rng` trait the workspace calls.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range (`lo..hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0..1.0) < p
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Small, fast, seedable generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion avoids weak low-entropy seeds (0, 1, ...).
            let mut s = seed;
            let state = splitmix64(&mut s) | 1;
            SmallRng { state }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let neg = rng.gen_range(-3..4);
            assert!((-3..4).contains(&neg));
        }
    }

    #[test]
    fn float_range_is_not_constant() {
        let mut rng = SmallRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..50).map(|_| rng.gen_range(0.0..1.0)).collect();
        let distinct = draws
            .iter()
            .filter(|v| draws.iter().filter(|w| w == v).count() == 1)
            .count();
        assert!(distinct > 40, "suspiciously repetitive: {draws:?}");
    }
}
