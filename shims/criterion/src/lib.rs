//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this shim provides the subset of criterion's API the workspace's
//! benches use — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `black_box` —
//! backed by plain wall-clock timing (median of a fixed iteration
//! budget). Statistical analysis, plotting, and baselines are out of
//! scope: the benches compile, run, and print comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("name", param)`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    /// `BenchmarkId::from_parameter(param)`.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

/// Things accepted where criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// The display text of the id.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Number of timed iterations (after one warmup).
    iters: usize,
    /// Collected per-iteration times.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f` over the iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup / fault any panics before timing
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lower/raise the iteration budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim has no target time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, mut payload: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: self.sample_size,
            samples: Vec::new(),
        };
        payload(&mut bencher);
        let mut times = bencher.samples;
        times.sort_unstable();
        let median = times
            .get(times.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "{}/{id}: median {median:?} over {} iters",
            self.name,
            times.len()
        );
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        payload: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into_text();
        self.run(id, payload);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut payload: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.text.clone(), |b| payload(b, input));
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The bench driver handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        payload: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, payload);
        self
    }
}

/// Collect bench functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_payload() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 4); // warmup + 3 samples
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| assert_eq!(x * x, 49))
        });
        group.finish();
    }
}
