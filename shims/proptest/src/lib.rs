//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this shim implements the subset of proptest the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`Strategy`] with `prop_map`,
//! * [`any`] for primitives, numeric range strategies, tuple strategies,
//! * `prop::collection::vec`, `prop::sample::select`,
//! * string strategies from the tiny regex subset the tests use
//!   (`.{lo,hi}` and `[class]{lo,hi}`).
//!
//! Cases are generated from a per-test deterministic seed (hash of the
//! test path + case index), so failures are reproducible run-to-run.
//! There is no shrinking: a failing case reports its inputs via the
//! panic message of the assertion that tripped.

use std::fmt;
use std::ops::Range;

/// Error carried out of a failing property body (what `prop_assert!`
/// returns early with).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from any message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic xorshift generator for case construction.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an explicit value.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    /// Deterministic RNG for one (test, case) pair: FNV-1a over the test
    /// path mixed with the case index.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h ^ ((case as u64) << 32 | case as u64))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw from `lo..hi` (half-open, non-empty).
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}

/// A value generator. Unlike real proptest there is no intermediate
/// `ValueTree`/shrinking machinery: strategies generate values directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $via:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                    i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Marker for types [`any`] can produce.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 61) as i32 - 30;
        (unit - 0.5) * 2f64.powi(exp)
    }
}

/// Strategy form of [`Arbitrary`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// String strategies from a tiny regex subset.
// ---------------------------------------------------------------------------

/// The parsed form of the supported pattern subset: one repeated atom.
#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any printable char (plus occasional exotic ones).
    AnyChar,
    /// `[a-z...]` — an explicit set of chars.
    Class(Vec<char>),
}

fn parse_pattern(pattern: &str) -> Option<(Atom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let atom = match chars.next()? {
        '.' => Atom::AnyChar,
        '[' => {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                let c = chars.next()?;
                match c {
                    ']' => break,
                    '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                        let hi = chars.next()?;
                        let lo = prev.take()?;
                        for code in lo as u32..=hi as u32 {
                            set.extend(char::from_u32(code));
                        }
                    }
                    c => {
                        if let Some(p) = prev {
                            set.push(p);
                        }
                        prev = Some(c);
                    }
                }
            }
            set.extend(prev);
            Atom::Class(set)
        }
        _ => return None,
    };
    // `{lo,hi}` repetition.
    if chars.next()? != '{' {
        return None;
    }
    let rest: String = chars.collect();
    let body = rest.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((atom, lo.parse().ok()?, hi.parse().ok()?))
}

/// Pattern strings double as strategies (e.g. `".{0,200}"` in real
/// proptest). Only the `atom{lo,hi}` subset is supported; anything else
/// panics with a clear message so a future test knows to extend the shim.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (atom, lo, hi) = parse_pattern(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported pattern {self:?}"));
        let len = if lo == hi {
            lo
        } else {
            rng.usize_in(lo..hi + 1)
        };
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let c = match &atom {
                Atom::Class(set) => set[rng.usize_in(0..set.len())],
                Atom::AnyChar => match rng.next_u64() % 8 {
                    // Mostly printable ASCII, sometimes beyond: keeps the
                    // parsers honest about multi-byte UTF-8 and controls.
                    0 => char::from_u32(0x00A0 + (rng.next_u64() % 0x500) as u32).unwrap_or('ø'),
                    1 => ['\t', '\u{7f}', 'λ', '∂', '🧪', '𝛼', '\\', '"'][rng.usize_in(0..8)],
                    _ => (0x20 + (rng.next_u64() % 0x5f) as u8) as char,
                },
            };
            out.push(c);
        }
        out
    }
}

/// Submodules mirrored from the real crate (`prop::collection`,
/// `prop::sample`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with random length in a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(strategy, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.usize_in(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::sample`.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy picking uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.usize_in(0..self.options.len())].clone()
        }
    }
}

/// The `prop::` path tests reach combinators through.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("property failed at case {}/{}: {}", __case, config.cases, e);
                }
            }
        }
    )*};
}

/// Early-return assertion for property bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Early-return equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_parse_supported_forms() {
        let mut rng = crate::TestRng::new(9);
        let s = crate::Strategy::generate(&".{0,200}", &mut rng);
        assert!(s.chars().count() <= 200);
        let s = crate::Strategy::generate(&"[ -~]{0,60}", &mut rng);
        assert!(s.chars().count() <= 60);
        assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The machinery end to end: vec + select + map + tuple + ranges.
        #[test]
        fn shim_machinery_works(
            v in prop::collection::vec((0u32..5, any::<bool>()), 1..10),
            word in prop::sample::select(vec!["a", "b", "c"]),
            (x, y) in (0usize..4, 1i64..100).prop_map(|(a, b)| (a, b * 2)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|(n, _)| *n < 5), "bad element in {:?}", v);
            prop_assert!(["a", "b", "c"].contains(&word));
            prop_assert!(x < 4);
            prop_assert_eq!(y % 2, 0);
        }
    }
}
