//! Frontend determinism: the closure engine must build a byte-identical
//! `ReactionNetwork` whatever its execution configuration — serial or
//! threaded, string canonical keys or interned content hashes, per-rule
//! frontier or legacy full rescan. Errors must match too: a run that
//! blows the species limit blows it identically at every thread count.
//!
//! Also pins the paper's Table 1 case-5 scale (the 250 000-ODE ceiling
//! the parallel frontend targets) and the synthetic workloads' exact
//! species/reaction counts, so a frontend change that silently perturbs
//! network generation fails loudly here.

use proptest::prelude::*;

use rms_suite::{
    compile_with_options, expand_program, parse_rdl, CompilerSession, EngineOptions, OptLevel,
    RateTable, ReactionNetwork, SessionOptions,
};
use rms_workload::{scaled_case, FrontierSpec, TABLE1};

/// Full byte-level serialization of a network: species (id, name,
/// initial, canonical form) in id order plus every reaction with its
/// operand ids, rate and rule. Any divergence between engine
/// configurations shows up as a string diff.
fn render(network: &ReactionNetwork) -> String {
    let mut out = String::new();
    for (id, species) in network.species_iter() {
        out.push_str(&format!(
            "s{} {} init {} canon {:?}\n",
            id.0,
            species.name,
            species.initial_concentration,
            network.canonical_smiles(id)
        ));
    }
    for reaction in network.reactions() {
        let ids = |v: &[rms_rdl::SpeciesId]| {
            v.iter()
                .map(|s| s.0.to_string())
                .collect::<Vec<_>>()
                .join("+")
        };
        out.push_str(&format!(
            "{} -> {} rate {} rule {}\n",
            ids(&reaction.reactants),
            ids(&reaction.products),
            reaction.rate,
            reaction.rule
        ));
    }
    out
}

/// Run the Network stage under one engine configuration; both the
/// success serialization and the error text participate in equality.
fn close(source: &str, options: EngineOptions) -> Result<String, String> {
    let program = parse_rdl(source).map_err(|e| e.to_string())?;
    let rates = RateTable::parse(&program.rate_source).map_err(|e| e.to_string())?;
    let seeds = expand_program(&program).map_err(|e| e.to_string())?;
    compile_with_options(&program, rates, &seeds, &options)
        .map(|model| render(&model.network))
        .map_err(|e| e.to_string())
}

/// The configurations under test: the PR-9 oracle (full rescan, string
/// keys, serial) and the frontier engine at 1, 2 and 8 threads with and
/// without interning, plus auto thread selection.
fn configurations() -> Vec<(&'static str, EngineOptions)> {
    vec![
        (
            "legacy-rescan",
            EngineOptions {
                threads: 1,
                intern: false,
                legacy_rescan: true,
            },
        ),
        (
            "frontier-t1",
            EngineOptions {
                threads: 1,
                intern: true,
                legacy_rescan: false,
            },
        ),
        (
            "frontier-t2",
            EngineOptions {
                threads: 2,
                intern: true,
                legacy_rescan: false,
            },
        ),
        (
            "frontier-t8",
            EngineOptions {
                threads: 8,
                intern: true,
                legacy_rescan: false,
            },
        ),
        (
            "frontier-t8-nointern",
            EngineOptions {
                threads: 8,
                intern: false,
                legacy_rescan: false,
            },
        ),
        (
            "frontier-auto",
            EngineOptions {
                threads: 0,
                intern: true,
                legacy_rescan: false,
            },
        ),
    ]
}

fn assert_all_configurations_agree(source: &str) {
    let configs = configurations();
    let reference = close(source, configs[0].1);
    for (label, options) in &configs[1..] {
        let got = close(source, *options);
        assert_eq!(got, reference, "{label} diverged from {}", configs[0].0);
    }
}

#[test]
fn frontier_workload_is_bit_identical_across_engines() {
    // 270 species, two growth generations, all three coupling pairs.
    assert_all_configurations_agree(&FrontierSpec { arms: 9 }.rdl_source());
}

/// One knob-randomized frontier-family program. Tight species caps make
/// some instances *fail* with `SpeciesLimitExceeded` — the error must be
/// identical across configurations too.
#[derive(Debug, Clone)]
struct RandomProgram {
    arms: usize,
    rule_mask: u8,
    generations: usize,
    species_cap: usize,
}

impl RandomProgram {
    const RULES: [&'static str; 6] = [
        "rule scission_s { on SChain; site bond S ~ S order single; action disconnect; rate K_sc_s; }",
        "rule scission_o { on OChain; site bond O ~ O order single; action disconnect; rate K_sc_o; }",
        "rule scission_n { on NChain; site bond N ~ N order single; action disconnect; rate K_sc_n; }",
        "rule couple_so { site pair S & radical, O & radical; action connect single; rate K_cp_so; }",
        "rule couple_sn { site pair S & radical, N & radical; action connect single; rate K_cp_sn; }",
        "rule couple_on { site pair O & radical, N & radical; action connect single; rate K_cp_on; }",
    ];

    fn source(&self) -> String {
        let mut src = String::from(
            "rate K_sc_s = 4;\nrate K_sc_o = 3;\nrate K_sc_n = 2;\n\
             rate K_cp_so = 2.5;\nrate K_cp_sn = 1.5;\nrate K_cp_on = 0.5;\n",
        );
        src.push_str(&format!(
            "molecule SChain = \"CS{{n}}C\" for n in 2..{a} init 1.0;\n\
             molecule OChain = \"CO{{n}}C\" for n in 2..{a} init 0.5;\n\
             molecule NChain = \"CN{{n}}C\" for n in 2..{a} init 0.25;\n",
            a = self.arms
        ));
        for (i, rule) in Self::RULES.iter().enumerate() {
            if self.rule_mask & (1 << i) != 0 {
                src.push_str(rule);
                src.push('\n');
            }
        }
        src.push_str(&format!(
            "limit atoms {};\nlimit species {};\nlimit generations {};\n",
            2 * self.arms,
            self.species_cap,
            self.generations
        ));
        src
    }
}

fn arb_program() -> impl Strategy<Value = RandomProgram> {
    (
        2usize..6,
        0u8..64,
        1usize..5,
        prop::sample::select(vec![10usize, 40, 100_000]),
    )
        .prop_map(
            |(arms, rule_mask, generations, species_cap)| RandomProgram {
                arms,
                rule_mask,
                generations,
                species_cap,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random rule subsets, chain lengths, generation caps and species
    /// caps: every engine configuration produces the identical
    /// serialization — or the identical error.
    #[test]
    fn random_programs_agree_across_engines(program in arb_program()) {
        let source = program.source();
        let configs = configurations();
        let reference = close(&source, configs[0].1);
        for (label, options) in &configs[1..] {
            prop_assert_eq!(
                &close(&source, *options),
                &reference,
                "{} diverged on {:?}",
                label,
                program
            );
        }
    }
}

#[test]
fn session_artifacts_agree_across_frontend_threads() {
    let source = FrontierSpec { arms: 6 }.rdl_source();
    let compile_at = |threads: usize| {
        let mut options = SessionOptions::new(OptLevel::Full);
        options.frontend_threads = threads;
        CompilerSession::with_options(options)
            .compile_source("frontier.rdl", &source)
            .expect("frontier workload compiles")
    };
    // Different thread counts hash to different cache keys, so both are
    // cold compiles — and must still agree on everything downstream.
    let serial = compile_at(1);
    let threaded = compile_at(2);
    assert_eq!(
        render(&serial.artifact.network),
        render(&threaded.artifact.network),
        "networks diverge across frontend thread counts"
    );
    assert_eq!(
        serial.artifact.compiled.tape.to_string(),
        threaded.artifact.compiled.tape.to_string(),
        "lowered tapes diverge across frontend thread counts"
    );
}

/// Table 1 case 5 is the paper's largest model — the 250 000-ODE wall
/// the parallel frontend exists to climb. Pin the reference row and the
/// sizes the synthetic stand-ins resolve to.
#[test]
fn table1_case_5_scale_is_pinned() {
    let c5 = TABLE1[4];
    assert_eq!(c5.case, 5);
    assert_eq!(c5.equations, 250_000);
    assert_eq!(c5.mults_unopt, 2_400_000);
    assert_eq!(c5.adds_unopt, 974_000);

    // The frontier workload sized for case 5: arms and exact closed
    // species count are a pure function of the target.
    let spec = FrontierSpec::for_species(c5.equations);
    assert_eq!(spec.arms, 289);
    assert_eq!(spec.species_estimate(), 250_560);

    // The vulcanization stand-in at 1/250 scale: exact generated counts.
    let model = scaled_case(5, 250);
    assert_eq!(
        (
            model.network.species_count(),
            model.network.reaction_count()
        ),
        (988, 10_242),
        "scaled_case(5, 250) network changed shape"
    );
}
