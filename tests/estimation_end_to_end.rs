//! The full Figure 1 workflow as an integration test: generate a model,
//! synthesize experimental data from known kinetics, and recover those
//! kinetics with the parallel parameter estimator.

use rms_suite::workload::{generate_model, synthesize, ExpDataSpec, VulcanizationSpec, TRUE_RATES};
use rms_suite::{compile_model, LmOptions, OptLevel, ParallelEstimator, TapeSimulator};

fn build_simulator() -> (TapeSimulator, Vec<f64>, Vec<f64>) {
    let model = generate_model(VulcanizationSpec {
        sites: 4,
        max_chain: 4,
        neighbourhood: 2,
    });
    let crosslinks = model.crosslink_species.clone();
    let (lo, hi) = model.rates.bounds_vectors();
    let suite = compile_model(model.network, model.rates, OptLevel::Full).expect("compiles");
    let mut observable = vec![0.0; suite.system.len()];
    for x in &crosslinks {
        observable[x.0 as usize] = 1.0;
    }
    (
        TapeSimulator::from_artifact(suite.artifact(), observable),
        lo,
        hi,
    )
}

#[test]
fn recovers_perturbed_parameters() {
    let (simulator, lo, hi) = build_simulator();
    let files = synthesize(
        &simulator,
        &TRUE_RATES,
        ExpDataSpec {
            n_files: 6,
            records: 60,
            base_horizon: 1.5,
            horizon_skew: 0.3,
            noise: 0.0,
            seed: 11,
        },
    )
    .expect("synthesis succeeds");
    let estimator = ParallelEstimator::new(&simulator, files, 2, true);

    // Truth must already be a zero of the objective.
    let at_truth = estimator.objective(&TRUE_RATES).expect("objective");
    let residual_norm: f64 = at_truth
        .error_vector
        .iter()
        .map(|v| v * v)
        .sum::<f64>()
        .sqrt();
    assert!(residual_norm < 1e-8, "truth residual {residual_norm}");

    // Perturb a couple of influential parameters and let LM pull them
    // back. (Recovering all 10 from one noiseless observable is an
    // ill-posed problem — the paper's chemists constrain most of them
    // tightly; we perturb K_sulf and K_rev.)
    let mut start = TRUE_RATES.to_vec();
    start[1] *= 1.8; // K_sulf
    start[8] *= 0.4; // K_rev
    let mut lo2 = TRUE_RATES.to_vec();
    let mut hi2 = TRUE_RATES.to_vec();
    lo2[1] = lo[1];
    hi2[1] = hi[1];
    lo2[8] = lo[8];
    hi2[8] = hi[8];

    let result = estimator
        .estimate(
            &start,
            &lo2,
            &hi2,
            LmOptions {
                max_iters: 80,
                fd_step: 1e-3, // above the ODE solver's noise floor
                ..LmOptions::default()
            },
        )
        .expect("estimation runs");
    assert!(
        (result.params[1] - TRUE_RATES[1]).abs() / TRUE_RATES[1] < 0.02,
        "K_sulf recovered poorly: {} vs {}",
        result.params[1],
        TRUE_RATES[1]
    );
    assert!(
        (result.params[8] - TRUE_RATES[8]).abs() / TRUE_RATES[8] < 0.05,
        "K_rev recovered poorly: {} vs {}",
        result.params[8],
        TRUE_RATES[8]
    );
    assert!(result.cost < 1e-10, "final cost {}", result.cost);
}

#[test]
fn estimation_respects_bounds() {
    let (simulator, _, _) = build_simulator();
    let files = synthesize(
        &simulator,
        &TRUE_RATES,
        ExpDataSpec {
            n_files: 3,
            records: 30,
            base_horizon: 1.0,
            horizon_skew: 0.0,
            noise: 0.0,
            seed: 2,
        },
    )
    .expect("synthesis succeeds");
    let estimator = ParallelEstimator::new(&simulator, files, 2, false);
    // Constrain K_sulf into a band excluding the truth: the fit must end
    // on the boundary, not outside it.
    let truth = TRUE_RATES[1];
    let mut lo = TRUE_RATES.to_vec();
    let mut hi = TRUE_RATES.to_vec();
    lo[1] = truth * 1.2;
    hi[1] = truth * 2.0;
    let mut start = TRUE_RATES.to_vec();
    start[1] = truth * 1.5;
    let result = estimator
        .estimate(
            &start,
            &lo,
            &hi,
            LmOptions {
                max_iters: 40,
                fd_step: 1e-3, // above the ODE solver's noise floor
                ..LmOptions::default()
            },
        )
        .expect("estimation runs");
    assert!(
        result.params[1] >= lo[1] - 1e-12 && result.params[1] <= hi[1] + 1e-12,
        "bound violated: {}",
        result.params[1]
    );
    // The best feasible point is the lower bound (closest to truth).
    assert!(
        (result.params[1] - lo[1]).abs() / lo[1] < 0.05,
        "expected pinning near the lower bound, got {}",
        result.params[1]
    );
}

#[test]
fn dynamic_lb_does_not_change_results() {
    let (simulator, _, _) = build_simulator();
    let files = synthesize(
        &simulator,
        &TRUE_RATES,
        ExpDataSpec {
            n_files: 5,
            records: 40,
            base_horizon: 1.2,
            horizon_skew: 0.4,
            noise: 1e-4,
            seed: 5,
        },
    )
    .expect("synthesis succeeds");
    let p: Vec<f64> = TRUE_RATES.iter().map(|v| v * 1.1).collect();
    let without = ParallelEstimator::new(&simulator, files.clone(), 3, false)
        .objective(&p)
        .expect("objective");
    let with_lb = ParallelEstimator::new(&simulator, files, 3, true);
    with_lb.objective(&p).expect("first call records times");
    let second = with_lb.objective(&p).expect("second call uses LPT");
    for (a, b) in without.error_vector.iter().zip(&second.error_vector) {
        assert!((a - b).abs() < 1e-12, "schedule changed the mathematics");
    }
}
