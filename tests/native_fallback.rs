//! Graceful degradation when no C compiler is available: `--engine
//! native` must finish the simulation on the exec engine with a rendered
//! warning and exit code 0 — never a hard failure.
//!
//! This lives in its own test binary because it mutates `$CC` (passed to
//! the spawned `rmsc`, and set process-wide for the library half), which
//! must not race the differential tests that probe for a real toolchain.

use std::process::Command;
use std::sync::Arc;

use rms_suite::workload::VULCANIZATION_RDL;
use rms_suite::{
    CompilerSession, EngineMode, JacobianMode, OptLevel, SessionOptions, SolverOptions, SuiteModel,
};

/// An environment in which the toolchain probe cannot succeed: `$CC`
/// points at a path that does not exist, and an explicit `$CC` is tried
/// *exclusively* (never silently replaced by `cc` from `$PATH`).
const BROKEN_CC: &str = "/nonexistent/rms-no-such-compiler";

#[test]
fn simulate_with_native_engine_falls_back_to_exec_without_a_toolchain() {
    let dir = std::env::temp_dir().join(format!("rms-native-fallback-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("vulcanization.rdl");
    std::fs::write(&path, VULCANIZATION_RDL).expect("fixture written");

    let out = Command::new(env!("CARGO_BIN_EXE_rmsc"))
        .args([
            "simulate",
            &path.display().to_string(),
            "--engine",
            "native",
            "--tend",
            "0.05",
            "--steps",
            "2",
        ])
        .env("CC", BROKEN_CC)
        .output()
        .expect("rmsc runs");
    let stdout = String::from_utf8(out.stdout).expect("stdout is utf-8");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("warning: native engine unavailable:"),
        "missing diagnostic in:\n{stdout}"
    );
    assert!(
        stdout.contains("warning: falling back to the exec engine"),
        "missing fallback notice in:\n{stdout}"
    );
    // The simulation itself still ran to completion: a header row plus
    // one line per requested step.
    assert!(
        stdout.lines().any(|l| l.trim_start().starts_with('t')),
        "no trajectory header in:\n{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.trim_start().starts_with("0.05")),
        "no trajectory rows in:\n{stdout}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn library_native_request_degrades_to_exec_with_a_diagnostic() {
    // Process-wide, but this binary runs no test that needs a real
    // toolchain.
    std::env::set_var("CC", BROKEN_CC);

    let mut options = SessionOptions::new(OptLevel::Full);
    options.native = true;
    let compiled = CompilerSession::with_options(options)
        .compile_source("vulcanization.rdl", VULCANIZATION_RDL)
        .expect("codegen failure must not fail the compile");
    let artifact = compiled.artifact;
    assert!(artifact.native.is_none());
    let diag = artifact
        .native_diag
        .as_deref()
        .expect("diagnostic recorded");
    assert!(
        diag.contains(BROKEN_CC),
        "diagnostic names the compiler: {diag}"
    );

    // EngineMode::Native still solves — on the exec engine.
    let trajectory = SuiteModel::from_artifact(Arc::clone(&artifact))
        .simulate_configured(
            &[0.02, 0.05],
            SolverOptions::default(),
            JacobianMode::FdColored,
            EngineMode::Native,
        )
        .expect("native request degrades to exec");
    let exec = SuiteModel::from_artifact(artifact)
        .simulate_configured(
            &[0.02, 0.05],
            SolverOptions::default(),
            JacobianMode::FdColored,
            EngineMode::Exec,
        )
        .expect("exec solve");
    assert_eq!(trajectory, exec);
}
