//! End-to-end pipeline integration: RDL source → chemical compiler →
//! RCIP → equation generator → optimizer → tape → solver.

use rms_suite::{compile_source, OptLevel, SolverOptions};

const VULCANIZATION_RDL: &str = r#"
    # kinetics: scission fast, exchange derived, recombination slow
    rate K_sc  = 4;
    rate K_ex  = K_sc / 2;
    rate K_rec = 1;
    bound K_sc  in [0.1, 40];
    bound K_rec in [0.01, 10];

    molecule PolyS  = "CS{n}C" for n in 2..5 init 1.0;
    molecule Rubber = "CC=CC" init 2.0;

    rule scission {
        on PolyS;
        site bond S ~ S order single;
        action disconnect;
        rate K_sc;
    }
    rule abstraction {
        on Rubber;
        site atom C & allylic & hydrogens >= 1;
        action remove_h;
        rate K_ex;
    }
    rule graft {
        site pair S & radical, C & radical;
        action connect single;
        rate K_rec;
    }

    limit atoms 16;
    limit species 300;
    forbid chain S > 5;
"#;

#[test]
fn full_pipeline_from_rdl_text() {
    let model = compile_source(VULCANIZATION_RDL, OptLevel::Full).expect("compiles");

    // The chemical compiler expanded variants and found reactions.
    assert!(
        model.network.species_count() > 6,
        "expected generated species beyond the seeds, got {}",
        model.network.species_count()
    );
    assert!(model.network.reaction_count() >= 6);

    // RCIP deduplicated by value: K_ex == K_sc/2 == 2 stays distinct from
    // K_rec == 1 and K_sc == 4.
    assert_eq!(model.rates.distinct_count(), 3);

    // The equation generator produced one ODE per species.
    assert_eq!(model.system.len(), model.network.species_count());

    // The optimizer reduced the work.
    assert!(
        model.compiled.stages.after_cse.total() < model.compiled.stages.input.total(),
        "{:?}",
        model.compiled.stages
    );

    // The C backend emits one assignment per equation.
    let c_code = model.emit_c("rhs");
    assert_eq!(
        c_code.matches("ydot[").count(),
        model.system.len(),
        "every species needs an emitted derivative"
    );
}

#[test]
fn simulation_conserves_seeded_atoms() {
    let model = compile_source(VULCANIZATION_RDL, OptLevel::Full).expect("compiles");
    let times = [0.05, 0.2, 0.8];
    let solution = model
        .simulate(&times, SolverOptions::default())
        .expect("simulates");

    // Sulfur atoms are conserved: weight each species by its sulfur count.
    let weights: Vec<f64> = model
        .network
        .species_iter()
        .map(|(_, sp)| {
            sp.structure
                .as_ref()
                .map(|m| {
                    m.atoms()
                        .filter(|(_, a)| a.element == rms_suite::molecule::Element::S)
                        .count() as f64
                })
                .unwrap_or(0.0)
        })
        .collect();
    let initial_sulfur: f64 = model
        .system
        .initial
        .iter()
        .zip(&weights)
        .map(|(c, w)| c * w)
        .sum();
    for (t, y) in times.iter().zip(&solution) {
        let sulfur: f64 = y.iter().zip(&weights).map(|(c, w)| c * w).sum();
        assert!(
            (sulfur - initial_sulfur).abs() < 1e-4 * initial_sulfur,
            "sulfur not conserved at t={t}: {sulfur} vs {initial_sulfur}"
        );
    }
}

#[test]
fn optimization_levels_identical_dynamics() {
    let times = [0.1, 0.4];
    let mut reference: Option<Vec<Vec<f64>>> = None;
    for level in OptLevel::ALL {
        let model = compile_source(VULCANIZATION_RDL, level).expect("compiles");
        let solution = model
            .simulate(&times, SolverOptions::default())
            .expect("simulates");
        match &reference {
            None => reference = Some(solution),
            Some(expect) => {
                for (a, b) in expect.iter().flatten().zip(solution.iter().flatten()) {
                    assert!(
                        (a - b).abs() < 1e-5,
                        "{level}: {a} vs {b} — optimization changed the dynamics"
                    );
                }
            }
        }
    }
}

#[test]
fn deterministic_compilation() {
    let a = compile_source(VULCANIZATION_RDL, OptLevel::Full).expect("compiles");
    let b = compile_source(VULCANIZATION_RDL, OptLevel::Full).expect("compiles");
    assert_eq!(
        a.emit_c("f"),
        b.emit_c("f"),
        "compilation must be deterministic"
    );
    assert_eq!(a.compiled.tape.len(), b.compiled.tape.len());
}
