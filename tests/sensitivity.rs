//! Analytic parameter sensitivities at the suite level: the estimator's
//! analytic residual Jacobian must agree with careful central
//! differences on both workload models (RDL-sourced and programmatic),
//! and a fixed-seed estimate must converge to the same parameters under
//! the analytic and finite-difference residual-Jacobian modes.

use rms_suite::workload::{
    generate_model, synthesize, ExpDataSpec, VulcanizationSpec, TRUE_RATES, VULCANIZATION_RDL,
};
use rms_suite::{
    compile_model, compile_source, LmOptions, OptLevel, ParallelEstimator, ResidualJacobianMode,
    SuiteModel, TapeSimulator,
};

/// A simulator over the model's artifact with sensitivity tapes
/// attached and tolerances tight enough that central-difference
/// references resolve the sensitivities rather than the adaptive
/// solver's own noise floor.
fn tight_simulator(model: &SuiteModel, observable: Vec<f64>) -> TapeSimulator {
    let mut sim = TapeSimulator::from_artifact(model.artifact(), observable)
        .with_sensitivities(model.sensitivity());
    sim.options.rtol = 1e-10;
    sim.options.atol = 1e-13;
    sim
}

/// Central-difference reference for the estimator's residual Jacobian,
/// differencing the full objective (simulated − experimental stacked
/// over files) exactly as the FD mode would, but second-order.
fn central_difference_jacobian<S: rms_suite::Simulator>(
    estimator: &ParallelEstimator<S>,
    rates: &[f64],
    m: usize,
) -> Vec<f64> {
    let n = rates.len();
    let central = |j: usize, h: f64| {
        let mut plus = rates.to_vec();
        plus[j] += h;
        let mut minus = rates.to_vec();
        minus[j] -= h;
        let ep = estimator.objective(&plus).expect("objective+").error_vector;
        let em = estimator
            .objective(&minus)
            .expect("objective-")
            .error_vector;
        (0..m)
            .map(|i| (ep[i] - em[i]) / (2.0 * h))
            .collect::<Vec<f64>>()
    };
    let mut jac = vec![0.0; m * n];
    for j in 0..n {
        // A generously wide step keeps the solver's noise floor
        // (~rtol·|y|/h) far below the comparison band; Richardson
        // extrapolation then cancels the O(h²) truncation the wide step
        // would otherwise introduce.
        let h = 1.6e-2 * rates[j].abs().max(1.0);
        let coarse = central(j, h);
        let fine = central(j, 0.5 * h);
        for i in 0..m {
            jac[i * n + j] = (4.0 * fine[i] - coarse[i]) / 3.0;
        }
    }
    jac
}

fn check_analytic_matches_fd(model: &SuiteModel, observable: Vec<f64>, label: &str) {
    let simulator = tight_simulator(model, observable);
    let truth = model.system.rate_values.clone();
    let files = synthesize(
        &simulator,
        &truth,
        ExpDataSpec {
            n_files: 2,
            records: 20,
            base_horizon: 1.0,
            horizon_skew: 0.2,
            noise: 0.0,
            seed: 7,
        },
    )
    .expect("synthesis succeeds");
    let m: usize = files.iter().map(|f| f.len()).max().unwrap();
    let estimator = ParallelEstimator::new(&simulator, files, 2, false);

    // Probe away from the synthesis point so residuals are nonzero.
    let probe: Vec<f64> = truth.iter().map(|r| r * 1.1).collect();
    let analytic = estimator
        .objective_jacobian(&probe)
        .expect("analytic Jacobian");
    let reference = central_difference_jacobian(&estimator, &probe, m);
    assert_eq!(analytic.len(), reference.len(), "{label}: shape");

    // Column-wise comparison: 1e-6 relative to the column's dominant
    // entry, floored at the central-difference noise floor
    // (~rtol/h = 1e-6 absolute for these tolerances).
    let n = probe.len();
    for j in 0..n {
        let col_scale = (0..m)
            .map(|i| reference[i * n + j].abs())
            .fold(1.0_f64, f64::max);
        for i in 0..m {
            let a = analytic[i * n + j];
            let f = reference[i * n + j];
            assert!(
                (a - f).abs() <= 1e-6 * col_scale,
                "{label}: entry ({i},{j}): analytic {a} vs central FD {f} (col scale {col_scale})"
            );
        }
    }
}

#[test]
fn analytic_residual_jacobian_matches_fd_on_rdl_model() {
    let model = compile_source(VULCANIZATION_RDL, OptLevel::Full).expect("RDL model compiles");
    // A generic weighted observable exercising every species.
    let observable: Vec<f64> = (0..model.system.len())
        .map(|i| 0.5 + 0.1 * (i % 5) as f64)
        .collect();
    check_analytic_matches_fd(&model, observable, "rdl");
}

#[test]
fn analytic_residual_jacobian_matches_fd_on_programmatic_model() {
    let spec = VulcanizationSpec {
        sites: 3,
        max_chain: 3,
        neighbourhood: 1,
    };
    let generated = generate_model(spec);
    let crosslinks = generated.crosslink_species.clone();
    let model = compile_model(generated.network, generated.rates, OptLevel::Full)
        .expect("programmatic model compiles");
    let mut observable = vec![0.0; model.system.len()];
    for x in &crosslinks {
        observable[x.0 as usize] = 1.0;
    }
    check_analytic_matches_fd(&model, observable, "programmatic");
}

#[test]
fn estimate_round_trip_analytic_and_fd_modes_agree() {
    let generated = generate_model(VulcanizationSpec {
        sites: 3,
        max_chain: 3,
        neighbourhood: 1,
    });
    let crosslinks = generated.crosslink_species.clone();
    let (lo_all, hi_all) = generated.rates.bounds_vectors();
    let model = compile_model(generated.network, generated.rates, OptLevel::Full)
        .expect("programmatic model compiles");
    let mut observable = vec![0.0; model.system.len()];
    for x in &crosslinks {
        observable[x.0 as usize] = 1.0;
    }
    let simulator = TapeSimulator::from_artifact(model.artifact(), observable)
        .with_sensitivities(model.sensitivity());
    let files = synthesize(
        &simulator,
        &TRUE_RATES,
        ExpDataSpec {
            n_files: 4,
            records: 40,
            base_horizon: 1.2,
            horizon_skew: 0.2,
            noise: 0.0,
            seed: 23,
        },
    )
    .expect("synthesis succeeds");
    let estimator = ParallelEstimator::new(&simulator, files, 2, false);

    // Perturb two influential parameters; pin the rest at truth (the
    // paper's chemists constrain most rates tightly).
    let mut start = TRUE_RATES.to_vec();
    start[1] *= 1.6;
    start[8] *= 0.5;
    let mut lo = TRUE_RATES.to_vec();
    let mut hi = TRUE_RATES.to_vec();
    for k in [1usize, 8] {
        lo[k] = lo_all[k];
        hi[k] = hi_all[k];
    }
    let options = LmOptions {
        max_iters: 60,
        fd_step: 1e-3,
        ..LmOptions::default()
    };
    let analytic = estimator
        .estimate_with_jacobian(&start, &lo, &hi, options, ResidualJacobianMode::Analytic)
        .expect("analytic estimate runs");
    let fd = estimator
        .estimate_with_jacobian(&start, &lo, &hi, options, ResidualJacobianMode::Fd)
        .expect("FD estimate runs");

    for k in [1usize, 8] {
        let rel_truth = (analytic.params[k] - TRUE_RATES[k]).abs() / TRUE_RATES[k];
        assert!(
            rel_truth < 1e-2,
            "analytic mode missed truth for p[{k}]: {} vs {}",
            analytic.params[k],
            TRUE_RATES[k]
        );
        let rel_modes = (analytic.params[k] - fd.params[k]).abs() / TRUE_RATES[k];
        assert!(
            rel_modes < 1e-4,
            "modes disagree on p[{k}]: analytic {} vs FD {}",
            analytic.params[k],
            fd.params[k]
        );
    }
    // The whole point: analytic Jacobians cost O(1) ODE sweeps per LM
    // iteration instead of O(n_params) residual evaluations.
    assert!(analytic.jevals > 0 && fd.jevals > 0);
    assert!(
        analytic.fevals < fd.fevals,
        "analytic mode should spend fewer residual evaluations: {} vs {}",
        analytic.fevals,
        fd.fevals
    );
}
