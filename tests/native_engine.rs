//! Differential tests for the native codegen engine: the `dlopen`ed
//! kernel must reproduce the exec and interp trajectories across both
//! workload families and every optimization level, the `.so` cache must
//! quarantine corrupt or stale objects exactly like the serialized
//! artifact cache, and `rmsc compile --emit c` must print the kernel
//! source the Codegen stage actually compiles.
//!
//! Tests that need a C compiler probe for one first and skip — visibly,
//! on stderr — when the host has none.

use std::process::Command;
use std::sync::{Arc, Mutex};

use rms_suite::workload::{generate_model, VulcanizationSpec, VULCANIZATION_RDL};
use rms_suite::{
    probe_toolchain, CompiledArtifact, CompilerSession, EngineMode, JacobianMode, OptLevel,
    SessionOptions, SolverOptions, SuiteModel,
};

/// The in-memory artifact cache is process-wide; serialize the tests in
/// this binary so a `clear_memory` cannot race another test's hit.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CACHE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const LEVELS: [OptLevel; 4] = [
    OptLevel::None,
    OptLevel::Simplify,
    OptLevel::Algebraic,
    OptLevel::Full,
];

#[derive(Clone, Copy)]
enum Family {
    RdlSource,
    Network,
}

/// Compile one workload family with the Codegen stage enabled, caching
/// into `dir` so the test controls (and cleans up) the `.so` location.
fn compile_native(family: Family, level: OptLevel, dir: &std::path::Path) -> Arc<CompiledArtifact> {
    let mut options = SessionOptions::new(level);
    options.native = true;
    options.cache_dir = Some(dir.to_path_buf());
    let session = CompilerSession::with_options(options);
    let compiled = match family {
        Family::RdlSource => session
            .compile_source("vulcanization.rdl", VULCANIZATION_RDL)
            .expect("rdl model compiles"),
        Family::Network => {
            let m = generate_model(VulcanizationSpec {
                sites: 3,
                max_chain: 3,
                neighbourhood: 1,
            });
            session
                .compile_network("vulcanization-small", m.network, m.rates)
                .expect("network model compiles")
        }
    };
    compiled.artifact
}

fn trajectory(artifact: &Arc<CompiledArtifact>, engine: EngineMode) -> Vec<Vec<f64>> {
    SuiteModel::from_artifact(Arc::clone(artifact))
        .simulate_configured(
            &[0.02, 0.05, 0.1],
            SolverOptions::default(),
            JacobianMode::FdColored,
            engine,
        )
        .expect("short solve succeeds")
}

/// Largest norm-relative deviation between two trajectories.
fn deviation(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let mut worst: f64 = 0.0;
    for (ra, rb) in a.iter().zip(b) {
        let norm = ra.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (x, z) in ra.iter().zip(rb) {
            worst = worst.max((x - z).abs() / norm);
        }
    }
    worst
}

#[test]
fn native_trajectories_match_exec_and_interp_at_every_level() {
    let _guard = lock();
    if let Err(e) = probe_toolchain() {
        eprintln!("SKIP: native differential test: {e}");
        return;
    }
    let dir = std::env::temp_dir().join(format!("rms-native-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for family in [Family::RdlSource, Family::Network] {
        for level in LEVELS {
            let artifact = compile_native(family, level, &dir);
            assert!(
                artifact.native.is_some(),
                "{level}: codegen produced no kernel: {:?}",
                artifact.native_diag
            );
            let native = trajectory(&artifact, EngineMode::Native);
            let exec = trajectory(&artifact, EngineMode::Exec);
            let interp = trajectory(&artifact, EngineMode::Interp);
            // The kernel replays the tape's exact rounding sequence and is
            // compiled with -ffp-contract=off, so agreement is bitwise on
            // contract-honoring toolchains; the bound only allows slack
            // for compilers that contract to FMA regardless.
            let d = deviation(&native, &exec);
            assert!(d <= 1e-12, "{level}: native vs exec deviates by {d:e}");
            let d = deviation(&native, &interp);
            assert!(d <= 1e-12, "{level}: native vs interp deviates by {d:e}");
            // Auto resolves to one of the engines above (a kernel is
            // attached, so exec or native depending on size/shape) and
            // must land inside the same envelope.
            let auto = trajectory(&artifact, EngineMode::Auto);
            let d = deviation(&auto, &exec);
            assert!(d <= 1e-12, "{level}: auto vs exec deviates by {d:e}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `.so` files currently under `dir`.
fn so_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut found: Vec<_> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "so"))
        .collect();
    found.sort();
    found
}

/// Quarantine must be observed from a *fresh* process: `dlopen` caches
/// loaded libraries by path, so within one process a replaced `.so` file
/// is invisible while the original mapping is alive (content addressing
/// makes that benign — only out-of-band tampering can change the bytes
/// under a key). Each step therefore runs the real `rmsc` binary.
#[test]
fn corrupt_and_stale_kernels_quarantine_and_rebuild() {
    if let Err(e) = probe_toolchain() {
        eprintln!("SKIP: native quarantine test: {e}");
        return;
    }
    let dir = std::env::temp_dir().join(format!("rms-native-quarantine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let rdl = dir.join("vulcanization.rdl");
    std::fs::write(&rdl, VULCANIZATION_RDL).expect("fixture written");
    let cache_dir = dir.join("cache");

    let simulate = |source: &std::path::Path| {
        let out = Command::new(env!("CARGO_BIN_EXE_rmsc"))
            .args([
                "simulate",
                &source.display().to_string(),
                "--engine",
                "native",
                "--cache-dir",
                &cache_dir.display().to_string(),
                "--tend",
                "0.05",
                "--steps",
                "2",
            ])
            .output()
            .expect("rmsc runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("stdout is utf-8")
    };

    let first = simulate(&rdl);
    assert!(
        !first.contains("warning:"),
        "expected a working kernel on the first run:\n{first}"
    );
    let so = match so_files(&cache_dir).as_slice() {
        [one] => one.clone(),
        other => panic!("expected exactly one kernel object, found {other:?}"),
    };

    // Corrupt object: the fresh process fails to dlopen it, moves the
    // bytes aside, and rebuilds — same trajectory, no warning, exit 0.
    std::fs::write(&so, b"not an ELF object").expect("corrupt the kernel");
    let second = simulate(&rdl);
    assert_eq!(first, second, "rebuilt kernel reproduces the trajectory");
    assert_eq!(
        std::fs::read(format!("{}.corrupt", so.display())).expect("quarantined image"),
        b"not an ELF object"
    );
    assert!(so.exists(), "kernel object rebuilt after quarantine");

    // Stale object: a structurally valid kernel for a *different* model
    // at this key's path fails fingerprint validation and takes the same
    // quarantine-and-rebuild path.
    let salted = dir.join("salted.rdl");
    std::fs::write(
        &salted,
        format!("{VULCANIZATION_RDL}\nrate K_salt_stale = 977;\n"),
    )
    .expect("salted fixture written");
    let _ = simulate(&salted);
    let other = so_files(&cache_dir)
        .into_iter()
        .find(|p| *p != so)
        .expect("salted model compiled its own kernel");
    std::fs::copy(&other, &so).expect("plant a stale kernel");
    let third = simulate(&rdl);
    assert_eq!(first, third, "stale kernel was rejected and rebuilt");
    let quarantined = std::fs::read(format!("{}.corrupt", so.display())).expect("stale image");
    assert_eq!(
        quarantined,
        std::fs::read(&other).expect("other kernel readable")
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn emit_c_prints_the_kernel_source() {
    let dir = std::env::temp_dir().join(format!("rms-native-emit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("vulcanization.rdl");
    std::fs::write(&path, VULCANIZATION_RDL).expect("fixture written");

    let out = Command::new(env!("CARGO_BIN_EXE_rmsc"))
        .args(["compile", &path.display().to_string(), "--emit", "c"])
        .output()
        .expect("rmsc runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let source = String::from_utf8(out.stdout).expect("stdout is utf-8");

    // Golden structure of the rendered kernel: identity header, ABI
    // metadata, the scalar/Jacobian/sensitivity/batched entry points, and
    // round-trippable hex float literals.
    assert!(
        source.starts_with("/* generated by the Reaction Modeling Suite chemical compiler */\n")
    );
    assert!(source.contains("vulcanization.rdl */"));
    assert!(source.contains("/* fingerprint: "));
    assert!(source.contains("-ffp-contract=off"));
    for needle in [
        "const unsigned long long rms_key[2]",
        "const int rms_abi_version",
        "const int rms_n_species",
        "const long long rms_jac_nnz",
        "void ode_rhs(const double* restrict k, const double* restrict y",
        "void ode_jac(const double* restrict k, const double* restrict y",
        "void ode_sens(const double* restrict k, const double* restrict y",
        "void ode_rhs_batch(const double* restrict k, const double* restrict ys",
        "ode_rhs_lanes",
        "vector_size(64)",
    ] {
        assert!(
            source.contains(needle),
            "missing {needle:?} in emitted source"
        );
    }
    // (Non-integral constants render as C99 hex floats; the exact
    // round-trip property, including negative zero and subnormals, is
    // covered by the emit_c unit tests.)

    // The library renders the same source the CLI prints (the derivative
    // tapes are derived on demand by `emit_native_c`, so the plain
    // default compile matches the CLI's).
    let session = CompilerSession::with_options(SessionOptions::new(OptLevel::Full));
    let compiled = session
        .compile_source(&path.display().to_string(), VULCANIZATION_RDL)
        .expect("rdl model compiles");
    let lib_source = SuiteModel::from_artifact(compiled.artifact).emit_native_c();
    assert_eq!(source, lib_source);

    let _ = std::fs::remove_dir_all(&dir);
}
