//! Differential tests for the tape reroll pass: a rerolled compile must
//! be observationally indistinguishable from an unrolled one.
//!
//! Rerolling is a pure compression of the flat tape — loop regions replay
//! the *same* instructions in the *same* order with payloads resolved
//! from stride/index tables — so the trajectories of `--opt reroll=on`
//! and `--opt reroll=off` compiles must agree **bitwise** on every
//! engine, for both workload families (RDL source and generated
//! network), at all four optimization levels. The property test below
//! pins the stronger invariant the engine tests rest on: the rolled view
//! is a lossless encoding of the flat tape (every trip of every loop
//! resolves back to the original instruction), which also means rerolling
//! can never change `op_counts`-weighted semantics.
//!
//! Tests that need a C compiler probe for one first and skip — visibly,
//! on stderr — when the host has none.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use proptest::TestRng;
use rms_core::{
    compact_registers, cse_forest, distribute_forest, loop_slot_patterns, lower, reroll,
    resolve_instr, simplify_forest, Expr, ExprForest, RerollOptions, RolledSegment,
};
use rms_suite::workload::{generate_model, VulcanizationSpec, VULCANIZATION_RDL};
use rms_suite::{
    probe_toolchain, CompiledArtifact, CompilerSession, EngineMode, JacobianMode, OptLevel,
    SessionOptions, SolverOptions, SuiteModel,
};

/// The in-memory artifact cache is process-wide; serialize the engine
/// tests in this binary so a cache interaction cannot race.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CACHE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const LEVELS: [OptLevel; 4] = [
    OptLevel::None,
    OptLevel::Simplify,
    OptLevel::Algebraic,
    OptLevel::Full,
];

#[derive(Clone, Copy)]
enum Family {
    RdlSource,
    Network,
}

/// Compile one workload family with the Codegen stage enabled and the
/// reroll pass switched per `reroll` (the `--opt reroll=on|off` knob).
/// The flag is part of the content-addressed key, so the two variants
/// never share a cached artifact or kernel.
fn compile_native(
    family: Family,
    level: OptLevel,
    reroll: bool,
    dir: &std::path::Path,
) -> Arc<CompiledArtifact> {
    let mut options = SessionOptions::new(level);
    options.native = true;
    options.reroll = reroll;
    options.cache_dir = Some(dir.to_path_buf());
    let session = CompilerSession::with_options(options);
    let compiled = match family {
        Family::RdlSource => session
            .compile_source("vulcanization.rdl", VULCANIZATION_RDL)
            .expect("rdl model compiles"),
        Family::Network => {
            let m = generate_model(VulcanizationSpec {
                sites: 3,
                max_chain: 4,
                neighbourhood: 1,
            });
            session
                .compile_network("vulcanization-reroll", m.network, m.rates)
                .expect("network model compiles")
        }
    };
    compiled.artifact
}

fn trajectory(artifact: &Arc<CompiledArtifact>, engine: EngineMode) -> Vec<Vec<f64>> {
    SuiteModel::from_artifact(Arc::clone(artifact))
        .simulate_configured(
            &[0.02, 0.05, 0.1],
            SolverOptions::default(),
            JacobianMode::FdColored,
            engine,
        )
        .expect("short solve succeeds")
}

/// Largest norm-relative deviation between two trajectories.
fn deviation(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let mut worst: f64 = 0.0;
    for (ra, rb) in a.iter().zip(b) {
        let norm = ra.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (x, z) in ra.iter().zip(rb) {
            worst = worst.max((x - z).abs() / norm);
        }
    }
    worst
}

#[test]
fn rerolled_and_unrolled_compiles_are_bit_identical_on_every_engine() {
    let _guard = lock();
    if let Err(e) = probe_toolchain() {
        eprintln!("SKIP: reroll differential test: {e}");
        return;
    }
    let dir = std::env::temp_dir().join(format!("rms-reroll-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut any_rolled = false;
    for family in [Family::RdlSource, Family::Network] {
        for level in LEVELS {
            let on = compile_native(family, level, true, &dir);
            let off = compile_native(family, level, false, &dir);
            let on_kernel = on.native.as_ref().unwrap_or_else(|| {
                panic!(
                    "{level}: rerolled codegen produced no kernel: {:?}",
                    on.native_diag
                )
            });
            let off_kernel = off.native.as_ref().unwrap_or_else(|| {
                panic!(
                    "{level}: unrolled codegen produced no kernel: {:?}",
                    off.native_diag
                )
            });
            // reroll=off must emit the historic straight-line kernel.
            assert_eq!(
                off_kernel.loop_count(),
                0,
                "{level}: unrolled kernel has loops"
            );
            assert_eq!(off_kernel.rolled_instrs(), 0);
            any_rolled |= on_kernel.loop_count() > 0;

            for engine in [EngineMode::Interp, EngineMode::Exec, EngineMode::Native] {
                let a = trajectory(&on, engine);
                let b = trajectory(&off, engine);
                // Same engine, same flat semantics: rerolling may change
                // the *shape* of the generated code but never a bit of
                // the trajectory.
                let d = deviation(&a, &b);
                assert!(
                    d == 0.0,
                    "{level}/{engine}: rerolled vs unrolled deviates by {d:e}"
                );
            }
            // Cross-engine agreement for the rerolled compile (the
            // unrolled one is covered by tests/native_engine.rs): the
            // kernel replays the tape's exact rounding sequence with
            // -ffp-contract=off, so only contraction-happy toolchains
            // need the 1e-12 slack.
            let native = trajectory(&on, EngineMode::Native);
            let exec = trajectory(&on, EngineMode::Exec);
            let interp = trajectory(&on, EngineMode::Interp);
            let d = deviation(&native, &exec);
            assert!(
                d <= 1e-12,
                "{level}: rerolled native vs exec deviates by {d:e}"
            );
            let d = deviation(&native, &interp);
            assert!(
                d <= 1e-12,
                "{level}: rerolled native vs interp deviates by {d:e}"
            );
        }
    }
    assert!(
        any_rolled,
        "no workload/level combination rerolled — the differential test is vacuous"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A uniform draw from `[lo, hi)`.
fn f64_in(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    lo + unit * (hi - lo)
}

/// A random expression over `n_species` species and `n_rates` rates,
/// built with the smart constructors so shapes mirror optimizer output.
fn random_expr(rng: &mut TestRng, depth: usize, n_species: usize, n_rates: usize) -> Expr {
    let choice = if depth == 0 {
        rng.next_u64() % 3
    } else {
        rng.next_u64() % 5
    };
    match choice {
        0 => Expr::Species(rng.usize_in(0..n_species) as u32),
        1 => Expr::Rate(rng.usize_in(0..n_rates) as u32),
        2 => Expr::constant(f64_in(rng, -2.0, 2.0)),
        3 => {
            let n = rng.usize_in(1..4);
            let factors = (0..n)
                .map(|_| random_expr(rng, depth - 1, n_species, n_rates))
                .collect();
            Expr::prod(f64_in(rng, -2.0, 2.0), factors)
        }
        _ => {
            let n = rng.usize_in(2..5);
            let children = (0..n)
                .map(|_| random_expr(rng, depth - 1, n_species, n_rates))
                .collect();
            Expr::sum(children)
        }
    }
}

/// A random forest with the redundancy profile real rate laws have: a
/// handful of random *templates*, each instantiated for every species
/// with shifted species/rate indices. Repeated structurally identical
/// stanzas are exactly what the reroll pass detects, so these forests
/// exercise genuine loop regions (unlike fully independent random
/// equations, which rarely repeat).
fn random_stanza_forest(rng: &mut TestRng, n_species: usize, n_rates: usize) -> ExprForest {
    let template = random_expr(rng, 2, n_species, n_rates);
    let shift = |e: &Expr, by: usize| -> Expr {
        fn walk(e: &Expr, by: usize, n_species: usize, n_rates: usize) -> Expr {
            match e {
                Expr::Species(i) => Expr::Species(((*i as usize + by) % n_species) as u32),
                Expr::Rate(i) => Expr::Rate(((*i as usize + by) % n_rates) as u32),
                Expr::Prod(coeff, factors) => Expr::prod(
                    coeff.0,
                    factors
                        .iter()
                        .map(|f| walk(f, by, n_species, n_rates))
                        .collect(),
                ),
                Expr::Sum(children) => Expr::sum(
                    children
                        .iter()
                        .map(|c| walk(c, by, n_species, n_rates))
                        .collect(),
                ),
                other => other.clone(),
            }
        }
        walk(e, by, n_species, n_rates)
    };
    let rhs = (0..n_species).map(|i| shift(&template, i)).collect();
    ExprForest {
        temps: Vec::new(),
        rhs,
        n_species,
        n_rates,
    }
}

/// Apply the passes of one [`OptLevel`] to a temporary-free forest.
fn apply_level(forest: &ExprForest, level: OptLevel) -> ExprForest {
    let passes = level.passes();
    let mut out = forest.clone();
    if passes.simplify {
        out = simplify_forest(&out);
    }
    if passes.distribute {
        out = distribute_forest(&out);
    }
    if let Some(options) = passes.cse {
        out = cse_forest(&out, options);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rerolling random optimizer output is a lossless view: every trip
    /// of every loop resolves back to the exact flat instruction, the
    /// segment walk covers the tape exactly once, and the rolled
    /// evaluator is bitwise identical to the flat interpreter. Lossless
    /// reconstruction implies the rolled form replays the same
    /// (`op_counts`-weighted) instruction multiset — rerolling cannot
    /// change semantics, only code shape.
    #[test]
    fn reroll_is_a_lossless_bitwise_view_of_random_forests(
        seed in any::<u64>(),
        n_species in 4usize..10,
        n_rates in 1usize..4,
    ) {
        let mut rng = TestRng::new(seed);
        let forest = random_stanza_forest(&mut rng, n_species, n_rates);
        let rates: Vec<f64> = (0..n_rates).map(|_| f64_in(&mut rng, 0.1, 3.0)).collect();
        let y: Vec<f64> = (0..n_species).map(|_| f64_in(&mut rng, 0.05, 1.5)).collect();
        // Aggressive options so even short stanzas roll; correctness
        // must not depend on the heuristic thresholds.
        let opts = RerollOptions { max_body: 64, min_trips: 2, min_savings: 1 };

        for level in OptLevel::ALL {
            let optimized = apply_level(&forest, level);
            let tape = compact_registers(&lower(&optimized));
            let rolled = reroll(&tape, &opts);
            prop_assert_eq!(rolled.validate(&tape), Ok(()));

            // Exact coverage: straight ranges + trip-weighted loop
            // bodies partition the flat index space.
            let mut covered = 0usize;
            for seg in rolled.segments() {
                match seg {
                    RolledSegment::Straight { len, .. } => covered += len,
                    RolledSegment::Loop(lp) => covered += lp.body_len * lp.trips,
                }
            }
            prop_assert_eq!(covered, tape.len());
            prop_assert_eq!(rolled.rolled_len() + rolled.rerolled_instrs(), tape.len());

            // Lossless: resolving the template against the slot patterns
            // reconstructs every absorbed instruction exactly.
            for lp in &rolled.loops {
                let patterns = loop_slot_patterns(&tape, lp);
                for t in 0..lp.trips {
                    for (p, pats) in patterns.iter().enumerate() {
                        let got = resolve_instr(&tape.instrs[lp.start + p], pats, t);
                        prop_assert_eq!(got, tape.instrs[lp.start + t * lp.body_len + p]);
                    }
                }
            }

            // Bitwise: the genuine loop walk equals the flat replay.
            let mut flat = vec![0.0; n_species];
            let mut via_loops = vec![0.0; n_species];
            let mut scratch = Vec::new();
            tape.eval_with_scratch(&rates, &y, &mut flat, &mut scratch);
            tape.eval_rolled_with_scratch(&rolled, &rates, &y, &mut via_loops, &mut scratch);
            for i in 0..n_species {
                prop_assert_eq!(
                    flat[i].to_bits(),
                    via_loops[i].to_bits(),
                    "{}: ydot[{}] flat {} vs rolled {}",
                    level, i, flat[i], via_loops[i]
                );
            }
        }
    }
}
