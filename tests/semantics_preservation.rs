//! Property-based cross-crate test: every optimization configuration —
//! ours and the generic compiler's — preserves the semantics of randomly
//! generated reaction networks.

use proptest::prelude::*;

use rms_rdl::{Reaction, ReactionNetwork};
use rms_suite::{
    generate, generic_compile, optimize, optimize_with_passes, CseOptions, GenerateOptions,
    GenericOptions, OptLevel, Passes, RateTable,
};

/// A random mass-action network: up to 12 species, up to 20 reactions,
/// up to 4 distinct rate constants (value sharing included).
fn arb_network() -> impl Strategy<Value = (ReactionNetwork, RateTable)> {
    let reaction = (
        prop::collection::vec(0u32..12, 1..3), // reactants
        prop::collection::vec(0u32..12, 0..3), // products
        0usize..4,                             // rate index
    );
    prop::collection::vec(reaction, 1..20).prop_map(|reactions| {
        let mut network = ReactionNetwork::new();
        for i in 0..12u32 {
            network.add_abstract_species(&format!("S{i}"), 0.1 + i as f64 * 0.05);
        }
        for (reactants, products, rate) in reactions {
            network.add_reaction(Reaction {
                reactants: reactants.into_iter().map(rms_rdl::SpeciesId).collect(),
                products: products.into_iter().map(rms_rdl::SpeciesId).collect(),
                rate: format!("K{rate}"),
                rule: "random".to_string(),
            });
        }
        // K2 deliberately shares K0's value: exercises RCIP value dedup.
        let rates =
            RateTable::parse("rate K0 = 2; rate K1 = 3; rate K2 = 2; rate K3 = 5;").unwrap();
        (network, rates)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All named optimization levels produce tapes that agree with the
    /// naive sum-of-products interpretation.
    #[test]
    fn all_levels_agree((network, rates) in arb_network(), seed in 0u64..1000) {
        let raw = generate(&network, &rates, GenerateOptions { simplify: false }).unwrap();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let y: Vec<f64> = (0..raw.len()).map(|_| rng.gen_range(0.0..2.0)).collect();
        let reference = raw.eval_nominal(&y);
        for level in OptLevel::ALL {
            let compiled = optimize(&raw, level);
            let mut got = vec![0.0; raw.len()];
            compiled.tape.eval(&raw.rate_values, &y, &mut got);
            for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "{level} eq {i}: {a} vs {b}"
                );
            }
        }
    }

    /// Exotic pass combinations (including the ones the paper forbids
    /// operationally) still cannot change semantics.
    #[test]
    fn pass_combinations_agree(
        (network, rates) in arb_network(),
        simplify in any::<bool>(),
        distribute in any::<bool>(),
        use_cse in any::<bool>(),
        prefix in any::<bool>(),
    ) {
        let raw = generate(&network, &rates, GenerateOptions { simplify: false }).unwrap();
        let y: Vec<f64> = (0..raw.len()).map(|i| 0.05 + (i % 7) as f64 * 0.15).collect();
        let reference = raw.eval_nominal(&y);
        let compiled = optimize_with_passes(&raw, Passes {
            simplify,
            distribute,
            cse: use_cse.then_some(CseOptions { min_uses: 2, prefix_matching: prefix }),
        });
        let mut got = vec![0.0; raw.len()];
        compiled.tape.eval(&raw.rate_values, &y, &mut got);
        for (a, b) in reference.iter().zip(&got) {
            prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// Optimizations never increase the operation count, and the generic
    /// compiler's value numbering is also sound.
    #[test]
    fn ops_never_increase_and_vn_sound((network, rates) in arb_network()) {
        let raw = generate(&network, &rates, GenerateOptions { simplify: false }).unwrap();
        let baseline = optimize(&raw, OptLevel::None);
        let full = optimize(&raw, OptLevel::Full);
        prop_assert!(
            full.stages.after_cse.total() <= baseline.stages.after_cse.total()
        );
        let vn = generic_compile(&baseline.tape, GenericOptions {
            opt_level: 4,
            memory_budget: usize::MAX,
        }).unwrap();
        prop_assert!(vn.tape.op_counts().total() <= baseline.tape.op_counts().total());
        let y: Vec<f64> = (0..raw.len()).map(|i| 0.1 + (i % 5) as f64 * 0.2).collect();
        let mut a = vec![0.0; raw.len()];
        let mut b = vec![0.0; raw.len()];
        baseline.tape.eval(&raw.rate_values, &y, &mut a);
        vn.tape.eval(&raw.rate_values, &y, &mut b);
        for (x, z) in a.iter().zip(&b) {
            prop_assert!((x - z).abs() <= 1e-12 * x.abs().max(1.0));
        }
    }
}
