//! Cross-crate integration tests for the sparse Newton path: BDF
//! trajectories under `--linear-solver sparse` match the dense baseline
//! on both workload model families and both sparsity-aware Jacobian
//! sources, and the factorization actually is sparse (nnz(L+U) ≪ n²).

use rms_suite::{
    compile_model, compile_source, solve_bdf_with_jacobian, ExecRhs, ExecTape, JacobianMode,
    JacobianSource, LinearSolver, OptLevel, SolverOptions, SuiteModel, TapeJacobian,
};
use rms_workload::{scaled_case, EngineMode, VULCANIZATION_RDL};

/// Short horizon, tight tolerances: at loose tolerances the step
/// controller amplifies last-bit differences between the two linear
/// solvers into tolerance-level trajectory noise; run near roundoff and
/// the comparison isolates the linear algebra.
const TIMES: [f64; 4] = [0.0125, 0.025, 0.0375, 0.05];

fn tight(linear_solver: LinearSolver, rtol: f64, atol: f64) -> SolverOptions {
    SolverOptions {
        linear_solver,
        rtol,
        atol,
        max_steps: 4_000_000,
        ..SolverOptions::default()
    }
}

/// Max norm-relative difference between two stacked trajectories.
fn rel_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(ya, yb)| {
            let norm = ya.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
            let diff = ya
                .iter()
                .zip(yb)
                .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()));
            diff / norm
        })
        .fold(0.0, f64::max)
}

/// Sparse-vs-dense agreement for one model under both sparsity-aware
/// Jacobian sources (analytic tapes and colored finite differences).
/// The tolerance pair is per-model: as tight as its scaling admits.
fn assert_solvers_agree(model: &SuiteModel, label: &str, rtol: f64, atol: f64) {
    for mode in [JacobianMode::Analytic, JacobianMode::FdColored] {
        let dense = model
            .simulate_configured(
                &TIMES,
                tight(LinearSolver::Dense, rtol, atol),
                mode,
                EngineMode::Exec,
            )
            .unwrap_or_else(|e| panic!("{label}/{mode:?}: dense solve failed: {e}"));
        let sparse = model
            .simulate_configured(
                &TIMES,
                tight(LinearSolver::Sparse, rtol, atol),
                mode,
                EngineMode::Exec,
            )
            .unwrap_or_else(|e| panic!("{label}/{mode:?}: sparse solve failed: {e}"));
        let diff = rel_diff(&dense, &sparse);
        assert!(
            diff <= 1e-12,
            "{label}/{mode:?}: sparse trajectory deviates from dense by {diff:.3e}"
        );
        assert!(
            sparse.iter().flatten().all(|v| v.is_finite()),
            "{label}/{mode:?}: non-finite state"
        );
        // Non-vacuity: the system genuinely evolved over the horizon —
        // a trajectory frozen at y0 would agree trivially.
        let moved = sparse
            .last()
            .unwrap()
            .iter()
            .zip(&model.system.initial)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(
            moved > 1e-6,
            "{label}/{mode:?}: state never moved ({moved:e})"
        );
    }
}

#[test]
fn sparse_matches_dense_on_programmatic_workload() {
    let model = scaled_case(2, 100);
    let compiled = compile_model(model.network, model.rates, OptLevel::Full)
        .expect("workload models always compile");
    assert_solvers_agree(&compiled, "scaled_case(2, 100)", 1e-11, 1e-14);
}

#[test]
fn sparse_matches_dense_on_rdl_workload() {
    let compiled =
        compile_source(VULCANIZATION_RDL, OptLevel::Full).expect("bundled RDL model compiles");
    // The RDL model's scaling underflows the step size below rtol 1e-10.
    assert_solvers_agree(&compiled, "VULCANIZATION_RDL", 1e-10, 1e-13);
}

/// On a scale-25 Table 1 case the factorization the solver reports is
/// genuinely sparse: nnz(L+U) stays far below the n² a dense LU carries,
/// and the run actually factors through the sparse kernel.
#[test]
fn solver_stats_report_sparse_fill() {
    let model = scaled_case(2, 25);
    let compiled = compile_model(model.network, model.rates, OptLevel::Full)
        .expect("workload models always compile");
    let n = compiled.system.len();
    assert!(
        n >= 300,
        "scale-25 case 2 should be a few hundred equations"
    );

    let exec = compiled
        .exec
        .clone()
        .unwrap_or_else(|| ExecTape::compile(&compiled.compiled.tape));
    let rhs = ExecRhs::new(&exec, &compiled.system.rate_values);
    let tapes = compiled.jacobian();
    let provider = TapeJacobian::new(&tapes, &compiled.system.rate_values);

    let options = SolverOptions {
        linear_solver: LinearSolver::Sparse,
        ..SolverOptions::default()
    };
    let (sol, stats) = solve_bdf_with_jacobian(
        &rhs,
        0.0,
        &compiled.system.initial,
        &[0.01],
        options,
        JacobianSource::AnalyticTape(&provider),
    )
    .expect("sparse BDF solve succeeds");

    assert_eq!(sol.len(), 1);
    assert!(stats.factorizations > 0, "no factorizations recorded");
    assert!(stats.fill_nnz > 0, "fill gauge never set");
    assert!(
        stats.fill_nnz * 10 <= n * n,
        "fill {} is not \u{226a} n\u{b2} = {}",
        stats.fill_nnz,
        n * n
    );

    // The dense path reports the dense gauge, for contrast.
    let options = SolverOptions {
        linear_solver: LinearSolver::Dense,
        ..SolverOptions::default()
    };
    let (_, dense_stats) = solve_bdf_with_jacobian(
        &rhs,
        0.0,
        &compiled.system.initial,
        &[0.01],
        options,
        JacobianSource::AnalyticTape(&provider),
    )
    .expect("dense BDF solve succeeds");
    assert_eq!(dense_stats.fill_nnz, n * n);
}
