//! Golden-file tests for `rmsc` diagnostics: the exact rustc-style
//! rendering (span, caret, message) and the exit-code convention —
//! 2 for diagnostics and usage errors, 1 for runtime failures.

use std::path::PathBuf;
use std::process::{Command, Output};

fn rmsc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rmsc"))
        .args(args)
        .output()
        .expect("rmsc runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("stderr is utf-8")
}

/// Write an RDL source under a per-process temp dir and return its path.
fn fixture(name: &str, source: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rms-diagnostics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, source).expect("fixture written");
    path
}

#[test]
fn parse_error_renders_span_and_caret() {
    let path = fixture(
        "missing_semi.rdl",
        "rate K_a = 2;\nmolecule M = \"CC\" init 1.0\nrule r { site bond C ~ C order single; action disconnect; rate K_a; }\n",
    );
    let path = path.display();
    let out = rmsc(&["compile", &path.to_string()]);
    assert_eq!(out.status.code(), Some(2));
    let expected = format!(
        "error[parse]: expected 'for', 'init' or ';', found Ident(\"rule\")\n \
         --> {path}:3:5\n  \
         |\n\
         3 | rule r {{ site bond C ~ C order single; action disconnect; rate K_a; }}\n  \
         |     ^\n"
    );
    assert_eq!(stderr(&out), expected);
}

#[test]
fn rcip_error_names_the_undefined_constant() {
    let path = fixture(
        "undefined_constant.rdl",
        "rate K_a = K_missing * 2;\nmolecule M = \"CSSC\" init 1.0;\nrule r { site bond S ~ S order single; action disconnect; rate K_a; }\n",
    );
    let out = rmsc(&["compile", &path.display().to_string()]);
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        stderr(&out),
        "error[rcip]: constant 'K_missing' referenced by 'K_a' is never defined\n"
    );
}

#[test]
fn network_error_reports_bad_smiles() {
    let path = fixture("bad_smiles.rdl", "molecule M = \"C(C\" init 1.0;\n");
    let out = rmsc(&["compile", &path.display().to_string()]);
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        stderr(&out),
        "error[network]: molecule 'M': bad SMILES 'C(C': \
         SMILES syntax error at offset 3: unbalanced '('\n"
    );
}

#[test]
fn diagnostics_are_consistent_across_subcommands() {
    // `compile-report` goes through the same session and renderer, so a
    // broken model produces the identical diagnostic and exit code.
    let path = fixture(
        "undefined_constant.rdl",
        "rate K_a = K_missing * 2;\nmolecule M = \"CSSC\" init 1.0;\nrule r { site bond S ~ S order single; action disconnect; rate K_a; }\n",
    );
    let path = path.display().to_string();
    let compile = rmsc(&["compile", &path]);
    let report = rmsc(&["compile-report", &path]);
    assert_eq!(report.status.code(), Some(2));
    assert_eq!(stderr(&report), stderr(&compile));
}

#[test]
fn generation_cap_warning_renders_span_and_exits_zero() {
    // One generation is not enough to close a cascading scission over a
    // four-sulfur chain: the compile succeeds (exit 0, artifact emitted)
    // but carries a warning naming the cap and the still-growing rule,
    // anchored at the `limit generations` statement.
    let path = fixture(
        "capped.rdl",
        "rate K_sc = 2;\n\
         molecule Sx = \"CSSSSC\" init 1.0;\n\
         rule scission { site bond S ~ S order single; action disconnect; rate K_sc; }\n\
         limit generations 1;\n",
    );
    let path = path.display().to_string();
    let out = rmsc(&["compile", &path, "--emit", "stats"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout.clone()).unwrap();
    assert!(stdout.contains("species:"), "{stdout}");
    let expected = format!(
        "warning[network]: network closure stopped at the generation cap (1) \
         without reaching a fixpoint; still-growing rules: scission\n \
         --> {path}:4:1\n  \
         |\n\
         4 | limit generations 1;\n  \
         | ^\n"
    );
    assert_eq!(stderr(&out), expected);
}

#[test]
fn generation_cap_without_growth_stays_silent() {
    // The same model with room to finish reaches a fixpoint: no warning.
    let path = fixture(
        "uncapped.rdl",
        "rate K_sc = 2;\n\
         molecule Sx = \"CSSSSC\" init 1.0;\n\
         rule scission { site bond S ~ S order single; action disconnect; rate K_sc; }\n\
         limit generations 8;\n",
    );
    let out = rmsc(&["compile", &path.display().to_string(), "--emit", "stats"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stderr(&out), "");
}

#[test]
fn runtime_errors_exit_1_with_prefix() {
    // A missing input is an environment failure, not a model diagnostic:
    // prefixed message, exit 1.
    let path = std::env::temp_dir()
        .join(format!("rms-diagnostics-{}", std::process::id()))
        .join("does_not_exist.rdl");
    let out = rmsc(&["compile", &path.display().to_string()]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        stderr(&out),
        format!(
            "rmsc: cannot read {}: No such file or directory (os error 2)\n",
            path.display()
        )
    );
}

#[test]
fn unknown_dump_stage_is_a_usage_error() {
    let path = fixture("bad_smiles.rdl", "molecule M = \"C(C\" init 1.0;\n");
    let out = rmsc(&["compile", &path.display().to_string(), "--dump-ir", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        stderr(&out),
        "rmsc: unknown stage 'bogus' (expected one of: parse, expand, rcip, \
         network, odegen, simplify, distribute, cse, deriv, lower, exec-decode, codegen)\n"
    );
}
