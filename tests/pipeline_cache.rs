//! Cache correctness for the pass-managed pipeline: a cache-hit compile
//! must be *behaviorally* identical to a cold one — same tape, same
//! operation counts, same BDF trajectory — at every optimization level
//! and for both workload model kinds (RDL source and the programmatic
//! network generator). Plus invalidation, disk revival, and the report's
//! Table 1 op-count fidelity.

use std::sync::{Arc, Mutex};

use rms_suite::workload::{generate_model, VulcanizationSpec, VULCANIZATION_RDL};
use rms_suite::{
    cache, generate, optimize, CacheMode, CacheStatus, Compiled, CompiledArtifact, CompilerSession,
    GenerateOptions, OptLevel, SessionOptions, SolverOptions, Stage, SuiteModel,
};

/// The in-memory cache is process-wide and one test clears it; serialize
/// the tests in this binary so a clear cannot race a hit assertion.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CACHE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const LEVELS: [OptLevel; 4] = [
    OptLevel::None,
    OptLevel::Simplify,
    OptLevel::Algebraic,
    OptLevel::Full,
];

/// The two workload model kinds, compiled through the matching session
/// entry point.
#[derive(Clone, Copy)]
enum Model {
    RdlSource,
    Network,
}

fn compile(model: Model, options: SessionOptions) -> Compiled {
    let session = CompilerSession::with_options(options);
    match model {
        Model::RdlSource => session
            .compile_source("vulcanization.rdl", VULCANIZATION_RDL)
            .expect("rdl model compiles"),
        Model::Network => {
            let m = generate_model(VulcanizationSpec {
                sites: 3,
                max_chain: 3,
                neighbourhood: 1,
            });
            session
                .compile_network("vulcanization-small", m.network, m.rates)
                .expect("network model compiles")
        }
    }
}

/// Short BDF trajectory from the artifact's own initial state.
fn trajectory(artifact: &Arc<CompiledArtifact>) -> Vec<Vec<f64>> {
    SuiteModel::from_artifact(Arc::clone(artifact))
        .simulate(&[0.02, 0.05], SolverOptions::default())
        .expect("short solve succeeds")
}

fn assert_identical(cold: &Arc<CompiledArtifact>, hit: &Arc<CompiledArtifact>, label: &str) {
    // Same lowered tape, instruction for instruction.
    assert_eq!(
        cold.compiled.tape.to_string(),
        hit.compiled.tape.to_string(),
        "{label}: tapes differ"
    );
    // Same Table 1 operation counts at every optimizer stage.
    assert_eq!(cold.compiled.stages, hit.compiled.stages, "{label}");
    assert_eq!(cold.report.counts, hit.report.counts, "{label}");
    // Same dynamics: the BDF trajectories are bit-identical because the
    // solver runs the same instructions on the same initial state.
    assert_eq!(trajectory(cold), trajectory(hit), "{label}: trajectories");
}

#[test]
fn cache_hits_reproduce_cold_compiles_at_every_level() {
    let _guard = lock();
    for model in [Model::RdlSource, Model::Network] {
        for level in LEVELS {
            let label = format!("{level}");
            // Guaranteed-cold reference compile.
            let mut bypass = SessionOptions::new(level);
            bypass.cache = CacheMode::Bypass;
            let cold = compile(model, bypass);
            assert_eq!(cold.status, CacheStatus::Cold);

            // Cached compile twice: the second must be a memory hit that
            // shares the first's allocation.
            let warm = compile(model, SessionOptions::new(level));
            let hit = compile(model, SessionOptions::new(level));
            assert_eq!(hit.status, CacheStatus::Memory, "{label}");
            assert!(Arc::ptr_eq(&warm.artifact, &hit.artifact), "{label}");

            assert_identical(&cold.artifact, &hit.artifact, &label);
        }
    }
}

#[test]
fn source_and_option_changes_invalidate_the_cache() {
    let _guard = lock();
    let base = compile(Model::RdlSource, SessionOptions::new(OptLevel::Full));

    // An unused rate definition changes the content address: the next
    // compile is cold, not a stale hit on the old artifact.
    let salted = format!("{VULCANIZATION_RDL}\nrate K_salt_invalidation = 977;\n");
    let session = CompilerSession::new(OptLevel::Full);
    let other = session
        .compile_source("vulcanization.rdl", &salted)
        .expect("salted model compiles");
    assert!(!Arc::ptr_eq(&base.artifact, &other.artifact));

    // Option changes invalidate too: requesting the Deriv stage may not
    // be served by an artifact compiled without it.
    let mut deriv = SessionOptions::new(OptLevel::Full);
    deriv.deriv = true;
    let with_jac = compile(Model::RdlSource, deriv);
    assert!(!Arc::ptr_eq(&base.artifact, &with_jac.artifact));
    assert!(base.artifact.jacobian.is_none());
    assert!(with_jac.artifact.jacobian.is_some());
}

#[test]
fn disk_cache_revives_identical_artifacts() {
    let _guard = lock();
    let dir = std::env::temp_dir().join(format!("rms-pipeline-cache-{}", std::process::id()));
    let mut options = SessionOptions::new(OptLevel::Full);
    options.cache_dir = Some(dir.clone());

    // A cold build is what persists to disk, so start from an empty
    // memory layer (another test may have already cached this model).
    cache::clear_memory();
    let first = compile(Model::Network, options.clone());
    assert_eq!(first.status, CacheStatus::Cold);
    // Drop the in-memory layer: the next compile must come back through
    // deserialization, not a rebuild.
    cache::clear_memory();
    let revived = compile(Model::Network, options);
    assert_eq!(revived.status, CacheStatus::Disk);
    assert_identical(&first.artifact, &revived.artifact, "disk");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The single serialized artifact under a cache directory.
fn cached_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rmsc"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one cached artifact");
    entries.pop().unwrap()
}

#[test]
fn corrupt_disk_entries_quarantine_and_fall_back_to_cold() {
    let _guard = lock();
    let dir = std::env::temp_dir().join(format!("rms-cache-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut options = SessionOptions::new(OptLevel::Full);
    options.cache_dir = Some(dir.clone());

    cache::clear_memory();
    let first = compile(Model::Network, options.clone());
    assert_eq!(first.status, CacheStatus::Cold);

    // Flip one bit in the middle of the payload — deep in f64 territory,
    // where the pre-checksum format would have revived silently wrong
    // numbers instead of failing a structural check.
    let path = cached_file(&dir);
    let mut bytes = std::fs::read(&path).expect("cached artifact readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).expect("rewrite corrupted artifact");

    let quarantines_before = cache::stats().quarantines;
    cache::clear_memory();
    let recovered = compile(Model::Network, options.clone());
    // Not an error, not a disk hit: a cold compile.
    assert_eq!(recovered.status, CacheStatus::Cold);
    assert_identical(&first.artifact, &recovered.artifact, "corrupt-recovery");
    assert_eq!(cache::stats().quarantines, quarantines_before + 1);

    // The bad bytes were moved aside and a good entry rewritten: the
    // quarantine file holds the corrupted image, and the next compile
    // revives from disk again.
    let quarantined = std::fs::read(format!("{}.corrupt", path.display()))
        .expect("corrupt entry quarantined beside the cache file");
    assert_eq!(quarantined, bytes);
    cache::clear_memory();
    let revived = compile(Model::Network, options.clone());
    assert_eq!(revived.status, CacheStatus::Disk);

    // Truncation (a torn write survived somehow) takes the same path.
    let good = std::fs::read(&path).expect("rewritten artifact readable");
    std::fs::write(&path, &good[..good.len() / 3]).expect("truncate artifact");
    cache::clear_memory();
    let after_truncation = compile(Model::Network, options);
    assert_eq!(after_truncation.status, CacheStatus::Cold);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memory_budget_evicts_least_recently_used() {
    let _guard = lock();
    cache::clear_memory();
    cache::set_memory_budget(None);

    // Two distinct models in memory: the RDL source and the generated
    // network hash to different keys.
    let a = compile(Model::RdlSource, SessionOptions::new(OptLevel::Full));
    let b = compile(Model::Network, SessionOptions::new(OptLevel::Full));
    let evictions_before = cache::stats().evictions;

    // A budget of exactly the newer artifact: fitting both is
    // impossible, so the LRU entry (the RDL model) is dropped, and
    // eviction stops right at the budget with the network model intact.
    cache::set_memory_budget(Some(b.artifact.approx_bytes()));
    assert!(cache::stats().evictions > evictions_before);
    let b_again = compile(Model::Network, SessionOptions::new(OptLevel::Full));
    assert_eq!(b_again.status, CacheStatus::Memory);
    assert!(Arc::ptr_eq(&b.artifact, &b_again.artifact));
    let a_again = compile(Model::RdlSource, SessionOptions::new(OptLevel::Full));
    assert_eq!(a_again.status, CacheStatus::Cold);
    assert!(!Arc::ptr_eq(&a.artifact, &a_again.artifact));

    cache::set_memory_budget(None);
}

#[test]
fn report_reproduces_table1_op_counts() {
    let _guard = lock();
    let compiled = compile(Model::Network, SessionOptions::new(OptLevel::Full));
    let report = &compiled.artifact.report;

    // Independently rerun the generator and optimizer (the pre-driver
    // pipeline) and compare the per-stage Table 1 operation counts.
    let m = generate_model(VulcanizationSpec {
        sites: 3,
        max_chain: 3,
        neighbourhood: 1,
    });
    let system =
        generate(&m.network, &m.rates, GenerateOptions { simplify: true }).expect("valid rates");
    let direct = optimize(&system, OptLevel::Full);
    assert_eq!(report.counts, direct.stages);

    // The report's identity fields and stage records line up as well.
    assert_eq!(report.species, m.network.species_count());
    assert_eq!(report.reactions, m.network.reaction_count());
    for stage in [Stage::OdeGen, Stage::Simplify, Stage::Cse, Stage::Lower] {
        assert!(report.stage(stage).is_some(), "missing {stage}");
    }
    assert!(report.total_seconds > 0.0);
}
