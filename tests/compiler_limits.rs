//! The §3.3/§5.3 compiler-limit claims: the commercial compiler fails
//! with "lack of space" on large unoptimized systems, fails *earlier* at
//! higher `-O` levels, and "we can compile programs at least 10 times
//! larger using our optimizations than when not using them".

use rms_suite::workload::{generate_model, VulcanizationSpec};
use rms_suite::{
    compile_model, generic_compile, generic_compile_best_effort, GenericError, GenericOptions,
    OptLevel, SuiteModel,
};

/// Compile the `equations`-sized workload case through the pipeline
/// session at a level. The process-wide cache dedupes repeat compiles of
/// the same case across the tests in this binary.
fn compiled_at(equations: usize, level: OptLevel) -> SuiteModel {
    let model = generate_model(VulcanizationSpec::for_equation_count(equations));
    compile_model(model.network, model.rates, level).expect("valid rates")
}

/// Unoptimized tape size for a given equation count.
fn unopt_tape_len(equations: usize) -> usize {
    compiled_at(equations, OptLevel::None).compiled.tape.len()
}

#[test]
fn higher_opt_levels_fail_earlier() {
    let suite = compiled_at(800, OptLevel::None);
    let tape = &suite.compiled.tape;
    // Budget sized so -O0 fits but -O4 does not (the Table 1 pattern
    // where xlc compiled case 4 at default opt but died at -O4 on case 3).
    let budget = tape.len() * 5_000;
    assert!(generic_compile(
        tape,
        GenericOptions {
            opt_level: 0,
            memory_budget: budget
        }
    )
    .is_ok());
    assert!(matches!(
        generic_compile(
            tape,
            GenericOptions {
                opt_level: 4,
                memory_budget: budget
            }
        ),
        Err(GenericError::OutOfSpace { opt_level: 4, .. })
    ));
    // Best effort lands on the highest level that fits.
    let (level, _) = generic_compile_best_effort(tape, budget).expect("O0 fits");
    assert!(level < 4);
}

#[test]
fn optimizations_admit_substantially_larger_programs() {
    // Paper §3.3: "we can compile programs at least 10 times larger using
    // our optimizations than when not using them." The multiplier equals
    // the optimizer's compression factor on the workload — ~14x on the
    // authors' proprietary models, ~4x on our synthetic generator (see
    // EXPERIMENTS.md). Reproduce the *mechanism* and assert our measured
    // multiplier: a budget that barely fits the unoptimized small case
    // rejects the unoptimized larger cases but accepts the optimized one,
    // for a size multiplier of at least 3x.
    let small = 400usize;
    let large = small * 3;
    let budget = unopt_tape_len(small) * rms_suite::IR_BYTES_PER_OP[0] + 1;

    // Sanity: the unoptimized large case must NOT fit.
    let unopt_large = compiled_at(large, OptLevel::None);
    assert!(
        matches!(
            generic_compile_best_effort(&unopt_large.compiled.tape, budget),
            Err(GenericError::OutOfSpace { .. })
        ),
        "large unoptimized case should exceed the budget"
    );

    // With our optimizations the same large case compiles.
    let opt_large = compiled_at(large, OptLevel::Full);
    let (level, _) = generic_compile_best_effort(&opt_large.compiled.tape, budget)
        .expect("optimized 3x case must fit the same budget");
    assert!(level <= 4);

    // Report the actual multiplier: the largest optimized model that fits
    // the budget, relative to the largest unoptimized one (= `small`).
    let mut multiplier = 3;
    while multiplier < 20 {
        let next = small * (multiplier + 1);
        let compiled = compiled_at(next, OptLevel::Full);
        if generic_compile_best_effort(&compiled.compiled.tape, budget).is_err() {
            break;
        }
        multiplier += 1;
    }
    println!("size multiplier admitted by optimization: {multiplier}x (paper: >=10x)");
    assert!(multiplier >= 3);
}

#[test]
fn optimized_tape_valid_after_generic_pass() {
    // Composing our optimizer with the generic compiler (the real
    // deployment: our C feeds xlc) must preserve semantics.
    let suite = compiled_at(300, OptLevel::Full);
    let (system, ours) = (&suite.system, &suite.compiled);
    // VN runs on the emitted-C shape (SSA); composing it with the
    // compacted execution tape is also sound (see rms-core::generic) but
    // finds less.
    let ssa = rms_suite::lower(&ours.forest);
    let result = generic_compile(
        &ssa,
        GenericOptions {
            opt_level: 4,
            memory_budget: usize::MAX,
        },
    )
    .expect("fits");
    let n = system.len();
    let y: Vec<f64> = (0..n).map(|i| 0.05 + (i % 9) as f64 * 0.1).collect();
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    ours.tape.eval(&system.rate_values, &y, &mut a);
    result.tape.eval(&system.rate_values, &y, &mut b);
    // Also: VN directly on the compacted tape must stay *correct*.
    let on_compacted = generic_compile(
        &ours.tape,
        GenericOptions {
            opt_level: 4,
            memory_budget: usize::MAX,
        },
    )
    .expect("fits");
    let mut c = vec![0.0; n];
    on_compacted.tape.eval(&system.rate_values, &y, &mut c);
    for (x, z) in a.iter().zip(&c) {
        assert!((x - z).abs() <= 1e-12 * x.abs().max(1.0), "{x} vs {z}");
    }
    for (x, z) in a.iter().zip(&b) {
        assert!((x - z).abs() <= 1e-12 * x.abs().max(1.0), "{x} vs {z}");
    }
}

#[test]
fn forest_node_count_tracks_memory_model() {
    // The optimizer also shrinks the IR fed to the downstream compiler:
    // node counts drop alongside op counts.
    let unopt = compiled_at(450, OptLevel::None);
    let opt = compiled_at(450, OptLevel::Full);
    assert!(
        opt.compiled.forest.node_count() < unopt.compiled.forest.node_count(),
        "{} vs {}",
        opt.compiled.forest.node_count(),
        unopt.compiled.forest.node_count()
    );
    assert!(opt.compiled.tape.len() < unopt.compiled.tape.len());
}
