//! The paper's headline workflow (Figure 1): fit a vulcanization kinetic
//! model to experimental cure curves.
//!
//! 1. Generate a benzothiazole-accelerator-style vulcanization network
//!    (the proprietary lab models are substituted by the synthetic
//!    generator — see DESIGN.md).
//! 2. Compile and optimize the ODE system.
//! 3. Synthesize 16 experimental data files from ground-truth kinetics
//!    plus measurement noise (the paper's proprietary rheometer data).
//! 4. Run the parallel parameter estimator (bounded Levenberg–Marquardt
//!    over the thread-backed cluster with dynamic load balancing) and
//!    check the recovered rate constants against the truth.
//!
//! Run with `cargo run --release --example vulcanization`.

use rms_suite::workload::{
    generate_model, synthesize, ExpDataSpec, VulcanizationSpec, RATE_NAMES, TRUE_RATES,
};
use rms_suite::{compile_model, LmOptions, OptLevel, ParallelEstimator, Simulator, TapeSimulator};

fn main() {
    println!("=== 1. generate + compile the kinetic model ===");
    let spec = VulcanizationSpec {
        sites: 6,
        max_chain: 5,
        neighbourhood: 2,
    };
    let model = generate_model(spec);
    println!(
        "network: {} species, {} reactions, {} distinct kinetic parameters",
        model.network.species_count(),
        model.network.reaction_count(),
        model.rates.distinct_count()
    );
    let crosslinks = model.crosslink_species.clone();
    let (lo, hi) = model.rates.bounds_vectors();
    let suite =
        compile_model(model.network, model.rates, OptLevel::Full).expect("compilation succeeds");
    println!(
        "optimized: {} -> {} arithmetic ops ({:.1}% remaining)",
        suite.compiled.stages.input.total(),
        suite.compiled.stages.after_cse.total(),
        100.0 * suite.compiled.remaining_fraction()
    );

    println!("\n=== 2. synthesize experimental cure curves ===");
    let mut observable = vec![0.0; suite.system.len()];
    for x in &crosslinks {
        observable[x.0 as usize] = 1.0;
    }
    let simulator = TapeSimulator::from_artifact(suite.artifact(), observable);
    let spec = ExpDataSpec {
        n_files: 16,
        records: 200, // the paper's files hold >3000; smaller for the demo
        base_horizon: 2.0,
        horizon_skew: 0.3,
        noise: 5e-4,
        seed: 7,
    };
    let files = synthesize(&simulator, &TRUE_RATES, spec).expect("synthesis succeeds");
    println!(
        "{} files x {} records (crosslink density vs cure time)",
        files.len(),
        files[0].len()
    );

    println!("\n=== 3. parallel parameter estimation ===");
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let estimator = ParallelEstimator::new(&simulator, files, workers, true);
    // The paper's chemists constrain most constants tightly from quantum
    // chemistry (Gaussian '03) and fit the uncertain ones. We treat three
    // constants as uncertain (wide bounds, perturbed start) and pin the
    // rest to their priors.
    let uncertain = [1usize, 8, 9]; // K_sulf, K_rev, K_pend
    let mut initial = TRUE_RATES.to_vec();
    let mut lo_fit = TRUE_RATES.to_vec();
    let mut hi_fit = TRUE_RATES.to_vec();
    for &i in &uncertain {
        initial[i] = TRUE_RATES[i] * if i == 8 { 0.5 } else { 1.6 };
        lo_fit[i] = lo[i];
        hi_fit[i] = hi[i];
    }
    println!("workers: {workers}, dynamic load balancing: on, fitting K_sulf/K_rev/K_pend");
    let t0 = std::time::Instant::now();
    let result = estimator
        .estimate(
            &initial,
            &lo_fit,
            &hi_fit,
            LmOptions {
                max_iters: 60,
                fd_step: 1e-3, // above the ODE solver's noise floor
                ..LmOptions::default()
            },
        )
        .expect("estimation succeeds");
    println!(
        "converged in {} iterations / {} residual evals ({:.2?}), stop: {:?}",
        result.iterations,
        result.fevals,
        t0.elapsed(),
        result.stop
    );

    println!("\n=== 4. recovered kinetics vs ground truth ===");
    println!(
        "{:<10} {:>10} {:>10} {:>9}",
        "parameter", "truth", "fitted", "error"
    );
    let mut max_err: f64 = 0.0;
    for (i, name) in RATE_NAMES.iter().enumerate() {
        let err = (result.params[i] - TRUE_RATES[i]).abs() / TRUE_RATES[i];
        if uncertain.contains(&i) {
            max_err = max_err.max(err);
        }
        let marker = if uncertain.contains(&i) {
            ""
        } else {
            "  (pinned)"
        };
        println!(
            "{:<10} {:>10.4} {:>10.4} {:>8.2}%{marker}",
            name,
            TRUE_RATES[i],
            result.params[i],
            100.0 * err
        );
    }
    println!(
        "\nfinal cost: {:.3e}, worst fitted-parameter error: {:.2}%",
        result.cost,
        100.0 * max_err
    );
    let verification = simulator
        .simulate(&result.params, 0, &[0.5, 1.0, 2.0])
        .expect("verification run");
    println!("cure curve at fitted kinetics: {verification:.3?}");
}
