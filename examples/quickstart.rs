//! Quickstart: describe a reaction in RDL, compile it to optimized ODEs,
//! inspect every intermediate artifact, and simulate.
//!
//! Run with `cargo run --example quickstart`.

use rms_suite::{compile_source, OptLevel, SolverOptions};

fn main() {
    // A disulfide that homolyzes and recombines — the smallest slice of
    // sulfur-vulcanization chemistry.
    let source = r#"
        # kinetics (RCIP sub-language; constants dedup by value)
        rate K_sc  = 2;
        rate K_rec = K_sc / 4;
        bound K_sc  in [0.1, 20];
        bound K_rec in [0.01, 5];

        # molecule variants: polysulfides CS{n}C for n = 2..4
        molecule PolyS = "CS{n}C" for n in 2..4 init 1.0;

        # rule 1: S-S homolysis (the paper's "disconnect two atoms")
        rule scission {
            site bond S ~ S order single;
            action disconnect;
            rate K_sc;
        }

        # rule 2: radical recombination ("connect two atoms")
        rule recombine {
            site pair S & radical, S & radical;
            action connect single;
            rate K_rec;
        }

        limit atoms 12;
        forbid chain S > 4;
    "#;

    let model = compile_source(source, OptLevel::Full).expect("model compiles");

    println!("=== reaction network (chemical compiler output, Fig. 3 form) ===");
    print!("{}", model.network.display_equations());

    println!("\n=== ODE system (equation generator output, Fig. 5 form) ===");
    print!("{}", model.system.display());

    println!("\n=== optimizer statistics ===");
    let s = model.compiled.stages;
    println!("input (sum-of-products): {}", s.input);
    println!("after simplify:          {}", s.after_simplify);
    println!("after distribute:        {}", s.after_distribute);
    println!("after CSE:               {}", s.after_cse);
    println!(
        "remaining fraction:      {:.1}%",
        100.0 * model.compiled.remaining_fraction()
    );

    println!("\n=== generated C (backend output) ===");
    print!("{}", model.emit_c("ode_rhs"));

    println!("\n=== simulation (Gear/BDF stiff solver) ===");
    let times: Vec<f64> = (1..=5).map(|i| i as f64 * 0.2).collect();
    let solution = model
        .simulate(&times, SolverOptions::default())
        .expect("integration succeeds");
    print!("{:>8}", "t");
    let names: Vec<String> = model
        .network
        .species_iter()
        .map(|(_, sp)| sp.name.clone())
        .collect();
    for name in &names {
        print!("{name:>14}");
    }
    println!();
    for (t, y) in times.iter().zip(&solution) {
        print!("{t:>8.2}");
        for v in y {
            print!("{v:>14.6}");
        }
        println!();
    }
}
