//! Parallel scaling demo (Table 2's shape on your machine): the parallel
//! objective function over 16 replicated data files, with and without the
//! dynamic load balancer.
//!
//! Run with `cargo run --release --example parallel_scaling`.

use rms_suite::workload::{generate_model, synthesize, ExpDataSpec, VulcanizationSpec, TRUE_RATES};
use rms_suite::{
    block_schedule, compile_model, lpt_schedule, makespan, OptLevel, ParallelEstimator,
    TapeSimulator,
};

fn main() {
    // A model small enough that one objective call takes ~seconds.
    let model = generate_model(VulcanizationSpec {
        sites: 5,
        max_chain: 5,
        neighbourhood: 2,
    });
    let crosslinks = model.crosslink_species.clone();
    let suite = compile_model(model.network, model.rates, OptLevel::Full).expect("compiles");
    let mut observable = vec![0.0; suite.system.len()];
    for x in &crosslinks {
        observable[x.0 as usize] = 1.0;
    }
    let simulator = TapeSimulator::from_artifact(suite.artifact(), observable);

    // 16 files with skewed horizons => heterogeneous per-file solve times,
    // the imbalance the dynamic load balancer exists for.
    let files = synthesize(
        &simulator,
        &TRUE_RATES,
        ExpDataSpec {
            n_files: 16,
            records: 400,
            base_horizon: 2.0,
            horizon_skew: 0.45,
            noise: 0.0,
            seed: 3,
        },
    )
    .expect("synthesis succeeds");

    // Record real per-file solve times once (sequential run).
    let recorder = ParallelEstimator::new(&simulator, files.clone(), 1, false);
    recorder
        .objective(&TRUE_RATES)
        .expect("objective evaluates");
    let times = recorder.recorded_times().expect("times recorded");
    let total: f64 = times.iter().sum();
    println!("per-file solve times (ms):");
    for (i, t) in times.iter().enumerate() {
        println!("  formulation_{i:02}: {:8.2}", t * 1000.0);
    }
    println!("  total: {:.2} ms\n", total * 1000.0);

    // Schedule-model scaling (Table 2's shape, machine-independent):
    println!("=== schedule model: makespans from recorded times ===");
    println!(
        "{:>6} {:>14} {:>9} {:>14} {:>9}",
        "nodes", "block (ms)", "speedup", "LPT (ms)", "speedup"
    );
    for nodes in [1usize, 2, 4, 8, 16] {
        let block = makespan(
            &block_schedule(times.len(), nodes).expect("nodes > 0"),
            &times,
        );
        let lpt = makespan(&lpt_schedule(&times, nodes).expect("nodes > 0"), &times);
        println!(
            "{nodes:>6} {:>14.2} {:>9.2} {:>14.2} {:>9.2}",
            block * 1000.0,
            total / block,
            lpt * 1000.0,
            total / lpt
        );
    }

    // Real threaded runs, as far as this machine's cores allow.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n=== measured wall time on this machine ({cores} cores) ===");
    println!(
        "{:>6} {:>14} {:>9} {:>14} {:>9}",
        "nodes", "block (ms)", "speedup", "LPT (ms)", "speedup"
    );
    let mut t1 = None;
    for nodes in [1usize, 2, 4, 8, 16] {
        if nodes > cores {
            println!("{nodes:>6} (skipped: more ranks than cores)");
            continue;
        }
        let block_est = ParallelEstimator::new(&simulator, files.clone(), nodes, false);
        block_est.objective(&TRUE_RATES).expect("warmup");
        let block_t = block_est
            .objective(&TRUE_RATES)
            .expect("objective")
            .wall_time;
        let lb_est = ParallelEstimator::new(&simulator, files.clone(), nodes, true);
        lb_est.objective(&TRUE_RATES).expect("warmup records times");
        let lb_t = lb_est.objective(&TRUE_RATES).expect("objective").wall_time;
        let t1v = *t1.get_or_insert(block_t);
        println!(
            "{nodes:>6} {:>14.2} {:>9.2} {:>14.2} {:>9.2}",
            block_t * 1000.0,
            t1v / block_t,
            lb_t * 1000.0,
            t1v / lb_t
        );
    }
}
