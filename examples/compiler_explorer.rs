//! Compiler explorer: watch each optimization pass transform a model, and
//! compare against the "commercial compiler" (generic value numbering
//! with a memory budget).
//!
//! Run with `cargo run --release --example compiler_explorer`.

use rms_suite::workload::{generate_model, VulcanizationSpec};
use rms_suite::{compile_model, generic_compile, GenericOptions, OptLevel, Passes};

fn main() {
    let model = generate_model(VulcanizationSpec::for_equation_count(450));
    println!(
        "model: {} species, {} reactions, {} distinct rate constants\n",
        model.network.species_count(),
        model.network.reaction_count(),
        model.rates.distinct_count()
    );

    // --- our optimizer, level by level -------------------------------
    println!("=== domain-specific optimizer (paper §3) ===");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>10}",
        "level", "mults", "adds", "total", "remaining"
    );
    let mut baseline_total = 0usize;
    for level in OptLevel::ALL {
        let suite =
            compile_model(model.network.clone(), model.rates.clone(), level).expect("compiles");
        let counts = suite.compiled.stages.after_cse;
        if level == OptLevel::None {
            baseline_total = counts.total();
        }
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>9.1}%",
            level.to_string(),
            counts.mults,
            counts.adds,
            counts.total(),
            100.0 * counts.total() as f64 / baseline_total as f64
        );
    }

    // --- ablation: CSE without the distributive pass ------------------
    let suite = compile_model(model.network.clone(), model.rates.clone(), OptLevel::None)
        .expect("compiles");
    let cse_only = rms_suite::optimize_with_passes(
        &suite.system,
        Passes {
            simplify: true,
            distribute: false,
            cse: Some(Default::default()),
        },
    );
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9.1}%   (ablation)",
        "simplify+cse (no dist)",
        cse_only.stages.after_cse.mults,
        cse_only.stages.after_cse.adds,
        cse_only.stages.after_cse.total(),
        100.0 * cse_only.stages.after_cse.total() as f64 / baseline_total as f64
    );

    // --- the commercial compiler model --------------------------------
    println!("\n=== generic 'commercial' compiler (Table 1's xlc model) ===");
    let unopt = compile_model(model.network.clone(), model.rates.clone(), OptLevel::None)
        .expect("compiles");
    // Feed the SSA lowering (the shape of the emitted C), not the
    // register-compacted execution tape.
    let ssa = rms_suite::lower(&unopt.compiled.forest);
    println!("input tape: {} instructions", ssa.len());
    println!(
        "{:<8} {:>14} {:>12} {:>12}",
        "level", "IR bytes", "eliminated", "result"
    );
    for level in 0..=4u8 {
        match generic_compile(
            &ssa,
            GenericOptions {
                opt_level: level,
                // A budget sized so low optimization levels fit but the
                // IR-hungry high levels die, like xlc on the big cases.
                memory_budget: ssa.len() * 7_000,
            },
        ) {
            Ok(result) => println!(
                "-O{level:<6} {:>14} {:>12} {:>9} ops",
                result.ir_bytes,
                result.eliminated,
                result.tape.op_counts().total()
            ),
            Err(e) => println!("-O{level:<6} {e}"),
        }
    }

    // --- generated C for a tiny slice ---------------------------------
    println!("\n=== generated C (3-site slice) ===");
    let tiny = generate_model(VulcanizationSpec {
        sites: 2,
        max_chain: 2,
        neighbourhood: 1,
    });
    let tiny = compile_model(tiny.network, tiny.rates, OptLevel::Full).expect("compiles");
    print!("{}", tiny.emit_c("vulcanization_rhs"));
}
