//! Model discrimination — the reason the suite exists.
//!
//! "Tweaking of the reaction model and optimization might need to be
//! performed repeatedly until a good correlation with the experimental
//! results is obtained" (§1). The compiler's job is to make each such
//! round take minutes instead of months. This example runs one round:
//! two candidate mechanisms are fitted to the same synthetic experiment,
//! and the fit statistics (the Fig. 2 "Statistical Information"
//! component) tell the chemist which mechanism the data supports.
//!
//! Ground truth: disulfides undergo radical scission AND radical
//! recombination. Candidate A includes both; candidate B omits
//! recombination. Candidate A should win on every fit metric.
//!
//! Run with `cargo run --release --example model_selection`.

use rms_nlopt::{FitStatistics, Residual};
use rms_suite::workload::{synthesize, ExpDataSpec};
use rms_suite::{compile_source, LmOptions, OptLevel, ParallelEstimator, Simulator};

const TRUE_MODEL: &str = r#"
    rate K_sc  = 3;
    rate K_rec = 2;
    molecule PolyS = "CS{n}C" for n in 2..4 init 1.0;
    rule scission {
        site bond S ~ S order single;
        action disconnect;
        rate K_sc;
    }
    rule recombine {
        site pair S & radical, S & radical;
        action connect single;
        rate K_rec;
    }
    limit atoms 12;
    forbid chain S > 4;
"#;

/// Candidate A: same mechanism, unknown rate values (fit both).
/// NOTE: the RCIP renames constants *by value* (paper §3.3), so two
/// independent parameters must start from distinct values or they
/// collapse into one fitted parameter.
const CANDIDATE_FULL: &str = r#"
    rate K_sc  = 1;
    rate K_rec = 1.5;
    bound K_sc  in [0.05, 30];
    bound K_rec in [0.05, 30];
    molecule PolyS = "CS{n}C" for n in 2..4 init 1.0;
    rule scission {
        site bond S ~ S order single;
        action disconnect;
        rate K_sc;
    }
    rule recombine {
        site pair S & radical, S & radical;
        action connect single;
        rate K_rec;
    }
    limit atoms 12;
    forbid chain S > 4;
"#;

/// Candidate B: scission only — structurally wrong.
const CANDIDATE_NO_RECOMBINATION: &str = r#"
    rate K_sc = 1;
    bound K_sc in [0.05, 30];
    molecule PolyS = "CS{n}C" for n in 2..4 init 1.0;
    rule scission {
        site bond S ~ S order single;
        action disconnect;
        rate K_sc;
    }
    limit atoms 12;
    forbid chain S > 4;
"#;

struct EstimatorResidual<'a, S: Simulator> {
    estimator: &'a ParallelEstimator<'a, S>,
    n_params: usize,
    n_residuals: usize,
}

impl<S: Simulator> Residual for EstimatorResidual<'_, S> {
    fn n_params(&self) -> usize {
        self.n_params
    }
    fn n_residuals(&self) -> usize {
        self.n_residuals
    }
    fn eval(&self, p: &[f64], out: &mut [f64]) -> Result<(), String> {
        let o = self.estimator.objective(p).map_err(|e| e.to_string())?;
        out.copy_from_slice(&o.error_vector);
        Ok(())
    }
}

fn main() {
    // 1. The "lab": synthesize data from the true mechanism. Observable:
    //    total parent polysulfide concentration (what the rheometer sees).
    let truth = compile_source(TRUE_MODEL, OptLevel::Full).expect("truth compiles");
    let observed_species = ["PolyS_2", "PolyS_3", "PolyS_4"];
    let lab = truth.simulator_for(&observed_species);
    let files = synthesize(
        &lab,
        &truth.system.rate_values,
        ExpDataSpec {
            n_files: 4,
            records: 120,
            base_horizon: 1.5,
            horizon_skew: 0.2,
            noise: 2e-3,
            seed: 31,
        },
    )
    .expect("synthesis succeeds");
    let observed: Vec<f64> = files
        .iter()
        .flat_map(|f| f.values.iter().copied())
        .collect();
    println!(
        "synthesized {} experiments x {} records from the true mechanism\n",
        files.len(),
        files[0].len()
    );

    // 2. Fit each candidate.
    for (name, source) in [
        ("A: scission + recombination", CANDIDATE_FULL),
        ("B: scission only", CANDIDATE_NO_RECOMBINATION),
    ] {
        let model = compile_source(source, OptLevel::Full).expect("candidate compiles");
        let simulator = model.simulator_for(&observed_species);
        let estimator = ParallelEstimator::new(&simulator, files.clone(), 2, true);
        let start = model.system.rate_values.clone();
        let (lo, hi) = model.rates.bounds_vectors();
        let options = LmOptions {
            max_iters: 50,
            fd_step: 1e-3,
            ..LmOptions::default()
        };
        let result = estimator
            .estimate(&start, &lo, &hi, options)
            .expect("estimation runs");

        println!("── candidate {name} ──");
        for i in 0..model.rates.distinct_count() {
            let rate_name = model.rates.canonical_name(rms_rcip::RateId(i as u32));
            println!("  {rate_name:<8} fitted to {:.4}", result.params[i]);
        }
        let wrap = EstimatorResidual {
            estimator: &estimator,
            n_params: start.len(),
            n_residuals: result.residuals.len(),
        };
        match FitStatistics::evaluate(&wrap, &result.params, Some(&observed), options.fd_step) {
            Ok(stats) => {
                println!(
                    "  SSE {:.4e}   RMSE {:.4e}   reduced chi^2 {:.4e}",
                    stats.sse, stats.rmse, stats.reduced_chi_square
                );
                for (j, se) in stats.standard_errors.iter().enumerate() {
                    println!(
                        "  param {j}: +/- {se:.2e} (95% {:.2e})",
                        stats.confidence_95[j]
                    );
                }
            }
            Err(e) => println!("  statistics unavailable: {e}"),
        }
        println!();
    }
    println!("the structurally correct mechanism fits with a lower chi^2; the chemist");
    println!("keeps candidate A and moves to the next refinement round (Fig. 1).");
}
